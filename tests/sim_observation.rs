//! Observation changes nothing: simulator results are bit-identical
//! with metrics and tracing enabled versus disabled.
//!
//! The simulator's coherence-event counters are part of its
//! deterministic state, and the swcc-obs registry/trace emission only
//! *reads* totals after a run — so installing a full recorder and a
//! JSONL trace sink must not perturb a single bit of any report.
//!
//! Everything lives in ONE test function: `swcc_obs::install` /
//! `install_sink` are once-per-process, so the unobserved baseline has
//! to run before the recorder exists, and splitting the phases across
//! `#[test]` functions would race on that process-wide state.

use swcc_core::prelude::Scheme;
use swcc_sim::{
    simulate, simulate_network, simulate_network_packet, NetworkSimConfig, ProtocolKind, SimConfig,
};
use swcc_trace::synth::{pops_like, SynthConfig};
use swcc_trace::Trace;

fn bus_traces() -> Vec<(ProtocolKind, Trace)> {
    let plain = pops_like(4, 8_000, 0xBEEF).generate();
    let flushed = {
        let mut b = SynthConfig::builder();
        b.cpus(4)
            .instructions_per_cpu(8_000)
            .seed(0xBEEF)
            .emit_flushes(true);
        b.build().generate()
    };
    vec![
        (ProtocolKind::Base, plain.clone()),
        (ProtocolKind::Dragon, plain.clone()),
        (ProtocolKind::NoCache, plain),
        (ProtocolKind::SoftwareFlush, flushed),
    ]
}

fn network_workload() -> swcc_core::workload::WorkloadParams {
    swcc_core::workload::WorkloadParams::default()
}

#[test]
fn observed_runs_are_bit_identical_to_unobserved() {
    // --- Phase 1: unobserved baselines (no recorder, no sink). ---
    let bus_baseline: Vec<String> = bus_traces()
        .iter()
        .map(|(protocol, trace)| {
            let report = simulate(trace, &SimConfig::new(*protocol));
            serde_json::to_string(&report).expect("report serializes")
        })
        .collect();
    let net_config = NetworkSimConfig::new(3);
    let workload = network_workload();
    let net_baseline = serde_json::to_string(
        &simulate_network(Scheme::Base, &workload, &net_config).expect("network sim runs"),
    )
    .expect("network report serializes");
    let packet_baseline = serde_json::to_string(
        &simulate_network_packet(Scheme::SoftwareFlush, &workload, &net_config)
            .expect("packet sim runs"),
    )
    .expect("packet report serializes");

    // --- Phase 2: full observation — the same registry chain the
    // `repro` binary installs, plus an unsampled trace sink. ---
    let builder = swcc_core::metrics::register(swcc_obs::RegistryBuilder::new());
    let builder = swcc_sim::metrics::register(builder);
    let registry: &'static swcc_obs::MetricsRegistry = Box::leak(Box::new(builder.build()));
    swcc_obs::install(registry).expect("first install in this process");
    let sink: &'static swcc_obs::JsonlSink =
        Box::leak(Box::new(swcc_obs::JsonlSink::with_sampling(1_000_000, 1)));
    swcc_obs::install_sink(sink).expect("first sink install in this process");

    let bus_observed: Vec<String> = bus_traces()
        .iter()
        .map(|(protocol, trace)| {
            let report = simulate(trace, &SimConfig::new(*protocol));
            serde_json::to_string(&report).expect("report serializes")
        })
        .collect();
    let net_observed = serde_json::to_string(
        &simulate_network(Scheme::Base, &workload, &net_config).expect("network sim runs"),
    )
    .expect("network report serializes");
    let packet_observed = serde_json::to_string(
        &simulate_network_packet(Scheme::SoftwareFlush, &workload, &net_config)
            .expect("packet sim runs"),
    )
    .expect("packet report serializes");

    // --- Phase 3: bit-identical output, and observation really ran. ---
    for ((protocol, _), (baseline, observed)) in bus_traces()
        .iter()
        .zip(bus_baseline.iter().zip(bus_observed.iter()))
    {
        assert_eq!(
            baseline, observed,
            "{protocol:?}: observed bus report differs from unobserved"
        );
    }
    assert_eq!(net_baseline, net_observed, "network report differs");
    assert_eq!(packet_baseline, packet_observed, "packet report differs");

    assert!(
        registry
            .counter_value(swcc_sim::metrics::SIM_RUNS)
            .unwrap_or(0)
            >= 4,
        "the observed phase should have recorded sim runs"
    );
    assert!(
        registry
            .counter_value(swcc_sim::metrics::SIM_ACCESSES)
            .unwrap_or(0)
            > 0,
        "the observed phase should have recorded replayed accesses"
    );
    assert!(
        registry
            .counter_value(swcc_sim::metrics::SIM_NETWORK_RUNS)
            .unwrap_or(0)
            >= 2,
        "the observed phase should have recorded network runs"
    );
    assert!(!sink.is_empty(), "tracing should have captured sim events");
}
