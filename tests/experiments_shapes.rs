//! Shape checks on the reproduced artifacts: every experiment in the
//! registry runs, and the figures exhibit the qualitative results the
//! paper reports (who wins, where saturation happens, where crossovers
//! fall).

use swcc_experiments::registry::{find, RunOptions, EXPERIMENTS};
use swcc_experiments::{figures, Artifact};

fn run(id: &str) -> Artifact {
    let opts = RunOptions::quick();
    (find(id).unwrap_or_else(|| panic!("{id} registered")).run)(&opts)
}

#[test]
fn every_registered_experiment_produces_a_nonempty_artifact() {
    let opts = RunOptions::quick();
    for e in EXPERIMENTS {
        let artifact = (e.run)(&opts);
        let rendered = artifact.render();
        assert!(!rendered.trim().is_empty(), "{} rendered empty", e.id);
        assert!(rendered.len() > 40, "{} suspiciously small", e.id);
    }
}

#[test]
fn tables_have_expected_dimensions() {
    assert_eq!(run("table1").as_table().unwrap().rows.len(), 11);
    assert_eq!(run("table2").as_table().unwrap().rows.len(), 11);
    assert_eq!(run("table7").as_table().unwrap().rows.len(), 11);
    assert_eq!(run("table8").as_table().unwrap().rows.len(), 11);
    assert_eq!(run("table9").as_table().unwrap().rows.len(), 7);
}

#[test]
fn figure_4_to_6_power_ordering_degrades_with_sharing() {
    // As shd/ls rise from fig4 to fig6, every non-Base scheme loses
    // power; Base loses little.
    let power = |id: &str, name: &str| {
        run(id)
            .as_figure()
            .unwrap()
            .series_named(name)
            .unwrap_or_else(|| panic!("{id} has series {name}"))
            .final_y()
            .unwrap()
    };
    for scheme in ["No-Cache", "Software-Flush", "Dragon"] {
        let low = power("fig4", scheme);
        let high = power("fig6", scheme);
        assert!(
            high < low,
            "{scheme}: fig6 ({high:.2}) must be below fig4 ({low:.2})"
        );
    }
    // No-Cache falls off a cliff; Dragon barely moves.
    let nc_drop = power("fig4", "No-Cache") / power("fig6", "No-Cache");
    let dragon_drop = power("fig4", "Dragon") / power("fig6", "Dragon");
    assert!(nc_drop > 3.0, "no-cache drop factor {nc_drop:.1}");
    assert!(dragon_drop < 2.0, "dragon drop factor {dragon_drop:.1}");
}

#[test]
fn figure5_matches_paper_saturation_claims() {
    // §5.2 (middle values): Dragon performs very well even with 16
    // processors; Software-Flush does well to 8-10 and then flattens.
    let fig = run("fig5");
    let f = fig.as_figure().unwrap();
    let dragon = f.series_named("Dragon").unwrap();
    let ideal16 = 16.0;
    assert!(dragon.final_y().unwrap() > 0.75 * ideal16);
    // "Software-Flush does well with up to 8-10 processors; from then
    // on, adding processors only slightly increases processing power."
    let sf = f.series_named("Software-Flush").unwrap();
    let sf10 = sf.points[9].1;
    let sf16 = sf.points[15].1;
    assert!(
        sf16 - sf10 < 0.25 * sf10,
        "SF must flatten past 10 cpus: {sf10:.2} -> {sf16:.2}"
    );
}

#[test]
fn figure7_apl_orders_the_curves() {
    let fig = run("fig7");
    let f = fig.as_figure().unwrap();
    let final_power = |apl: u32| {
        f.series_named(&format!("Software-Flush apl={apl}"))
            .unwrap()
            .final_y()
            .unwrap()
    };
    let mut last = 0.0;
    for apl in [1u32, 2, 4, 8, 25, 100] {
        let p = final_power(apl);
        assert!(p > last, "power must increase with apl (apl={apl})");
        last = p;
    }
}

#[test]
fn figure10_shows_crossover_from_bus_to_network() {
    let fig = run("fig10");
    let f = fig.as_figure().unwrap();
    let bus = f.series_named("No-Cache (bus)").unwrap();
    let net = f.series_named("No-Cache (network)").unwrap();
    // Small scale: bus is competitive; large scale: network wins.
    let bus_at = |n: f64| bus.points.iter().find(|p| p.0 == n).unwrap().1;
    let net_at = |n: f64| net.points.iter().find(|p| p.0 == n).unwrap().1;
    assert!(net_at(64.0) > bus_at(64.0), "network must win at 64 cpus");
}

#[test]
fn figure11_separates_the_two_performance_classes() {
    // §6.3: {B*, Sl, Sm, Nl} form the reasonable class; the rest are
    // much poorer.
    let fig = run("fig11");
    let f = fig.as_figure().unwrap();
    let u = |code: &str| f.series_named(code).unwrap().points[0].1;
    let reasonable = ["Bl", "Bm", "Bh", "Sl", "Sm", "Nl"];
    let poor = ["Sh", "Nm", "Nh"];
    let min_reasonable = reasonable
        .iter()
        .map(|c| u(c))
        .fold(f64::INFINITY, f64::min);
    let max_poor = poor.iter().map(|c| u(c)).fold(0.0, f64::max);
    assert!(
        min_reasonable > max_poor,
        "classes must separate: min reasonable {min_reasonable:.3} vs max poor {max_poor:.3}"
    );
}

#[test]
fn validation_figures_carry_model_and_sim_pairs() {
    for id in ["fig1", "fig2", "fig3"] {
        let fig = run(id);
        let f = fig.as_figure().unwrap();
        let sims = f.series.iter().filter(|s| s.name.ends_with(" sim")).count();
        let models = f
            .series
            .iter()
            .filter(|s| s.name.ends_with(" model"))
            .count();
        assert_eq!(sims, models, "{id}");
        assert!(sims >= 2, "{id} has {sims} sim series");
    }
}

#[test]
fn low_and_high_sharing_workload_helpers_are_consistent() {
    let low = figures::low_sharing_workload();
    let high = figures::high_sharing_workload();
    assert!(low.shd() < high.shd());
    assert!(low.ls() < high.ls());
    // Other parameters stay at middle.
    assert_eq!(low.msdat(), high.msdat());
    assert_eq!(low.apl(), high.apl());
}
