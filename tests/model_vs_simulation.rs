//! End-to-end validation: the analytical model against the trace-driven
//! simulator, for every protocol and several workload shapes — the
//! paper's §3 experiment plus the software schemes the authors could
//! not validate (their traces came from a hardware-coherent machine;
//! our synthetic traces carry the flush annotations Software-Flush
//! needs, so we can close that gap).

use swcc_core::prelude::*;
use swcc_sim::measure::measure_workload;
use swcc_sim::{simulate, ProtocolKind, SimConfig};
use swcc_trace::synth::{Preset, SynthConfig};
use swcc_trace::Trace;

const INSTRUCTIONS: usize = 40_000;

fn trace_for(protocol: ProtocolKind, cpus: u16, seed: u64) -> Trace {
    if protocol.uses_flushes() {
        let mut b = SynthConfig::builder();
        b.cpus(cpus)
            .instructions_per_cpu(INSTRUCTIONS)
            .seed(seed)
            .emit_flushes(true);
        b.build().generate()
    } else {
        Preset::Pops.config(cpus, INSTRUCTIONS, seed).generate()
    }
}

/// Model-vs-simulation relative error for one configuration.
fn relative_error(protocol: ProtocolKind, cpus: u16, seed: u64) -> f64 {
    let trace = trace_for(protocol, cpus, seed);
    let config = SimConfig::new(protocol);
    let workload = measure_workload(&trace, &config);
    let report = simulate(&trace, &config);
    let scheme = protocol.scheme().expect("paper protocol");
    let model = analyze_bus(scheme, &workload, config.system(), u32::from(cpus))
        .expect("bus analysis succeeds for measured workloads");
    (model.power() - report.power()) / report.power()
}

#[test]
fn base_model_tracks_simulation_within_15_percent() {
    for cpus in [1u16, 2, 4] {
        let err = relative_error(ProtocolKind::Base, cpus, 101);
        assert!(err.abs() < 0.15, "base at {cpus} cpus: {:.1}%", err * 100.0);
    }
}

#[test]
fn dragon_model_tracks_simulation_within_20_percent() {
    for cpus in [1u16, 2, 4] {
        let err = relative_error(ProtocolKind::Dragon, cpus, 103);
        assert!(
            err.abs() < 0.20,
            "dragon at {cpus} cpus: {:.1}%",
            err * 100.0
        );
    }
}

#[test]
fn no_cache_model_tracks_simulation_within_25_percent() {
    for cpus in [1u16, 2, 4] {
        let err = relative_error(ProtocolKind::NoCache, cpus, 107);
        assert!(
            err.abs() < 0.25,
            "no-cache at {cpus} cpus: {:.1}%",
            err * 100.0
        );
    }
}

#[test]
fn software_flush_model_tracks_simulation_within_30_percent() {
    // The Software-Flush workload model is the roughest (the paper
    // could not validate it at all); we hold it to 30%.
    for cpus in [1u16, 2, 4] {
        let err = relative_error(ProtocolKind::SoftwareFlush, cpus, 109);
        assert!(
            err.abs() < 0.30,
            "sw-flush at {cpus} cpus: {:.1}%",
            err * 100.0
        );
    }
}

#[test]
fn model_contention_bias_is_pessimistic_at_scale() {
    // §3: "it consistently overestimates bus contention" (exponential
    // vs fixed service). At 8 processors under a sharing-heavy trace,
    // the model should predict *at most* the simulated power, within
    // noise.
    let trace = Preset::Pero.config(8, INSTRUCTIONS, 113).generate();
    let config = SimConfig::new(ProtocolKind::Dragon);
    let workload = measure_workload(&trace, &config);
    let report = simulate(&trace, &config);
    let model = analyze_bus(Scheme::Dragon, &workload, config.system(), 8).unwrap();
    assert!(
        model.power() < report.power() * 1.08,
        "model {:.3} should not exceed sim {:.3} by more than noise",
        model.power(),
        report.power()
    );
}

#[test]
fn simulated_scheme_ordering_matches_model_ordering() {
    // The central sanity check: on one 4-cpu sharing workload, the
    // simulator and the model agree on who wins.
    let seed = 127;
    let mut powers_sim = Vec::new();
    let mut powers_model = Vec::new();
    for protocol in [
        ProtocolKind::Base,
        ProtocolKind::Dragon,
        ProtocolKind::NoCache,
    ] {
        let trace = trace_for(protocol, 4, seed);
        let config = SimConfig::new(protocol);
        let report = simulate(&trace, &config);
        let workload = measure_workload(&trace, &config);
        let scheme = protocol.scheme().expect("paper protocol");
        let model = analyze_bus(scheme, &workload, config.system(), 4).unwrap();
        powers_sim.push((protocol, report.power()));
        powers_model.push((protocol, model.power()));
    }
    let order = |v: &[(ProtocolKind, f64)]| -> Vec<ProtocolKind> {
        let mut v = v.to_vec();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        v.into_iter().map(|(p, _)| p).collect()
    };
    assert_eq!(order(&powers_sim), order(&powers_model));
    assert_eq!(order(&powers_sim)[0], ProtocolKind::Base);
}

#[test]
fn measured_parameters_are_stable_across_processor_counts() {
    // §3: model parameters should be "nearly constant as the number of
    // processors increases" — the property that makes one measurement
    // usable for the whole curve.
    let config = SimConfig::new(ProtocolKind::Dragon);
    let w2 = measure_workload(
        &Preset::Pops.config(2, INSTRUCTIONS, 131).generate(),
        &config,
    );
    let w4 = measure_workload(
        &Preset::Pops.config(4, INSTRUCTIONS, 131).generate(),
        &config,
    );
    assert!((w2.ls() - w4.ls()).abs() < 0.02);
    assert!((w2.msdat() - w4.msdat()).abs() < 0.02);
    assert!((w2.mains() - w4.mains()).abs() < 0.02);
}

#[test]
fn calibrated_workload_closes_the_full_loop() {
    // The full tool chain: ask the generator for a workload with given
    // Table 2 parameters, verify the trace measures back on target,
    // then check model and simulator agree on that workload.
    use swcc_trace::synth::{calibrate, CalibrationTarget, SynthConfig};

    let mut builder = SynthConfig::builder();
    builder.cpus(4).instructions_per_cpu(30_000).seed(0x100b);
    let calibration = calibrate(
        &builder,
        CalibrationTarget {
            ls: Some(0.3),
            shd: Some(0.25),
            apl: Some(6.0),
            ..CalibrationTarget::default()
        },
        0.15,
    );
    assert!((calibration.measured_ls - 0.3).abs() < 0.03);
    assert!((calibration.measured_shd - 0.25).abs() < 0.05);
    let apl = calibration.measured_apl.expect("4-cpu trace has runs");
    assert!((apl - 6.0).abs() / 6.0 < 0.25, "apl {apl}");

    let trace = calibration.generate();
    let config = SimConfig::new(ProtocolKind::Dragon);
    let workload = measure_workload(&trace, &config);
    let report = simulate(&trace, &config);
    let model = analyze_bus(Scheme::Dragon, &workload, config.system(), 4).unwrap();
    let err = (model.power() - report.power()).abs() / report.power();
    assert!(err < 0.2, "calibrated loop error {:.1}%", err * 100.0);
}

#[test]
fn flush_traces_change_software_flush_but_not_base() {
    // Base ignores flush records entirely; Software-Flush pays for them.
    let mut b = SynthConfig::builder();
    b.cpus(2)
        .instructions_per_cpu(20_000)
        .seed(137)
        .emit_flushes(true);
    let with_flushes = b.build().generate();

    let base = simulate(&with_flushes, &SimConfig::new(ProtocolKind::Base));
    let sf = simulate(&with_flushes, &SimConfig::new(ProtocolKind::SoftwareFlush));
    assert_eq!(base.counters(0).flush_records, 0);
    assert!(sf.counters(0).flush_records > 0);
    assert!(sf.power() < base.power());
}
