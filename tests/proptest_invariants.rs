//! Property-based tests: model invariants over the whole legal
//! parameter space, and simulator data-structure invariants over
//! arbitrary access patterns.

use proptest::prelude::*;

use swcc_core::network::{propagate, solve, SolveOptions, WarmSolver};
use swcc_core::prelude::*;
use swcc_core::queue::{machine_repairman, machine_repairman_sweep};
use swcc_sim::cache::{Cache, LineState};
use swcc_trace::BlockAddr;

/// A strategy over in-domain workloads.
fn workloads() -> impl Strategy<Value = WorkloadParams> {
    (
        0.0..=1.0f64,   // ls
        0.0..=0.2f64,   // msdat
        0.0..=0.05f64,  // mains
        0.0..=1.0f64,   // md
        0.0..=1.0f64,   // shd
        0.0..=1.0f64,   // wr
        1.0..=200.0f64, // apl
        0.0..=1.0f64,   // mdshd
        (0.0..=1.0f64, 0.0..=1.0f64, 0.0..=16.0f64),
    )
        .prop_map(
            |(ls, msdat, mains, md, shd, wr, apl, mdshd, (oclean, opres, nshd))| {
                let mut b = WorkloadParams::builder();
                b.ls(ls)
                    .msdat(msdat)
                    .mains(mains)
                    .md(md)
                    .shd(shd)
                    .wr(wr)
                    .apl(apl)
                    .mdshd(mdshd)
                    .oclean(oclean)
                    .opres(opres)
                    .nshd(nshd);
                b.build().expect("strategy stays in-domain")
            },
        )
}

/// A strategy over workloads confined to the paper's Table 7
/// low..high envelope.
fn table7_workloads() -> impl Strategy<Value = WorkloadParams> {
    let r = |id: ParamId| {
        let range = swcc_core::workload::TABLE7_RANGES.range(id);
        range.low.min(range.high)..=range.low.max(range.high)
    };
    (
        r(ParamId::Ls),
        r(ParamId::Msdat),
        r(ParamId::Mains),
        r(ParamId::Md),
        r(ParamId::Shd),
        r(ParamId::Wr),
        r(ParamId::Apl),
        r(ParamId::Mdshd),
        (r(ParamId::Oclean), r(ParamId::Opres), r(ParamId::Nshd)),
    )
        .prop_map(
            |(ls, msdat, mains, md, shd, wr, apl, mdshd, (oclean, opres, nshd))| {
                let mut b = WorkloadParams::builder();
                b.ls(ls)
                    .msdat(msdat)
                    .mains(mains)
                    .md(md)
                    .shd(shd)
                    .wr(wr)
                    .apl(apl)
                    .mdshd(mdshd)
                    .oclean(oclean)
                    .opres(opres)
                    .nshd(nshd);
                b.build().expect("Table 7 envelope is in-domain")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frequencies_are_finite_and_nonnegative(w in workloads()) {
        for s in Scheme::ALL {
            for (op, f) in s.mix(&w).iter() {
                prop_assert!(f.is_finite() && f >= 0.0, "{s}/{op}: {f}");
            }
        }
    }

    #[test]
    fn demand_has_cpu_at_least_one_and_bus_below_cpu(w in workloads()) {
        let sys = BusSystemModel::new();
        for s in Scheme::ALL {
            let d = scheme_demand(s, &w, &sys).unwrap();
            prop_assert!(d.cpu() >= 1.0, "{s}: c = {}", d.cpu());
            prop_assert!(d.interconnect() < d.cpu(), "{s}");
        }
    }

    #[test]
    fn base_dominates_all_schemes_within_table7_ranges(w in table7_workloads(), n in 1u32..24) {
        // Only within the Table 7 envelope — outside it the paper's
        // model lets coherence "win": Dragon's cache-to-cache misses
        // are a cycle cheaper than memory (visible when oclean → 0 with
        // wr → 0), Software-Flush books shared-data misses only through
        // the flush-refetch term (visible when apl >> 1/msdat), and at
        // extreme miss rates No-Cache's 2-cycle write-throughs beat
        // caching outright. Within the observed ranges, Base is the
        // upper bound the paper claims.
        let sys = BusSystemModel::new();
        let base = analyze_bus(Scheme::Base, &w, &sys, n).unwrap().power();
        for s in [Scheme::NoCache, Scheme::SoftwareFlush, Scheme::Dragon] {
            let p = analyze_bus(s, &w, &sys, n).unwrap().power();
            prop_assert!(p <= base + 1e-9, "{s}: {p} > {base}");
        }
    }

    #[test]
    fn utilization_and_power_are_bounded(w in workloads(), n in 1u32..64) {
        let sys = BusSystemModel::new();
        for s in Scheme::ALL {
            let p = analyze_bus(s, &w, &sys, n).unwrap();
            prop_assert!(p.utilization() > 0.0 && p.utilization() <= 1.0);
            prop_assert!(p.power() <= f64::from(n) + 1e-9);
            prop_assert!((0.0..=1.0).contains(&p.bus_utilization()));
        }
    }

    #[test]
    fn bus_sweep_matches_pointwise_analysis(w in workloads(), n in 1u32..48) {
        // The batched sweep must agree with the pointwise API within
        // 1e-12 at every population. (It is in fact bit-identical — the
        // sweep performs the same f64 operations in the same order — so
        // the comparison below is exact, which is stronger.)
        let sys = BusSystemModel::new();
        for s in Scheme::ALL {
            let sweep = analyze_bus_sweep(s, &w, &sys, n).unwrap();
            prop_assert_eq!(sweep.len(), n as usize);
            for (k, swept) in (1..=n).zip(&sweep) {
                let pointwise = analyze_bus(s, &w, &sys, k).unwrap();
                prop_assert!(
                    (swept.power() - pointwise.power()).abs() <= 1e-12,
                    "{s} at n={k}: swept {} vs pointwise {}",
                    swept.power(),
                    pointwise.power()
                );
                prop_assert_eq!(swept, &pointwise, "{} at n={}", s, k);
            }
        }
    }

    #[test]
    fn mva_sweep_matches_pointwise_solutions(
        n in 1u32..64,
        service in 0.0..5.0f64,
        think in 0.5..50.0f64,
    ) {
        let sweep = machine_repairman_sweep(n, service, think).unwrap();
        for k in 1..=n {
            let point = machine_repairman(k, service, think).unwrap();
            prop_assert_eq!(sweep.get(k).unwrap(), &point, "k = {}", k);
        }
    }

    #[test]
    fn warm_patel_solves_match_cold_within_tolerance(
        rate in 0.001..1.0f64,
        size in 0.0..40.0f64,
        stages in 0u32..10,
        hint in 0.0..=1.0f64,
    ) {
        // A warm start (any hint, even a bad one) must land on the same
        // fixed point as a cold solve, within the shared tolerance.
        let cold = solve(rate, size, stages).unwrap();
        let opts = SolveOptions {
            hint: Some(hint),
            ..SolveOptions::default()
        };
        let warm = swcc_core::network::solve_with(rate, size, stages, opts).unwrap();
        prop_assert!(
            (warm.think_fraction() - cold.think_fraction()).abs() <= 1e-9,
            "hinted {} vs cold {}",
            warm.think_fraction(),
            cold.think_fraction()
        );
        let mut solver = WarmSolver::new();
        let a = solver.solve(rate, size, stages).unwrap();
        let b = solver.solve(rate, size, stages).unwrap();
        prop_assert!((a.think_fraction() - b.think_fraction()).abs() <= 1e-9);
    }

    #[test]
    fn mva_waiting_monotone_in_population(service in 0.01..5.0f64, think in 0.5..50.0f64) {
        let mut prev = -1.0f64;
        for n in 1..=16u32 {
            let s = machine_repairman(n, service, think).unwrap();
            prop_assert!(s.waiting() >= prev - 1e-9);
            prev = s.waiting();
        }
    }

    #[test]
    fn mva_population_is_conserved(n in 1u32..32, service in 0.01..5.0f64, think in 0.5..50.0f64) {
        let s = machine_repairman(n, service, think).unwrap();
        let total = s.queue_len() + s.throughput() * think;
        prop_assert!((total - f64::from(n)).abs() < 1e-6);
    }

    #[test]
    fn patel_propagation_never_creates_load(m0 in 0.0..=1.0f64, stages in 0u32..12) {
        let out = propagate(m0, stages);
        prop_assert!(out <= m0 + 1e-12);
        prop_assert!(out >= 0.0);
    }

    #[test]
    fn patel_fixed_point_is_consistent(rate in 0.001..1.0f64, size in 0.0..40.0f64, stages in 0u32..10) {
        let op = solve(rate, size, stages).unwrap();
        let u = op.think_fraction();
        prop_assert!((0.0..=1.0).contains(&u));
        if rate * size > 0.0 {
            let residual = propagate(1.0 - u, stages) - u * rate * size;
            prop_assert!(residual.abs() < 1e-6, "residual {residual}");
        }
    }

    #[test]
    fn network_utilization_monotone_in_demand(stages in 1u32..10) {
        let mut prev = f64::INFINITY;
        for i in 1..=20 {
            let u = solve(f64::from(i) * 0.01, 20.0, stages).unwrap().think_fraction();
            prop_assert!(u <= prev + 1e-12);
            prev = u;
        }
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        ops in prop::collection::vec((0u64..64, prop::bool::ANY), 1..200)
    ) {
        let mut cache = Cache::new(16 * 16, 2, 4); // 16 blocks, 8 sets, 2-way
        for (block, write) in ops {
            let b = BlockAddr(block);
            if cache.touch(b).is_none() {
                cache.insert(b, if write { LineState::Dirty } else { LineState::Clean });
            } else if write {
                cache.set_state(b, LineState::Dirty);
            }
            prop_assert!(cache.occupancy() <= 16);
        }
    }

    #[test]
    fn trace_io_round_trips_arbitrary_traces(
        records in prop::collection::vec(
            (0u16..8, 0u8..4, 0u64..u64::MAX / 2),
            0..200,
        )
    ) {
        use swcc_trace::io::{read_binary, read_text, write_binary, write_text};
        use swcc_trace::{Access, AccessKind, Trace};
        let kinds = [
            AccessKind::Fetch,
            AccessKind::Load,
            AccessKind::Store,
            AccessKind::Flush,
        ];
        let trace = Trace::from_records(
            records
                .into_iter()
                .map(|(cpu, k, addr)| Access::new(cpu, kinds[k as usize], addr))
                .collect(),
        );
        let mut text = Vec::new();
        write_text(&trace, &mut text).unwrap();
        prop_assert_eq!(&read_text(text.as_slice()).unwrap(), &trace);
        let mut bin = Vec::new();
        write_binary(&trace, &mut bin).unwrap();
        prop_assert_eq!(&read_binary(bin.as_slice()).unwrap(), &trace);
    }

    #[test]
    fn trace_readers_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // Malformed input must surface as Err, never as a panic.
        let _ = swcc_trace::io::read_binary(bytes.as_slice());
        let _ = swcc_trace::io::read_text(bytes.as_slice());
    }

    #[test]
    fn corrupting_one_byte_never_panics_the_binary_reader(
        corrupt_at in 0usize..100,
        value in any::<u8>(),
    ) {
        use swcc_trace::io::{read_binary, write_binary};
        let trace = swcc_trace::synth::pops_like(2, 50, 1).generate();
        let mut buf = Vec::new();
        write_binary(&trace, &mut buf).unwrap();
        let idx = corrupt_at % buf.len();
        buf[idx] = value;
        // Either it still parses (the byte was benign) or it errors.
        let _ = read_binary(buf.as_slice());
    }

    #[test]
    fn cache_hits_after_insert_until_evicted(block in 0u64..1024) {
        let mut cache = Cache::new(64 * 16, 4, 4);
        let b = BlockAddr(block);
        cache.insert(b, LineState::Clean);
        prop_assert_eq!(cache.touch(b), Some(LineState::Clean));
        prop_assert_eq!(cache.invalidate(b), Some(LineState::Clean));
        prop_assert_eq!(cache.touch(b), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simulator_conserves_instruction_counts(seed in 0u64..1000) {
        use swcc_sim::{simulate, ProtocolKind, SimConfig};
        let mut b = swcc_trace::synth::SynthConfig::builder();
        b.cpus(2).instructions_per_cpu(2_000).seed(seed);
        let trace = b.build().generate();
        let fetches = trace
            .iter()
            .filter(|a| a.kind == swcc_trace::AccessKind::Fetch)
            .count() as u64;
        for p in [ProtocolKind::Base, ProtocolKind::Dragon] {
            let r = simulate(&trace, &SimConfig::new(p));
            prop_assert_eq!(r.instructions(), fetches);
            prop_assert!(r.power() <= 2.0);
        }
    }
}
