//! End-to-end tests for `swcc-serve`: a real listener, real sockets,
//! and bit-exact comparison of served results against direct library
//! calls.
//!
//! The golden equivalence claim is the serve crate's core contract:
//! a response float, parsed back from its JSON text, must equal the
//! direct library result **bitwise** — cold (cache miss), warm (cache
//! hit), and coalesced (attached to another request's in-flight solve)
//! paths alike. Bus results are compared against
//! [`swcc_core::bus::analyze_bus`]; network results against the modern
//! batch solver path ([`swcc_core::batch::BatchPatelSolver`]), which is
//! the solver the server uses (not the legacy 200-step bisection).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::Value;
use swcc_core::batch::{BatchPatelSolver, Stages};
use swcc_core::bus::analyze_bus;
use swcc_core::demand::scheme_demand;
use swcc_core::network::NetworkPerformance;
use swcc_core::scheme::Scheme;
use swcc_core::sensitivity::sensitivity_table_at;
use swcc_core::system::{BusSystemModel, NetworkSystemModel};
use swcc_core::workload::{Level, ParamId, WorkloadParams};
use swcc_serve::{spawn, RunningServer, ServeConfig};

fn start(workers: usize) -> RunningServer {
    spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        read_timeout: Duration::from_secs(5),
        solve_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    })
    .expect("bind a loopback listener")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    response: String,
}

impl Client {
    fn connect(server: &RunningServer) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_nodelay(true).ok();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
            response: String::new(),
        }
    }

    fn send(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
        self.writer.flush().expect("flush");
        self.response.clear();
        let n = self.reader.read_line(&mut self.response).expect("read");
        assert!(n > 0, "server closed the connection");
        serde_json::from_str(self.response.trim()).expect("response parses as JSON")
    }
}

fn ok(value: &Value) -> bool {
    value.get_field("ok").and_then(Value::as_bool) == Some(true)
}

fn first_point(value: &Value) -> &Value {
    value
        .get_field("results")
        .and_then(|r| r.get_index(0))
        .and_then(|q| q.get_field("points"))
        .and_then(|p| p.get_index(0))
        .expect("response has results[0].points[0]")
}

fn f(value: &Value, name: &str) -> f64 {
    value
        .get_field(name)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field {name}"))
}

fn cached(value: &Value) -> &str {
    value
        .get_field("cached")
        .and_then(Value::as_str)
        .expect("point has a cached tag")
}

#[test]
fn ping_reports_the_protocol_version() {
    let server = start(1);
    let mut client = Client::connect(&server);
    let pong = client.send(r#"{"cmd":"ping"}"#);
    assert!(ok(&pong));
    assert_eq!(
        pong.get_field("version").and_then(Value::as_str),
        Some(swcc_serve::PROTOCOL_VERSION)
    );
    server.shutdown();
    server.join();
}

#[test]
fn golden_bus_results_are_bit_identical_cold_and_cached() {
    let server = start(2);
    let mut client = Client::connect(&server);
    let workload = WorkloadParams::at_level(Level::Middle);
    let system = BusSystemModel::new();
    for scheme in Scheme::ALL {
        for processors in [1u32, 16, 64] {
            let line = format!(
                "{{\"queries\":[{{\"scheme\":\"{scheme}\",\"machine\":{{\
                 \"interconnect\":\"bus\",\"processors\":{processors}}}}}]}}"
            );
            let direct = analyze_bus(scheme, &workload, &system, processors).unwrap();
            let cold = client.send(&line);
            assert!(ok(&cold), "{}", client.response);
            let cold_point = first_point(&cold);
            // The first request for this queue must actually solve it…
            assert_eq!(cached(cold_point), "miss", "{scheme} x{processors}");
            let warm = client.send(&line);
            let warm_point = first_point(&warm);
            // …and the second must come from the cache.
            assert_eq!(cached(warm_point), "hit", "{scheme} x{processors}");
            for point in [cold_point, warm_point] {
                for (name, want) in [
                    ("power", direct.power()),
                    ("utilization", direct.utilization()),
                    ("cpi", direct.cycles_per_instruction()),
                    ("waiting", direct.waiting()),
                    ("bus_utilization", direct.bus_utilization()),
                ] {
                    assert_eq!(
                        f(point, name).to_bits(),
                        want.to_bits(),
                        "{scheme} x{processors} {name}"
                    );
                }
            }
        }
    }
    server.shutdown();
    server.join();
}

#[test]
fn golden_bus_sweep_matches_pointwise_library_calls() {
    let server = start(1);
    let mut client = Client::connect(&server);
    let system = BusSystemModel::new();
    let base = WorkloadParams::at_level(Level::Middle);
    let points = 9;
    let line = format!(
        "{{\"compact\":true,\"queries\":[{{\"kind\":\"penalty\",\"scheme\":\"software-flush\",\
         \"machine\":{{\"interconnect\":\"bus\",\"processors\":32}},\
         \"sweep\":{{\"param\":\"apl\",\"from\":1.0,\"to\":25.0,\"points\":{points}}}}}]}}"
    );
    let response = client.send(&line);
    assert!(ok(&response), "{}", client.response);
    let values = response
        .get_field("results")
        .and_then(|r| r.get_index(0))
        .and_then(|q| q.get_field("values"))
        .and_then(Value::as_array)
        .expect("compact response has values");
    assert_eq!(values.len(), points);
    for (i, served) in values.iter().enumerate() {
        let apl = 1.0 + (25.0 - 1.0) * i as f64 / (points - 1) as f64;
        let w = base.with_param(ParamId::Apl, apl).unwrap();
        let direct = analyze_bus(Scheme::SoftwareFlush, &w, &system, 32).unwrap();
        assert_eq!(
            served.as_f64().unwrap().to_bits(),
            direct.waiting().to_bits(),
            "sweep point {i} (apl = {apl})"
        );
    }
    server.shutdown();
    server.join();
}

#[test]
fn golden_network_results_match_the_batch_solver_path() {
    let server = start(1);
    let mut client = Client::connect(&server);
    let workload = WorkloadParams::at_level(Level::Middle);
    for scheme in [Scheme::Base, Scheme::NoCache, Scheme::SoftwareFlush] {
        for stages in [2u32, 6, 10] {
            let line = format!(
                "{{\"queries\":[{{\"scheme\":\"{scheme}\",\"machine\":{{\
                 \"interconnect\":\"network\",\"stages\":{stages}}}}}]}}"
            );
            let demand =
                scheme_demand(scheme, &workload, &NetworkSystemModel::new(stages)).unwrap();
            let solved = BatchPatelSolver::new()
                .solve_grid(
                    &[demand.transaction_rate()],
                    &[demand.transaction_size()],
                    &Stages::Uniform(stages),
                    None,
                )
                .unwrap();
            let direct = NetworkPerformance::from_operating_point(
                scheme,
                stages,
                demand,
                solved.points()[0],
            );
            let response = client.send(&line);
            assert!(ok(&response), "{}", client.response);
            let point = first_point(&response);
            for (name, want) in [
                ("power", direct.power()),
                ("utilization", direct.utilization()),
                ("think_fraction", direct.operating_point().think_fraction()),
            ] {
                assert_eq!(
                    f(point, name).to_bits(),
                    want.to_bits(),
                    "{scheme} {stages} stages {name}"
                );
            }
        }
    }
    server.shutdown();
    server.join();
}

#[test]
fn sensitivity_ranking_matches_the_library() {
    let server = start(1);
    let mut client = Client::connect(&server);
    let line = r#"{"queries":[{"kind":"sensitivity","scheme":"software-flush","machine":{"interconnect":"bus","processors":16}}]}"#;
    let response = client.send(line);
    assert!(ok(&response), "{}", client.response);
    let ranking = response
        .get_field("results")
        .and_then(|r| r.get_index(0))
        .and_then(|q| q.get_field("ranking"))
        .and_then(Value::as_array)
        .expect("sensitivity response has a ranking");
    let table = sensitivity_table_at(16, &WorkloadParams::at_level(Level::Middle)).unwrap();
    let direct = table.ranking(Scheme::SoftwareFlush);
    assert_eq!(ranking.len(), direct.len());
    for (served, (param, percent)) in ranking.iter().zip(&direct) {
        assert_eq!(
            served.get_field("param").and_then(Value::as_str),
            Some(param.name())
        );
        assert_eq!(f(served, "percent").to_bits(), percent.to_bits(), "{param}");
    }
    // The paper's headline result survives the wire: apl dominates.
    assert_eq!(direct[0].0, ParamId::Apl);
    server.shutdown();
    server.join();
}

#[test]
fn racing_identical_cold_queries_solve_exactly_once() {
    let server = start(8);
    let line = r#"{"queries":[{"scheme":"dragon","machine":{"interconnect":"bus","processors":48},"workload":{"shd":0.123}}]}"#;
    let mut handles = Vec::new();
    for _ in 0..8 {
        let mut client = Client::connect(&server);
        let line = line.to_string();
        handles.push(std::thread::spawn(move || {
            let response = client.send(&line);
            assert!(ok(&response), "{}", client.response);
            let point = first_point(&response);
            (f(point, "power").to_bits(), cached(point).to_string())
        }));
    }
    let results: Vec<(u64, String)> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    // Every racer serves the same bits…
    let bits = results[0].0;
    assert!(results.iter().all(|(b, _)| *b == bits));
    // …exactly one of them solved it (the rest hit or coalesced).
    let misses = results.iter().filter(|(_, tag)| tag == "miss").count();
    assert_eq!(misses, 1, "tags: {results:?}");
    let state = server.state();
    assert!(
        state.stats_response().contains("\"solve_lanes\":1"),
        "{}",
        state.stats_response()
    );
    server.shutdown();
    server.join();
}

#[test]
fn errors_name_the_offending_query_and_keep_the_connection_alive() {
    let server = start(1);
    let mut client = Client::connect(&server);

    let bad_scheme = client.send(
        r#"{"id":41,"queries":[{"scheme":"mesi","machine":{"interconnect":"bus","processors":4}}]}"#,
    );
    assert!(!ok(&bad_scheme));
    let message = bad_scheme
        .get_field("error")
        .and_then(Value::as_str)
        .unwrap();
    assert!(message.contains("query 0"), "{message}");
    assert_eq!(bad_scheme.get_field("id").and_then(Value::as_u64), Some(41));

    let bad_json = client.send("this is not json");
    assert!(!ok(&bad_json));

    let dragon_net = client.send(
        r#"{"queries":[{"scheme":"dragon","machine":{"interconnect":"network","stages":4}}]}"#,
    );
    assert!(!ok(&dragon_net));

    // The connection survives all three errors.
    let pong = client.send(r#"{"cmd":"ping"}"#);
    assert!(ok(&pong));
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_command_stops_the_server() {
    let server = start(2);
    let mut client = Client::connect(&server);
    let response = client.send(r#"{"cmd":"shutdown"}"#);
    assert!(ok(&response));
    assert!(server.state().shutting_down());
    // join() returning proves the whole pool drained.
    server.join();
}

#[test]
fn stats_carry_uptime_and_build_provenance() {
    let server = start(1);
    let mut client = Client::connect(&server);
    let stats = client.send(r#"{"cmd":"stats"}"#);
    assert!(ok(&stats));
    let inner = stats.get_field("stats").expect("stats object");
    let uptime = inner
        .get_field("uptime_s")
        .and_then(Value::as_f64)
        .expect("stats has uptime_s");
    assert!(uptime >= 0.0);
    let build = inner.get_field("build").expect("stats has build");
    for field in ["commit", "rustc", "profile"] {
        let v = build
            .get_field(field)
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("build has string {field}"));
        assert!(!v.is_empty(), "{field} must be non-empty");
    }
    server.shutdown();
    server.join();
}

#[test]
fn telemetry_command_reports_windows_uptime_and_build() {
    let server = start(1);
    let mut client = Client::connect(&server);
    // Generate some traffic first so the windows have something in them.
    let batch = client
        .send(r#"{"queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":4}}]}"#);
    assert!(ok(&batch));
    let telemetry = client.send(r#"{"cmd":"telemetry"}"#);
    assert!(ok(&telemetry), "{}", client.response);
    assert_eq!(
        telemetry.get_field("schema").and_then(Value::as_str),
        Some(swcc_serve::TELEMETRY_SCHEMA)
    );
    assert!(telemetry
        .get_field("uptime_s")
        .and_then(Value::as_f64)
        .is_some());
    assert!(telemetry.get_field("build").is_some());
    let windows = telemetry
        .get_field("windows")
        .and_then(|w| w.get_field("windows"))
        .and_then(Value::as_array)
        .expect("telemetry has windows.windows[]");
    assert_eq!(windows.len(), 3, "1s / 10s / 60s");
    // No registry was installed into this config → cumulative is null.
    let cumulative = telemetry.get_field("cumulative").expect("field present");
    assert!(cumulative.is_null(), "{cumulative:?}");
    // The slow view always answers, even when empty.
    let slow = client.send(r#"{"cmd":"telemetry","slow":true}"#);
    assert!(ok(&slow));
    assert!(slow.get_field("slow").and_then(Value::as_array).is_some());
    server.shutdown();
    server.join();
}

#[test]
fn batch_responses_echo_the_client_request_id() {
    let server = start(1);
    let mut client = Client::connect(&server);
    let response = client.send(
        r#"{"request":"trace-me-7","queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":4}}]}"#,
    );
    assert!(ok(&response));
    assert_eq!(
        response.get_field("request").and_then(Value::as_str),
        Some("trace-me-7")
    );
    server.shutdown();
    server.join();
}

#[test]
fn request_accounting_shows_up_in_stats() {
    let server = start(1);
    let mut client = Client::connect(&server);
    // Dragon's demand varies point-to-point under a shd sweep, so all
    // 16 points are distinct cache keys.
    let line = r#"{"compact":true,"queries":[{"scheme":"dragon","machine":{"interconnect":"bus","processors":8},"sweep":{"param":"shd","from":0.01,"to":0.2,"points":16}}]}"#;
    let first = client.send(line);
    assert!(ok(&first));
    let second = client.send(line);
    assert!(ok(&second));
    let second_cache = second.get_field("cache").unwrap();
    assert_eq!(
        second_cache.get_field("hits").and_then(Value::as_u64),
        Some(16),
        "warm request is all hits"
    );
    let stats = client.send(r#"{"cmd":"stats"}"#);
    let inner = stats.get_field("stats").unwrap();
    assert_eq!(inner.get_field("queries").and_then(Value::as_u64), Some(32));
    assert_eq!(inner.get_field("solves").and_then(Value::as_u64), Some(1));
    let cache = inner.get_field("cache").unwrap();
    assert_eq!(cache.get_field("entries").and_then(Value::as_u64), Some(16));
    server.shutdown();
    server.join();
}
