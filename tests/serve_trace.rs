//! Observability end-to-end tests for `swcc-serve`: request-scoped
//! span parenting under the worker pool, JSON ↔ Prometheus telemetry
//! consistency, the access log and slow-request capture, and the
//! bit-equality guarantee that full observation never changes a served
//! float.
//!
//! This is its own integration binary (separate process from
//! `serve_e2e`) because it installs the once-per-process trace sink and
//! metrics registry.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use serde::Value;
use swcc_core::bus::analyze_bus;
use swcc_core::scheme::Scheme;
use swcc_core::system::BusSystemModel;
use swcc_core::workload::{Level, WorkloadParams};
use swcc_obs::tree::{Scalar, SpanNode, SpanTree};
use swcc_obs::{JsonlSink, MetricsRegistry};
use swcc_serve::{spawn, RunningServer, ServeConfig};

/// The shared once-per-process observability installation: a JSONL
/// trace sink plus a registry covering core + serve metric names.
fn observability() -> (&'static JsonlSink, &'static MetricsRegistry) {
    static SINK: OnceLock<&'static JsonlSink> = OnceLock::new();
    static REGISTRY: OnceLock<&'static MetricsRegistry> = OnceLock::new();
    let sink = *SINK.get_or_init(|| {
        let sink: &'static JsonlSink = Box::leak(Box::new(JsonlSink::with_capacity(65_536)));
        swcc_obs::install_sink(sink).expect("first sink install in this process");
        sink
    });
    let registry = *REGISTRY.get_or_init(|| {
        let registry = swcc_serve::metrics::register(swcc_core::metrics::register(
            swcc_obs::RegistryBuilder::new(),
        ))
        .build();
        let registry: &'static MetricsRegistry = Box::leak(Box::new(registry));
        swcc_obs::install(registry).expect("first registry install in this process");
        registry
    });
    (sink, registry)
}

fn start(config: ServeConfig) -> RunningServer {
    spawn(config).expect("bind a loopback listener")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    response: String,
}

impl Client {
    fn connect(server: &RunningServer) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_nodelay(true).ok();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
            response: String::new(),
        }
    }

    fn send(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write");
        self.writer.flush().expect("flush");
        self.response.clear();
        let n = self.reader.read_line(&mut self.response).expect("read");
        assert!(n > 0, "server closed the connection");
        serde_json::from_str(self.response.trim()).expect("response parses as JSON")
    }
}

fn ok(value: &Value) -> bool {
    value.get_field("ok").and_then(Value::as_bool) == Some(true)
}

fn node_field<'a>(node: &'a SpanNode, key: &str) -> Option<&'a Scalar> {
    node.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Sleeps just past the next wall-clock second boundary. The window
/// ring folds *completed* seconds only (the in-progress second would
/// under-report rates), so a test that wants its traffic visible in a
/// snapshot must let the second it landed in finish first.
fn wait_for_next_second() {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    let to_boundary = Duration::from_nanos(u64::from(1_000_000_000 - now.subsec_nanos()));
    std::thread::sleep(to_boundary + Duration::from_millis(20));
}

fn temp_path(name: &str) -> String {
    let mut path = std::env::temp_dir();
    path.push(format!("swcc-serve-trace-{}-{name}", std::process::id()));
    path.to_string_lossy().into_owned()
}

/// Satellite: cross-thread span parenting under the worker pool. Two
/// connections race the same cold sweep; the flight owner's worker
/// thread runs the solve, the other connection waits on (or hits) the
/// published points. The `serve.solve` spans must parent under the
/// *owner's* `serve.request` span only — never under the waiter's.
#[test]
fn solve_spans_parent_under_the_owning_request_span() {
    let (sink, _) = observability();
    let server = start(ServeConfig {
        workers: 4,
        read_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    });

    // A cold dragon sweep is wide enough that the waiter arrives while
    // the owner's solve is still in flight on the owner's thread.
    let sweep = |rid: &str| {
        format!(
            "{{\"request\":\"{rid}\",\"queries\":[{{\"scheme\":\"dragon\",\
             \"machine\":{{\"interconnect\":\"bus\",\"processors\":24}},\
             \"sweep\":{{\"param\":\"shd\",\"from\":0.01,\"to\":0.3,\
             \"points\":768}}}}]}}"
        )
    };
    let owner_line = sweep("req-owner");
    let waiter_line = sweep("req-waiter");

    let owner_server = Client::connect(&server);
    let waiter_server = Client::connect(&server);
    let owner = std::thread::spawn(move || {
        let mut client = owner_server;
        let response = client.send(&owner_line);
        assert!(ok(&response), "{}", client.response);
        response
    });
    let waiter = std::thread::spawn(move || {
        let mut client = waiter_server;
        // Arrive while the owner's batch solve is (very likely) still
        // running; correctness below does not depend on winning the race.
        std::thread::sleep(Duration::from_millis(10));
        let response = client.send(&waiter_line);
        assert!(ok(&response), "{}", client.response);
        response
    });
    let owner_response = owner.join().expect("owner thread");
    let waiter_response = waiter.join().expect("waiter thread");

    // The waiter never solved anything itself: every one of its points
    // was a hit or coalesced onto the owner's flight.
    let waiter_misses = waiter_response
        .get_field("cache")
        .and_then(|c| c.get_field("misses"))
        .and_then(Value::as_u64)
        .expect("waiter cache counters");
    assert_eq!(waiter_misses, 0, "waiter must not claim any point");
    let owner_misses = owner_response
        .get_field("cache")
        .and_then(|c| c.get_field("misses"))
        .and_then(Value::as_u64)
        .expect("owner cache counters");
    assert!(owner_misses > 0, "owner claimed the cold points");

    let text = sink.lines().join("\n");
    let parsed = swcc_obs::parse_trace(&text);
    assert_eq!(parsed.skipped, 0, "trace lines all parse");
    let tree = SpanTree::build(&parsed.events);

    let request_node = |rid: &str| {
        tree.nodes()
            .iter()
            .position(|n| {
                n.name == "serve.request"
                    && node_field(n, "request").and_then(Scalar::as_str) == Some(rid)
            })
            .unwrap_or_else(|| panic!("no serve.request span for {rid}"))
    };
    let owner_idx = request_node("req-owner");
    let waiter_idx = request_node("req-waiter");
    let nodes = tree.nodes();

    let solve_children = |idx: usize| {
        nodes[idx]
            .children
            .iter()
            .filter(|c| nodes[**c].name == "serve.solve")
            .count()
    };
    assert!(
        solve_children(owner_idx) >= 1,
        "owner's request span owns the solve span(s)"
    );
    assert_eq!(
        solve_children(waiter_idx),
        0,
        "waiter's request span must not own any solve span"
    );
    // The solve ran on the owner's worker thread, under the owner's
    // request span — same thread, proper parent linkage.
    for child in &nodes[owner_idx].children {
        let child = &nodes[*child];
        if child.name == "serve.solve" {
            assert_eq!(child.parent, nodes[owner_idx].id);
            assert_eq!(child.thread, nodes[owner_idx].thread);
        }
    }

    server.shutdown();
    server.join();
}

/// Acceptance: the telemetry endpoint's JSON and Prometheus renderings
/// come from one snapshot and agree with each other.
#[test]
fn telemetry_json_and_prometheus_renderings_are_consistent() {
    let (_, registry) = observability();
    let server = start(ServeConfig {
        workers: 1,
        registry: Some(registry),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&server);
    for _ in 0..3 {
        let response = client.send(
            r#"{"queries":[{"scheme":"software-flush","machine":{"interconnect":"bus","processors":12}}]}"#,
        );
        assert!(ok(&response));
    }
    wait_for_next_second();
    let telemetry = client.send(r#"{"cmd":"telemetry","format":"prometheus"}"#);
    assert!(ok(&telemetry), "{}", client.response);
    let exposition = telemetry
        .get_field("exposition")
        .and_then(Value::as_str)
        .expect("prometheus format carries the exposition text");

    // Scrapes a `name{...labels...} value` line out of the exposition.
    let prom_value = |name: &str, labels: &str| -> String {
        let needle = format!("{name}{labels} ");
        exposition
            .lines()
            .find_map(|l| l.strip_prefix(&needle))
            .unwrap_or_else(|| panic!("no exposition line {needle}: {exposition}"))
            .to_string()
    };

    // Uptime: sampled once, identical text in both renderings.
    let uptime = telemetry
        .get_field("uptime_s")
        .and_then(Value::as_f64)
        .expect("uptime_s");
    assert_eq!(
        prom_value("swcc_serve_uptime_seconds", ""),
        format!("{uptime}")
    );

    // Windowed counters: every total in the JSON 60s window appears as
    // the same number in the exposition.
    let windows = telemetry
        .get_field("windows")
        .and_then(|w| w.get_field("windows"))
        .and_then(Value::as_array)
        .expect("windows array");
    let sixty = windows
        .iter()
        .find(|w| w.get_field("seconds").and_then(Value::as_u64) == Some(60))
        .expect("60s window");
    let counters = sixty
        .get_field("counters")
        .and_then(Value::as_object)
        .expect("counters object");
    assert!(
        counters
            .iter()
            .any(|(name, v)| name == "requests" && v.as_u64().unwrap_or(0) >= 3),
        "the batch traffic landed in the 60s window"
    );
    for (name, total) in counters {
        let got = prom_value(
            "swcc_serve_window_total",
            &format!("{{counter=\"{name}\",window=\"60s\"}}"),
        );
        assert_eq!(got, format!("{}", total.as_u64().expect("total")), "{name}");
    }

    // Cumulative registry: JSON counter values match the `_total` lines.
    let cumulative = telemetry
        .get_field("cumulative")
        .expect("cumulative present");
    assert!(!cumulative.is_null(), "registry was configured");
    let cum_counters = cumulative
        .get_field("counters")
        .and_then(Value::as_object)
        .expect("cumulative counters");
    for (name, value) in cum_counters {
        if name != "serve.requests" && name != "serve.queries" {
            continue;
        }
        let sanitized: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let got = prom_value(&format!("swcc_{sanitized}_total"), "");
        assert_eq!(got, format!("{}", value.as_u64().expect("count")), "{name}");
    }

    // Build provenance rides in both renderings.
    let commit = telemetry
        .get_field("build")
        .and_then(|b| b.get_field("commit"))
        .and_then(Value::as_str)
        .expect("build.commit");
    assert!(
        exposition.contains(&format!("commit=\"{commit}\"")),
        "build info line carries the same commit"
    );

    drop(client);
    server.shutdown();
    server.join();
}

/// Acceptance: full observation (sink + registry + access log + a slow
/// threshold that captures everything) changes no served float.
#[test]
fn full_observation_changes_no_served_bits() {
    let (_, registry) = observability();
    let access_log = temp_path("bits-access.jsonl");
    let server = start(ServeConfig {
        workers: 1,
        registry: Some(registry),
        access_log: Some(access_log.clone()),
        slow_threshold_us: 0.001,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&server);
    let workload = WorkloadParams::at_level(Level::Middle);
    let system = BusSystemModel::new();
    for scheme in Scheme::ALL {
        let line = format!(
            "{{\"queries\":[{{\"scheme\":\"{scheme}\",\"machine\":{{\
             \"interconnect\":\"bus\",\"processors\":16}}}}]}}"
        );
        let response = client.send(&line);
        assert!(ok(&response), "{}", client.response);
        let point = response
            .get_field("results")
            .and_then(|r| r.get_index(0))
            .and_then(|q| q.get_field("points"))
            .and_then(|p| p.get_index(0))
            .expect("results[0].points[0]");
        let direct = analyze_bus(scheme, &workload, &system, 16).expect("direct call");
        for (name, want) in [
            ("power", direct.power()),
            ("utilization", direct.utilization()),
            ("cpi", direct.cycles_per_instruction()),
            ("waiting", direct.waiting()),
            ("bus_utilization", direct.bus_utilization()),
        ] {
            let got = point
                .get_field(name)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(got.to_bits(), want.to_bits(), "{scheme} {name}");
        }
    }
    drop(client);
    server.shutdown();
    server.join();
    let _ = std::fs::remove_file(&access_log);
}

/// Requests over the threshold land in the slow ring, retrievable via
/// `telemetry --slow` with their request id and phase spans.
#[test]
fn slow_requests_are_captured_and_retrievable() {
    let (_, registry) = observability();
    let server = start(ServeConfig {
        workers: 1,
        registry: Some(registry),
        slow_threshold_us: 0.001, // everything is "slow"
        slow_capacity: 8,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&server);
    let response = client.send(
        r#"{"request":"slow-probe","queries":[{"scheme":"dragon","machine":{"interconnect":"bus","processors":32},"sweep":{"param":"shd","from":0.02,"to":0.2,"points":64}}]}"#,
    );
    assert!(ok(&response));
    let slow = client.send(r#"{"cmd":"telemetry","slow":true}"#);
    assert!(ok(&slow), "{}", client.response);
    let captures = slow
        .get_field("slow")
        .and_then(Value::as_array)
        .expect("slow array");
    let probe = captures
        .iter()
        .find(|c| c.get_field("request").and_then(Value::as_str) == Some("slow-probe"))
        .expect("the probe request was captured");
    assert!(probe
        .get_field("duration_us")
        .and_then(Value::as_f64)
        .is_some());
    let spans = probe
        .get_field("spans")
        .and_then(Value::as_array)
        .expect("capture has spans");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get_field("name").and_then(Value::as_str))
        .collect();
    assert_eq!(names.first(), Some(&"serve.request"));
    assert!(names.contains(&"plan"), "{names:?}");
    assert!(names.contains(&"solve.bus"), "{names:?}");
    assert!(names.contains(&"render"), "{names:?}");
    drop(client);
    server.shutdown();
    server.join();
}

/// Every access-log line is one JSON object with the contract fields.
#[test]
fn access_log_lines_carry_the_contract_fields() {
    let (_, registry) = observability();
    let access_log = temp_path("contract-access.jsonl");
    let server = start(ServeConfig {
        workers: 1,
        registry: Some(registry),
        access_log: Some(access_log.clone()),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&server);
    let response = client.send(
        r#"{"request":"log-me","queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":8}},{"scheme":"dragon","machine":{"interconnect":"bus","processors":8}}]}"#,
    );
    assert!(ok(&response));
    drop(client);
    server.shutdown();
    server.join();

    let text = std::fs::read_to_string(&access_log).expect("access log exists");
    let line = text
        .lines()
        .find(|l| l.contains("\"request\":\"log-me\""))
        .expect("the batch line was logged");
    let parsed: Value = serde_json::from_str(line).expect("access line parses");
    assert_eq!(
        parsed.get_field("cmd").and_then(Value::as_str),
        Some("batch")
    );
    assert_eq!(parsed.get_field("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(parsed.get_field("queries").and_then(Value::as_u64), Some(2));
    assert_eq!(parsed.get_field("points").and_then(Value::as_u64), Some(2));
    for field in [
        "ts_s",
        "hits",
        "misses",
        "coalesced",
        "flight_wait_us",
        "duration_us",
    ] {
        assert!(
            parsed.get_field(field).and_then(Value::as_f64).is_some(),
            "missing {field}: {line}"
        );
    }
    let schemes: Vec<&str> = parsed
        .get_field("schemes")
        .and_then(Value::as_array)
        .expect("schemes array")
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(schemes, vec!["base", "dragon"]);
    let _ = std::fs::remove_file(&access_log);
}

/// The exposition listener answers scrapers over plain HTTP.
#[test]
fn exposition_listener_serves_metrics_telemetry_and_slow() {
    let (_, registry) = observability();
    let server = start(ServeConfig {
        workers: 1,
        registry: Some(registry),
        telemetry_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    });
    let addr = server.telemetry_addr().expect("telemetry listener bound");
    let mut client = Client::connect(&server);
    let response = client
        .send(r#"{"queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":4}}]}"#);
    assert!(ok(&response));

    let scrape = |path: &str| -> (String, String) {
        let stream = TcpStream::connect(addr).expect("connect scraper");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        write!(writer, "GET {path} HTTP/1.0\r\n\r\n").expect("write request");
        writer.flush().expect("flush");
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).expect("status line");
        let mut body = String::new();
        let mut line = String::new();
        // Skip headers, then read the body.
        loop {
            line.clear();
            if reader.read_line(&mut line).expect("header") == 0 || line.trim().is_empty() {
                break;
            }
        }
        loop {
            line.clear();
            if reader.read_line(&mut line).expect("body") == 0 {
                break;
            }
            body.push_str(&line);
        }
        (status, body)
    };

    let (status, metrics) = scrape("/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(metrics.contains("swcc_serve_uptime_seconds "), "{metrics}");
    assert!(metrics.contains("swcc_serve_window_total{"), "{metrics}");
    assert!(metrics.contains("swcc_serve_build_info{"), "{metrics}");

    let (status, telemetry) = scrape("/telemetry");
    assert!(status.contains("200"), "{status}");
    let parsed: Value = serde_json::from_str(telemetry.trim()).expect("JSON body");
    assert!(ok(&parsed));

    let (status, slow) = scrape("/slow");
    assert!(status.contains("200"), "{status}");
    let parsed: Value = serde_json::from_str(slow.trim()).expect("JSON body");
    assert!(parsed.get_field("slow").and_then(Value::as_array).is_some());

    let (status, _) = scrape("/nope");
    assert!(status.contains("404"), "{status}");

    drop(client);
    server.shutdown();
    server.join();
}
