//! Cross-module integration tests of the analytical model: the paper's
//! qualitative claims, checked end-to-end through the public API.

use swcc_core::bus::bus_power_curve;
use swcc_core::network::{analyze_network, network_power_curve};
use swcc_core::prelude::*;
use swcc_core::sensitivity::sensitivity_table;

fn system() -> BusSystemModel {
    BusSystemModel::new()
}

#[test]
fn base_dominates_every_scheme_at_every_level_and_size() {
    // §5.1: "Base performs best as long as shd > 0."
    for level in Level::ALL {
        let w = WorkloadParams::at_level(level);
        for n in [1u32, 2, 4, 8, 16] {
            let base = analyze_bus(Scheme::Base, &w, &system(), n).unwrap().power();
            for s in [Scheme::NoCache, Scheme::SoftwareFlush, Scheme::Dragon] {
                let p = analyze_bus(s, &w, &system(), n).unwrap().power();
                assert!(p <= base + 1e-9, "{s} at {level}/{n}: {p} > base {base}");
            }
        }
    }
}

#[test]
fn dragon_beats_both_software_schemes_under_stress() {
    for level in [Level::Middle, Level::High] {
        let w = WorkloadParams::at_level(level);
        for n in [4u32, 8, 16] {
            let dragon = analyze_bus(Scheme::Dragon, &w, &system(), n)
                .unwrap()
                .power();
            let sf = analyze_bus(Scheme::SoftwareFlush, &w, &system(), n)
                .unwrap()
                .power();
            let nc = analyze_bus(Scheme::NoCache, &w, &system(), n)
                .unwrap()
                .power();
            assert!(dragon >= sf && dragon >= nc, "at {level}/{n}");
        }
    }
}

#[test]
fn software_flush_brackets_between_dragon_and_no_cache_at_middle_apl() {
    // §5.1: "Software-Flush's performance is usually between Dragon and
    // No-Cache" — at middle apl.
    let w = WorkloadParams::default();
    for n in [4u32, 8, 16] {
        let dragon = analyze_bus(Scheme::Dragon, &w, &system(), n)
            .unwrap()
            .power();
        let sf = analyze_bus(Scheme::SoftwareFlush, &w, &system(), n)
            .unwrap()
            .power();
        let nc = analyze_bus(Scheme::NoCache, &w, &system(), n)
            .unwrap()
            .power();
        assert!(nc <= sf && sf <= dragon, "n={n}: {nc} <= {sf} <= {dragon}");
    }
}

#[test]
fn software_flush_can_beat_dragon_with_generous_apl_and_low_mdshd() {
    // §5.3: "Software-Flush can perform as well as Dragon, or even
    // better" at very high apl. High apl + rarely-dirty shared data
    // removes almost all coherence traffic; Dragon still broadcasts.
    let w = WorkloadParams::default()
        .with_param(ParamId::Apl, 1000.0)
        .unwrap()
        .with_param(ParamId::Mdshd, 0.0)
        .unwrap();
    let dragon = analyze_bus(Scheme::Dragon, &w, &system(), 16)
        .unwrap()
        .power();
    let sf = analyze_bus(Scheme::SoftwareFlush, &w, &system(), 16)
        .unwrap()
        .power();
    assert!(
        sf > dragon,
        "sf {sf:.3} should exceed dragon {dragon:.3} at apl=1000, mdshd=0"
    );
}

#[test]
fn bus_saturation_flattens_the_power_curve() {
    // Under heavy sharing, the bus saturates: power stops growing.
    let w = WorkloadParams::at_level(Level::High);
    let curve = bus_power_curve(Scheme::NoCache, &w, &system(), 32).unwrap();
    let p8 = curve[7].power();
    let p32 = curve[31].power();
    assert!(
        (p32 - p8) / p8 < 0.05,
        "no-cache gains {:.1}% from 8 to 32 cpus — should be saturated",
        (p32 - p8) / p8 * 100.0
    );
}

#[test]
fn network_power_grows_where_bus_power_stalls() {
    // §6.3: network bandwidth scales with processors, so past bus
    // saturation the network wins.
    let w = WorkloadParams::default();
    let bus = bus_power_curve(Scheme::SoftwareFlush, &w, &system(), 64).unwrap();
    let net = network_power_curve(Scheme::SoftwareFlush, &w, 6).unwrap();
    let bus64 = bus.last().unwrap().power();
    let net64 = net.last().unwrap().power();
    assert!(
        net64 > bus64,
        "network {net64:.2} vs saturated bus {bus64:.2}"
    );
}

#[test]
fn network_keeps_software_flush_above_no_cache_at_realistic_apl() {
    // §6.3: Software-Flush does considerably better than No-Cache on a
    // network — provided flushes are not degenerate. At apl = 1 (the
    // Table 7 high value) every shared reference costs a flush plus a
    // miss, and No-Cache wins instead; both directions are asserted.
    let middle_apl = WorkloadParams::default().apl();
    for level in Level::ALL {
        let w = WorkloadParams::at_level(level)
            .with_param(ParamId::Apl, middle_apl)
            .unwrap();
        for stages in [4u32, 8] {
            let sf = analyze_network(Scheme::SoftwareFlush, &w, stages)
                .unwrap()
                .power();
            let nc = analyze_network(Scheme::NoCache, &w, stages)
                .unwrap()
                .power();
            assert!(sf >= nc, "{level}/{stages}: sf {sf:.2} vs nc {nc:.2}");
        }
    }
    let degenerate = WorkloadParams::at_level(Level::High); // apl = 1
    let sf = analyze_network(Scheme::SoftwareFlush, &degenerate, 8)
        .unwrap()
        .power();
    let nc = analyze_network(Scheme::NoCache, &degenerate, 8)
        .unwrap()
        .power();
    assert!(
        sf < nc,
        "at apl = 1, flush+miss must cost more than throughs"
    );
}

#[test]
fn uniprocessor_has_no_contention_under_any_scheme() {
    for level in Level::ALL {
        let w = WorkloadParams::at_level(level);
        for s in Scheme::ALL {
            let p = analyze_bus(s, &w, &system(), 1).unwrap();
            assert!(p.waiting() < 1e-12, "{s} at {level}");
        }
    }
}

#[test]
fn utilization_decreases_monotonically_in_processor_count() {
    let w = WorkloadParams::default();
    for s in Scheme::ALL {
        let curve = bus_power_curve(s, &w, &system(), 24).unwrap();
        for pair in curve.windows(2) {
            assert!(
                pair[1].utilization() <= pair[0].utilization() + 1e-12,
                "{s}: utilization must not increase with contention"
            );
        }
    }
}

#[test]
fn sensitivity_matches_figures() {
    // The parameters the sensitivity analysis flags as dominant are the
    // ones the figures vary: ls, shd (figs 4-6) and apl (figs 7-9).
    let t = sensitivity_table(16).unwrap();
    let sf_ranking = t.ranking(Scheme::SoftwareFlush);
    let top: Vec<ParamId> = sf_ranking.iter().take(3).map(|&(p, _)| p).collect();
    assert!(top.contains(&ParamId::Apl));
    assert!(top.contains(&ParamId::Shd));
}

#[test]
fn demand_is_consistent_between_scheme_mix_and_bus_analysis() {
    let w = WorkloadParams::default();
    for s in Scheme::ALL {
        let d = scheme_demand(s, &w, &system()).unwrap();
        let p = analyze_bus(s, &w, &system(), 4).unwrap();
        assert_eq!(d.cpu(), p.demand().cpu());
        assert_eq!(d.interconnect(), p.demand().interconnect());
    }
}

#[test]
fn custom_hardware_shifts_all_schemes_consistently() {
    // A machine with slower memory hurts miss-heavy schemes more.
    let slow_memory = BusSystemModel::from_hardware(4, 10, 3);
    let w = WorkloadParams::default();
    for s in Scheme::ALL {
        let fast = analyze_bus(s, &w, &system(), 8).unwrap().power();
        let slow = analyze_bus(s, &w, &slow_memory, 8).unwrap().power();
        assert!(slow < fast, "{s}: slower memory must cost performance");
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    let w = WorkloadParams::default();
    assert!(matches!(
        analyze_network(Scheme::Dragon, &w, 4),
        Err(ModelError::UnsupportedScheme { .. })
    ));
    assert!(analyze_bus(Scheme::Base, &w, &system(), 0).is_err());
    assert!(w.with_param(ParamId::Shd, 2.0).is_err());
}
