//! Property tests of the trace analytics pipeline: arbitrary span
//! forests serialized through the real wire writer
//! ([`swcc_obs::trace::event_to_jsonl`]) must round-trip through the
//! parser and span tree ([`swcc_obs::tree`]) with identical structure
//! and durations, and the Chrome / folded exporters must stay
//! internally consistent (valid JSON, self-times partitioning the root
//! total).

use proptest::prelude::*;

use swcc_experiments::trace_export::{export, export_chrome, ExportFormat};
use swcc_obs::trace::{event_to_jsonl, EventKind, Field, TraceEvent};
use swcc_obs::tree::{parse_line, parse_trace, Scalar, SpanTree};

/// Span names the generator draws from; includes characters the folded
/// exporter must escape (space, semicolon).
const NAMES: [&str; 5] = [
    "runner.batch",
    "runner.experiment",
    "patel.solve",
    "mva sweep",
    "odd;name",
];

/// A model span: what the trace *should* describe.
#[derive(Debug, Clone)]
struct SpanSpec {
    name: &'static str,
    self_ns: u64,
    children: Vec<SpanSpec>,
}

impl SpanSpec {
    fn total_ns(&self) -> u64 {
        self.self_ns + self.children.iter().map(SpanSpec::total_ns).sum::<u64>()
    }

    fn count(&self) -> usize {
        1 + self.children.iter().map(SpanSpec::count).sum::<usize>()
    }
}

/// Folds a flat recipe of `(name_idx, self_ns, arity)` items into a
/// tree, depth-capped; an exhausted recipe yields leaves.
fn build_spec(items: &mut std::slice::Iter<'_, (u64, u64, u64)>, depth: u32) -> SpanSpec {
    let &(name_idx, self_ns, arity) = items.next().unwrap_or(&(0, 1, 0));
    let n_children = if depth >= 3 { 0 } else { arity as usize };
    SpanSpec {
        name: NAMES[name_idx as usize % NAMES.len()],
        self_ns: self_ns.max(1),
        children: (0..n_children)
            .map(|_| build_spec(items, depth + 1))
            .collect(),
    }
}

/// A strategy over single-root span trees.
fn span_specs() -> impl Strategy<Value = SpanSpec> {
    prop::collection::vec((0u64..5, 1u64..10_000, 0u64..4), 1..40)
        .prop_map(|recipe| build_spec(&mut recipe.iter(), 0))
}

/// Serializes a spec depth-first through the real wire writer,
/// returning the JSONL text. Start/end pairs carry the model's
/// nesting; durations are `self + Σ children`.
fn emit(spec: &SpanSpec) -> String {
    fn walk(
        spec: &SpanSpec,
        parent: u64,
        lines: &mut Vec<String>,
        next_span: &mut u64,
        next_seq: &mut u64,
    ) -> u64 {
        let span = *next_span;
        *next_span += 1;
        lines.push(event_to_jsonl(&TraceEvent {
            kind: EventKind::SpanStart,
            name: spec.name,
            span,
            parent,
            seq: *next_seq,
            thread: 1,
            duration_ns: None,
            sampled: false,
            fields: &[],
        }));
        *next_seq += 1;
        let mut total = spec.self_ns;
        for child in &spec.children {
            total += walk(child, span, lines, next_span, next_seq);
        }
        lines.push(event_to_jsonl(&TraceEvent {
            kind: EventKind::SpanEnd,
            name: spec.name,
            span,
            parent,
            seq: *next_seq,
            thread: 1,
            duration_ns: Some(u128::from(total)),
            sampled: false,
            fields: &[],
        }));
        *next_seq += 1;
        total
    }
    let mut lines = Vec::new();
    let (mut next_span, mut next_seq) = (1, 0);
    walk(spec, 0, &mut lines, &mut next_span, &mut next_seq);
    lines.join("\n")
}

/// Asserts the reconstructed subtree at `idx` matches `spec` exactly:
/// name, closed duration, self time, child count and child order.
fn assert_matches(tree: &SpanTree, idx: usize, spec: &SpanSpec) {
    let node = &tree.nodes()[idx];
    assert_eq!(node.name, spec.name);
    assert!(node.closed);
    assert_eq!(node.dur_ns, Some(spec.total_ns()));
    assert_eq!(tree.self_ns(idx), spec.self_ns);
    assert_eq!(node.children.len(), spec.children.len());
    for (&child_idx, child_spec) in node.children.iter().zip(&spec.children) {
        assert_matches(tree, child_idx, child_spec);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn span_trees_round_trip_through_the_wire_format(spec in span_specs()) {
        let jsonl = emit(&spec);
        let parsed = parse_trace(&jsonl);
        prop_assert_eq!(parsed.skipped, 0, "writer output always parses");
        prop_assert_eq!(parsed.events.len(), 2 * spec.count());
        let tree = SpanTree::build(&parsed.events);
        prop_assert_eq!(tree.unclosed(), 0);
        prop_assert_eq!(tree.roots().len(), 1, "generated forests have one root");
        assert_matches(&tree, tree.roots()[0], &spec);
    }

    #[test]
    fn folded_self_times_partition_the_root_total(spec in span_specs()) {
        let jsonl = emit(&spec);
        let folded = export(&jsonl, ExportFormat::Folded);
        prop_assert_eq!(folded.skipped_lines, 0);
        prop_assert_eq!(folded.unclosed_spans, 0);
        let mut sum = 0u64;
        for line in folded.output.lines() {
            let (path, value) = line.rsplit_once(' ').expect("folded line is 'path value'");
            prop_assert!(!path.is_empty());
            prop_assert!(
                !path.contains(' '),
                "frame whitespace must be escaped: {}", path
            );
            sum += value.parse::<u64>().expect("folded weight is integer ns");
        }
        // A sequential single-root trace partitions exactly: every
        // nanosecond of the root belongs to exactly one frame's self
        // time (the 1%-tolerance acceptance bound, met with 0%).
        prop_assert_eq!(sum, spec.total_ns());
    }

    #[test]
    fn chrome_export_is_valid_json_with_consistent_timestamps(spec in span_specs()) {
        let jsonl = emit(&spec);
        let parsed = parse_trace(&jsonl);
        let chrome = export_chrome(&parsed);
        let value: serde_json::Value =
            serde_json::from_str(&chrome).expect("chrome export is valid JSON");
        let events = value
            .get_field("traceEvents")
            .and_then(serde_json::Value::as_array)
            .expect("traceEvents array");
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get_field("ph").and_then(serde_json::Value::as_str) == Some("X"))
            .collect();
        prop_assert_eq!(complete.len(), spec.count(), "one X event per closed span");
        let total_us = spec.total_ns() as f64 / 1000.0;
        let mut max_end = 0.0f64;
        for event in &complete {
            let ts = event
                .get_field("ts")
                .and_then(serde_json::Value::as_f64)
                .expect("X events carry ts");
            let dur = event
                .get_field("dur")
                .and_then(serde_json::Value::as_f64)
                .expect("X events carry dur");
            prop_assert!(ts >= 0.0 && dur >= 0.0);
            prop_assert!(
                ts + dur <= total_us + 1e-6,
                "span [{}, {}] escapes the root window {}", ts, ts + dur, total_us
            );
            max_end = max_end.max(ts + dur);
            prop_assert!(
                event
                    .get_field("args")
                    .and_then(|a| a.get_field("span_id"))
                    .is_some(),
                "X events carry their span id"
            );
        }
        prop_assert!(
            (max_end - total_us).abs() < 1e-6,
            "the root span must span the whole timeline"
        );
        prop_assert!(
            events.iter().any(|e| {
                e.get_field("ph").and_then(serde_json::Value::as_str) == Some("M")
            }),
            "thread-name metadata present"
        );
    }

    #[test]
    fn scalar_fields_round_trip_through_the_wire_format(
        u in 0u64..u64::MAX / 2,
        i in 1u64..1_000_000,
        f in -1e12..1e12f64,
        flag in prop::bool::ANY,
        text in prop::collection::vec(0u64..6, 0..12),
    ) {
        // Exercise escaping: quote, backslash, control, non-ASCII.
        const CHARS: [char; 6] = ['a', '"', '\\', '\n', 'é', '\u{1F600}'];
        let i = -(i as i64);
        let s: String = text.iter().map(|&c| CHARS[c as usize]).collect();
        let fields = [
            Field::u64("u", u),
            Field::i64("i", i),
            Field::f64("f", f),
            Field::bool("b", flag),
            Field::text("s", s.clone()),
        ];
        let line = event_to_jsonl(&TraceEvent {
            kind: EventKind::Point,
            name: "probe",
            span: 7,
            parent: 3,
            seq: 11,
            thread: 2,
            duration_ns: None,
            sampled: false,
            fields: &fields,
        });
        let event = parse_line(&line).expect("writer output parses");
        prop_assert_eq!(event.name.as_str(), "probe");
        prop_assert_eq!((event.span, event.parent, event.seq, event.thread), (7, 3, 11, 2));
        prop_assert_eq!(event.field("u").and_then(Scalar::as_u64), Some(u));
        prop_assert_eq!(event.field("i").and_then(Scalar::as_f64), Some(i as f64));
        prop_assert_eq!(event.field("f").and_then(Scalar::as_f64), Some(f));
        prop_assert_eq!(event.field("b").and_then(Scalar::as_bool), Some(flag));
        prop_assert_eq!(event.field("s").and_then(Scalar::as_str), Some(s.as_str()));
    }
}
