//! Property-based equivalence suite for the batch solver engine.
//!
//! The contract under test: every batch entry point in
//! `swcc_core::batch` is **bit-for-bit identical** to mapping its
//! scalar counterpart over the lanes — not "close", identical. Lanes
//! are independent, so interleaving and active-lane compaction must
//! never change any lane's float-op sequence. These properties pin
//! that down over random batches (including width 0, width 1, and
//! non-power-of-two widths) so codegen changes that would silently
//! reorder arithmetic fail loudly.

use proptest::prelude::*;

use swcc_core::batch::{
    machine_repairman_grid, machine_repairman_sweep_grid, BatchPatelSolver, Stages, COLD,
};
use swcc_core::bus::{analyze_bus_sweep, bus_power_curve_set, bus_power_curves};
use swcc_core::network::{solve_with, SolveOptions, WarmSolver};
use swcc_core::prelude::*;
use swcc_core::queue::{machine_repairman, machine_repairman_sweep};
use swcc_core::system::BusSystemModel;

fn bits(x: f64) -> u64 {
    x.to_bits()
}

/// A strategy over Patel lanes: rates span idle through saturated,
/// sizes include exact zero (zero-demand lanes retire immediately).
fn patel_lanes() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(
        (0.0..=0.05f64, 0.0..=24.0f64).prop_map(|(rate, size)| {
            // Snap a slice of the range to exactly zero so the
            // zero-demand fast path is exercised, not just approached.
            let size = if size < 0.5 { 0.0 } else { size };
            (rate, size)
        }),
        0..48,
    )
}

/// A strategy over MVA lanes; `think` stays positive so `service == 0`
/// lanes remain in-domain, and small services snap to exactly zero to
/// hit the closed-form path.
fn mva_lanes() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(
        (0.0..=2.0f64, 0.1..=6.0f64).prop_map(|(service, think)| {
            let service = if service < 0.05 { 0.0 } else { service };
            (service, think)
        }),
        0..32,
    )
}

/// A strategy over in-domain workloads (same envelope as the model
/// invariant suite).
fn workloads() -> impl Strategy<Value = WorkloadParams> {
    (
        0.0..=1.0f64,   // ls
        0.0..=0.2f64,   // msdat
        0.0..=0.05f64,  // mains
        0.0..=1.0f64,   // md
        0.0..=1.0f64,   // shd
        0.0..=1.0f64,   // wr
        1.0..=200.0f64, // apl
        0.0..=1.0f64,   // mdshd
        (0.0..=1.0f64, 0.0..=1.0f64, 0.0..=16.0f64),
    )
        .prop_map(
            |(ls, msdat, mains, md, shd, wr, apl, mdshd, (oclean, opres, nshd))| {
                let mut b = WorkloadParams::builder();
                b.ls(ls)
                    .msdat(msdat)
                    .mains(mains)
                    .md(md)
                    .shd(shd)
                    .wr(wr)
                    .apl(apl)
                    .mdshd(mdshd)
                    .oclean(oclean)
                    .opres(opres)
                    .nshd(nshd);
                b.build().expect("strategy stays in-domain")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold batch Patel solves match per-lane scalar solves bitwise,
    /// and per-lane iteration counts match a fresh scalar solver's.
    #[test]
    fn batch_patel_matches_scalar_bitwise(lanes in patel_lanes(), stages in 1u32..12) {
        let rates: Vec<f64> = lanes.iter().map(|l| l.0).collect();
        let sizes: Vec<f64> = lanes.iter().map(|l| l.1).collect();
        let batch = BatchPatelSolver::new().solve(&rates, &sizes, stages).unwrap();
        prop_assert_eq!(batch.len(), lanes.len());
        for i in 0..lanes.len() {
            let mut scalar = WarmSolver::new();
            let point = scalar.solve(rates[i], sizes[i], stages).unwrap();
            prop_assert_eq!(
                bits(batch.points()[i].think_fraction()),
                bits(point.think_fraction())
            );
            prop_assert_eq!(
                bits(batch.points()[i].accepted_rate()),
                bits(point.accepted_rate())
            );
            prop_assert_eq!(batch.iterations()[i], scalar.last_iterations());
        }
    }

    /// Warm-started batches match scalar hinted solves, including
    /// cold ([`COLD`]) and out-of-range hints, which must cost at most
    /// iterations, never correctness.
    #[test]
    fn hinted_batch_matches_scalar_hinted(
        lanes in prop::collection::vec(
            (0.001..=0.05f64, 1.0..=24.0f64, 0.0..=1.0f64, 0u32..4),
            0..32,
        ),
        stages in 1u32..10,
    ) {
        let rates: Vec<f64> = lanes.iter().map(|l| l.0).collect();
        let sizes: Vec<f64> = lanes.iter().map(|l| l.1).collect();
        let hints: Vec<f64> = lanes
            .iter()
            .map(|&(_, _, guess, kind)| match kind {
                0 => guess,  // plausible warm hint
                1 => COLD,   // explicitly cold lane
                2 => 2.0,    // out of range high: treated as cold
                _ => -0.25,  // out of range low: treated as cold
            })
            .collect();
        let batch = BatchPatelSolver::new()
            .solve_hinted(&rates, &sizes, stages, &hints)
            .unwrap();
        for i in 0..lanes.len() {
            let scalar = solve_with(
                rates[i],
                sizes[i],
                stages,
                SolveOptions {
                    hint: Some(hints[i]),
                    ..SolveOptions::default()
                },
            )
            .unwrap();
            prop_assert_eq!(
                bits(batch.points()[i].think_fraction()),
                bits(scalar.think_fraction())
            );
            prop_assert!(batch.converged()[i]);
        }
    }

    /// Per-lane stage counts (the general `solve_grid` form) match
    /// scalar solves at each lane's own stage count.
    #[test]
    fn per_lane_stage_batches_match_scalar(
        lanes in prop::collection::vec((0.0..=0.05f64, 0.0..=24.0f64, 0u32..12), 0..32),
    ) {
        let rates: Vec<f64> = lanes.iter().map(|l| l.0).collect();
        let sizes: Vec<f64> = lanes.iter().map(|l| l.1).collect();
        let stages: Vec<u32> = lanes.iter().map(|l| l.2).collect();
        let batch = BatchPatelSolver::new()
            .solve_grid(&rates, &sizes, &Stages::PerLane(&stages), None)
            .unwrap();
        for i in 0..lanes.len() {
            let scalar =
                solve_with(rates[i], sizes[i], stages[i], SolveOptions::default()).unwrap();
            prop_assert_eq!(
                bits(batch.points()[i].think_fraction()),
                bits(scalar.think_fraction())
            );
            prop_assert_eq!(batch.points()[i].stages(), stages[i]);
        }
    }

    /// The lockstep MVA grid equals pointwise machine-repairman solves
    /// exactly (structural equality covers every solution field).
    #[test]
    fn mva_grid_matches_scalar(lanes in mva_lanes(), customers in 1u32..48) {
        let services: Vec<f64> = lanes.iter().map(|l| l.0).collect();
        let thinks: Vec<f64> = lanes.iter().map(|l| l.1).collect();
        let grid = machine_repairman_grid(customers, &services, &thinks).unwrap();
        prop_assert_eq!(grid.len(), lanes.len());
        for i in 0..lanes.len() {
            let scalar = machine_repairman(customers, services[i], thinks[i]).unwrap();
            prop_assert_eq!(grid[i], scalar);
        }
    }

    /// The lockstep MVA sweep grid equals per-lane scalar sweeps
    /// point-for-point, including the empty population (0 customers).
    #[test]
    fn mva_sweep_grid_matches_scalar(lanes in mva_lanes(), max_customers in 0u32..24) {
        let services: Vec<f64> = lanes.iter().map(|l| l.0).collect();
        let thinks: Vec<f64> = lanes.iter().map(|l| l.1).collect();
        let grid = machine_repairman_sweep_grid(max_customers, &services, &thinks).unwrap();
        for i in 0..lanes.len() {
            let scalar = machine_repairman_sweep(max_customers, services[i], thinks[i]).unwrap();
            prop_assert_eq!(&grid[i], &scalar);
        }
    }

    /// Batched bus power curves equal per-scheme scalar sweeps for
    /// arbitrary in-domain workloads, through both the uniform-workload
    /// and per-case entry points.
    #[test]
    fn bus_curves_match_scalar_sweeps(
        workload in workloads(),
        other in workloads(),
        max_processors in 0u32..32,
    ) {
        let system = BusSystemModel::new();
        let curves = bus_power_curves(&Scheme::ALL, &workload, &system, max_processors).unwrap();
        for (i, scheme) in Scheme::ALL.into_iter().enumerate() {
            let scalar = analyze_bus_sweep(scheme, &workload, &system, max_processors).unwrap();
            prop_assert_eq!(&curves[i], &scalar);
        }
        // Mixed-workload lanes through the general entry point.
        let cases = [
            (Scheme::ALL[0], workload),
            (Scheme::ALL[2], other),
            (Scheme::ALL[0], other),
        ];
        let set = bus_power_curve_set(&cases, &system, max_processors).unwrap();
        for (i, (scheme, w)) in cases.iter().enumerate() {
            let scalar = analyze_bus_sweep(*scheme, w, &system, max_processors).unwrap();
            prop_assert_eq!(&set[i], &scalar);
        }
    }
}

/// Batch widths the engine must treat uniformly: empty, single-lane
/// (the scalar special case), and assorted non-power-of-two widths
/// that leave remainders for the lane-blocked stage loop.
#[test]
fn batch_widths_zero_one_and_ragged_match_scalar() {
    for width in [0usize, 1, 3, 7, 13, 29, 100] {
        let rates: Vec<f64> = (0..width).map(|i| 5.0e-4 * (i as f64 + 1.0)).collect();
        let sizes: Vec<f64> = (0..width).map(|i| 12.0 + (i % 5) as f64 * 3.0).collect();
        let batch = BatchPatelSolver::new().solve(&rates, &sizes, 8).unwrap();
        assert_eq!(batch.len(), width);
        for i in 0..width {
            let scalar = solve_with(rates[i], sizes[i], 8, SolveOptions::default()).unwrap();
            assert_eq!(
                bits(batch.points()[i].think_fraction()),
                bits(scalar.think_fraction()),
                "width {width} lane {i}"
            );
        }
    }
}

/// Convergence masking: lanes retire at different iterations, each at
/// exactly the iteration its scalar counterpart would, and retired
/// lanes never perturb the lanes still active.
#[test]
fn convergence_mask_retires_lanes_at_scalar_iteration_counts() {
    // A log-scale spread from near-idle to saturated produces a wide
    // range of convergence iterations inside one batch.
    let rates: Vec<f64> = (0..40)
        .map(|i| 0.05 * (10.0f64).powf(-6.0 + 6.0 * i as f64 / 39.0))
        .collect();
    let sizes = vec![20.0; rates.len()];
    let batch = BatchPatelSolver::new().solve(&rates, &sizes, 8).unwrap();
    let mut distinct = std::collections::BTreeSet::new();
    for i in 0..rates.len() {
        let mut scalar = WarmSolver::new();
        let point = scalar.solve(rates[i], sizes[i], 8).unwrap();
        assert_eq!(
            bits(batch.points()[i].think_fraction()),
            bits(point.think_fraction()),
            "lane {i}"
        );
        assert_eq!(
            batch.iterations()[i],
            scalar.last_iterations(),
            "lane {i} retired at the wrong iteration"
        );
        assert!(batch.converged()[i], "lane {i}");
        distinct.insert(batch.iterations()[i]);
    }
    assert!(
        distinct.len() >= 3,
        "lanes should retire across several distinct iterations, got {distinct:?}"
    );
    assert_eq!(
        batch.total_iterations(),
        batch
            .iterations()
            .iter()
            .map(|&i| u64::from(i))
            .sum::<u64>()
    );
}
