//! End-to-end tests of the `repro` binary.

use std::path::PathBuf;
use std::process::Command;

use swcc_experiments::manifest::RunManifest;
use swcc_experiments::trace_report;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A per-test scratch path for manifest/trace/baseline files, cleaned
/// up on drop.
struct TempManifest(PathBuf);

impl TempManifest {
    fn new(tag: &str) -> Self {
        TempManifest(
            std::env::temp_dir().join(format!("swcc-repro-{}-{tag}.json", std::process::id())),
        )
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp path is valid UTF-8")
    }
}

impl Drop for TempManifest {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Strips the runner's nondeterministic `runner: completed in … ms`
/// footnotes from an artifact JSON tree so two runs can be compared.
fn strip_runner_notes(value: &mut serde_json::Value) {
    match value {
        serde_json::Value::Array(items) => {
            items.iter_mut().for_each(strip_runner_notes);
        }
        serde_json::Value::Object(entries) => {
            for (key, entry) in entries.iter_mut() {
                if key == "notes" {
                    if let serde_json::Value::Array(notes) = entry {
                        notes.retain(|n| match n {
                            serde_json::Value::Str(s) => !s.starts_with("runner:"),
                            _ => true,
                        });
                    }
                }
                strip_runner_notes(entry);
            }
        }
        _ => {}
    }
}

#[test]
fn list_names_every_registered_experiment() {
    let out = repro().arg("list").output().expect("spawn repro list");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for e in swcc_experiments::EXPERIMENTS {
        assert!(stdout.contains(e.id), "missing {}", e.id);
    }
}

#[test]
fn single_table_renders() {
    let out = repro().args(["table7"]).output().expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 7"));
    assert!(stdout.contains("1/apl"));
}

#[test]
fn model_figures_render_with_plot_and_data() {
    let out = repro()
        .args(["fig5", "--quick"])
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("legend:"));
    assert!(stdout.contains("series: Dragon"));
}

#[test]
fn json_output_parses_and_carries_ids() {
    let out = repro()
        .args(["table1", "fig7", "--json"])
        .output()
        .expect("spawn repro --json");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON artifact array");
    let arr = parsed.as_array().expect("array of [id, artifact]");
    assert_eq!(arr.len(), 2);
    assert_eq!(arr[0][0], "table1");
    assert_eq!(arr[1][0], "fig7");
    assert!(arr[1][1]["Figure"]["series"].is_array());
}

#[test]
fn parallel_jobs_preserve_request_order_and_record_timings() {
    let out = repro()
        .args(["table1", "fig4", "fig5", "fig6", "--quick", "--jobs", "4"])
        .output()
        .expect("spawn repro --jobs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let positions: Vec<usize> = ["=== table1", "=== fig4", "=== fig5", "=== fig6"]
        .iter()
        .map(|h| stdout.find(h).unwrap_or_else(|| panic!("missing {h}")))
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "output must follow request order regardless of completion order"
    );
    assert!(
        stdout.matches("runner: completed in").count() >= 4,
        "each artifact must carry its wall-clock duration"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("4 experiment(s) with 4 job(s)"));
}

#[test]
fn jobs_zero_uses_available_parallelism() {
    let out = repro()
        .args(["table1", "table7", "--jobs=0"])
        .output()
        .expect("spawn repro --jobs=0");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("with 0 job(s)"),
        "--jobs 0 must resolve to a positive worker count: {stderr}"
    );
}

#[test]
fn all_flag_json_covers_registry() {
    let out = repro()
        .args(["--all", "--quick", "--jobs", "0", "--json"])
        .output()
        .expect("spawn repro --all");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON artifact array");
    let arr = parsed.as_array().expect("array of [id, artifact]");
    assert_eq!(arr.len(), swcc_experiments::EXPERIMENTS.len());
    for (i, e) in swcc_experiments::EXPERIMENTS.iter().enumerate() {
        assert_eq!(arr[i][0], e.id, "JSON order must match registry order");
    }
}

#[test]
fn bad_jobs_value_fails_with_usage() {
    let out = repro()
        .args(["table1", "--jobs", "many"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn unknown_id_fails_with_usage() {
    let out = repro().args(["fig99"]).output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment id"));
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = repro().output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

// --- CLI argument-handling regressions ---------------------------------

#[test]
fn all_mixed_with_ids_is_rejected() {
    // Regression: `repro all fig1` used to silently run the full
    // registry, dropping the named ids.
    for argv in [&["all", "fig1"][..], &["--all", "fig1"], &["fig1", "all"]] {
        let out = repro().args(argv).output().expect("spawn repro");
        assert!(!out.status.success(), "{argv:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("cannot combine 'all' with explicit experiment ids"),
            "{argv:?}: {stderr}"
        );
    }
}

#[test]
fn repeated_jobs_flag_takes_last_value() {
    // Regression: a second `--jobs N` used to survive flag stripping and
    // be parsed as an experiment id ("unknown experiment id: --jobs").
    let out = repro()
        .args(["table1", "--jobs", "4", "--jobs", "1"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("with 1 job(s)"),
        "last --jobs wins: {stderr}"
    );
    let out = repro()
        .args(["table1", "--jobs=4", "--jobs", "2"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "mixed --jobs forms must both be consumed"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("with 2 job(s)"));
}

#[test]
fn repeated_boolean_flags_are_consumed() {
    let out = repro()
        .args(["--quick", "table1", "--quick"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "a repeated --quick must not become an experiment id: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn duplicate_ids_run_once() {
    // Regression: `repro fig1 fig1` used to run the experiment twice.
    let out = repro()
        .args(["table1", "table1", "table7", "table1"])
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("=== table1").count(), 1);
    assert_eq!(stdout.matches("=== table7").count(), 1);
    assert!(
        stdout.find("=== table1").unwrap() < stdout.find("=== table7").unwrap(),
        "dedup must preserve first-seen order"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("ignoring duplicate experiment id"));
}

#[test]
fn list_rejects_options_and_arguments() {
    // Regression: `repro list --jobs 2 --quick` used to silently discard
    // the options and print the listing anyway.
    for argv in [
        &["list", "--jobs", "2", "--quick"][..],
        &["list", "--json"],
        &["list", "extra"],
    ] {
        let out = repro().args(argv).output().expect("spawn repro");
        assert!(!out.status.success(), "{argv:?} must fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("list takes no options or arguments"),
            "{argv:?}"
        );
    }
}

#[test]
fn unknown_options_are_rejected() {
    let out = repro()
        .args(["table1", "--frobnicate"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option: --frobnicate"));
}

// --- Observability: --metrics and --manifest ---------------------------

#[test]
fn metrics_flag_reports_solver_counters() {
    let out = repro()
        .args(["fig11", "--quick", "--metrics"])
        .output()
        .expect("spawn repro --metrics");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("metrics:"), "{stderr}");
    assert!(
        stderr.contains("core.solver.residual_evals"),
        "network figure must report solver work: {stderr}"
    );
    assert!(stderr.contains("runner.experiments"));
}

#[test]
fn manifest_records_experiments_and_solver_counters() {
    let tmp = TempManifest::new("partial");
    let out = repro()
        .args([
            "fig10",
            "fig11",
            "--quick",
            "--jobs",
            "2",
            "--manifest",
            tmp.path(),
        ])
        .output()
        .expect("spawn repro --manifest");
    assert!(out.status.success());
    let json = std::fs::read_to_string(tmp.path()).expect("manifest written");
    let manifest = RunManifest::from_json(&json).expect("manifest parses");
    assert_eq!(manifest.schema, swcc_experiments::MANIFEST_SCHEMA);
    assert!(manifest.options.quick);
    assert_eq!(manifest.options.jobs, 2);
    assert_eq!(manifest.totals.experiments, 2);
    assert!(manifest.totals.wall_ms > 0.0);
    for id in ["fig10", "fig11"] {
        let entry = manifest.experiment(id).expect(id);
        assert!(entry.duration_ms >= 0.0);
        let evals = entry
            .counters
            .iter()
            .find(|c| c.name == "core.solver.residual_evals")
            .map(|c| c.value)
            .unwrap_or(0);
        assert!(evals > 0, "{id} must attribute solver work, got {evals}");
    }
    // Process totals cover at least the per-experiment sums.
    assert!(
        manifest
            .metrics
            .counter("core.solver.residual_evals")
            .unwrap_or(0)
            > 0
    );

    // check-manifest: parses, but flags missing registry coverage.
    let check = repro()
        .args(["check-manifest", tmp.path()])
        .output()
        .expect("spawn check-manifest");
    assert!(
        !check.status.success(),
        "partial manifest must fail coverage"
    );
    assert!(String::from_utf8_lossy(&check.stderr).contains("missing:"));
}

#[test]
fn check_manifest_rejects_garbage() {
    let tmp = TempManifest::new("garbage");
    std::fs::write(tmp.path(), "{\"schema\": \"other/v9\"}").unwrap();
    let out = repro()
        .args(["check-manifest", tmp.path()])
        .output()
        .expect("spawn check-manifest");
    assert!(!out.status.success());
    let missing = repro()
        .args(["check-manifest", "/nonexistent/manifest.json"])
        .output()
        .expect("spawn check-manifest");
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot read"));
}

#[test]
fn observation_does_not_change_artifacts_and_manifest_covers_registry() {
    // The acceptance bar for the observability layer: a full observed
    // run produces byte-identical artifacts (modulo nondeterministic
    // runner timing notes) and a manifest covering the whole registry.
    let tmp = TempManifest::new("all");
    let plain = repro()
        .args(["--all", "--quick", "--jobs", "0", "--json"])
        .output()
        .expect("spawn plain run");
    assert!(plain.status.success());
    let observed = repro()
        .args([
            "--all",
            "--quick",
            "--jobs",
            "0",
            "--json",
            "--metrics",
            "--manifest",
            tmp.path(),
        ])
        .output()
        .expect("spawn observed run");
    assert!(observed.status.success());

    let mut plain_json: serde_json::Value =
        serde_json::from_slice(&plain.stdout).expect("plain JSON");
    let mut observed_json: serde_json::Value =
        serde_json::from_slice(&observed.stdout).expect("observed JSON");
    strip_runner_notes(&mut plain_json);
    strip_runner_notes(&mut observed_json);
    assert_eq!(
        plain_json, observed_json,
        "metrics/manifest must not change artifact output"
    );

    let manifest =
        RunManifest::from_json(&std::fs::read_to_string(tmp.path()).expect("manifest written"))
            .expect("manifest parses");
    assert!(
        manifest.missing_experiments().is_empty(),
        "an --all manifest must cover the registry"
    );
    assert_eq!(
        manifest.totals.experiments,
        swcc_experiments::EXPERIMENTS.len()
    );
    let check = repro()
        .args(["check-manifest", tmp.path()])
        .output()
        .expect("spawn check-manifest");
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    assert!(String::from_utf8_lossy(&check.stderr).contains("ok"));
}

// --- Tracing: --trace and trace-report ----------------------------------

#[test]
fn traced_parallel_run_round_trips_and_changes_nothing() {
    // The tentpole acceptance bar: a traced parallel --all run produces
    // byte-identical artifacts (modulo runner timing notes), and the
    // trace round-trips through trace-report with a span for every
    // experiment, a convergence record for every solve, and zero
    // divergences.
    let trace = TempManifest::new("trace");
    let plain = repro()
        .args(["--all", "--quick", "--json"])
        .output()
        .expect("spawn plain run");
    assert!(plain.status.success());
    let traced = repro()
        .args([
            "--all",
            "--quick",
            "--json",
            "--jobs",
            "2",
            "--trace",
            trace.path(),
        ])
        .output()
        .expect("spawn traced run");
    assert!(traced.status.success());
    assert!(
        String::from_utf8_lossy(&traced.stderr).contains("trace event(s)"),
        "traced run must report what it wrote"
    );

    let mut plain_json: serde_json::Value =
        serde_json::from_slice(&plain.stdout).expect("plain JSON");
    let mut traced_json: serde_json::Value =
        serde_json::from_slice(&traced.stdout).expect("traced JSON");
    strip_runner_notes(&mut plain_json);
    strip_runner_notes(&mut traced_json);
    assert_eq!(
        plain_json, traced_json,
        "tracing must not change artifact output"
    );

    let jsonl = std::fs::read_to_string(trace.path()).expect("trace written");
    let report = trace_report::analyze(&jsonl).expect("trace parses");
    assert!(
        report.is_clean(),
        "no solver may diverge:\n{}",
        report.render()
    );
    let ids = report.experiment_ids();
    for e in swcc_experiments::EXPERIMENTS {
        assert!(ids.contains(e.id), "missing runner span for {}", e.id);
    }
    let c = &report.convergence;
    assert!(c.solves + c.legacy > 0, "solver spans must be traced");
    assert_eq!(
        c.iterations.len() as u64,
        c.solves + c.legacy,
        "every solve must emit a convergence record"
    );
    assert!(
        !report.accuracy.is_empty(),
        "validation figures must trace accuracy points"
    );
    assert!(report.worst_rel_error().unwrap() < 0.5);

    // The CLI subcommand agrees with the library and exits clean.
    let rendered = repro()
        .args(["trace-report", trace.path()])
        .output()
        .expect("spawn trace-report");
    assert!(rendered.status.success());
    let stdout = String::from_utf8_lossy(&rendered.stdout);
    assert!(stdout.contains("status: clean"), "{stdout}");
    assert!(stdout.contains("model-vs-sim accuracy"));
}

#[test]
fn trace_report_rejects_garbage_and_missing_files() {
    let tmp = TempManifest::new("bad-trace");
    std::fs::write(tmp.path(), "not json at all\n").unwrap();
    let out = repro()
        .args(["trace-report", tmp.path()])
        .output()
        .expect("spawn trace-report");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
    let missing = repro()
        .args(["trace-report", "/nonexistent/trace.jsonl"])
        .output()
        .expect("spawn trace-report");
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot read"));
}

// --- Accuracy gate: repro accuracy --------------------------------------

#[test]
fn accuracy_gate_passes_the_committed_baseline_and_fails_on_drift() {
    // Against the committed tolerances the quick run must pass.
    let pass = repro()
        .args(["accuracy", "--quick"])
        .current_dir(env!("CARGO_MANIFEST_DIR").to_string() + "/../..")
        .output()
        .expect("spawn accuracy");
    assert!(
        pass.status.success(),
        "stderr: {}\nstdout: {}",
        String::from_utf8_lossy(&pass.stderr),
        String::from_utf8_lossy(&pass.stdout)
    );
    assert!(String::from_utf8_lossy(&pass.stdout).contains("accuracy gate: passed"));

    // The negative test: a synthetic drifted baseline (an impossible
    // tolerance) must fail the gate with a nonzero exit code.
    let drifted = TempManifest::new("drifted-baseline");
    std::fs::write(
        drifted.path(),
        r#"{"schema":"swcc-accuracy-baseline/v1","figures":[{"id":"fig1","max_rel_error":0.0001}]}"#,
    )
    .unwrap();
    let fail = repro()
        .args(["accuracy", "--quick", "--baseline", drifted.path()])
        .output()
        .expect("spawn accuracy");
    assert!(!fail.status.success(), "drifted baseline must fail");
    assert!(String::from_utf8_lossy(&fail.stdout).contains("accuracy gate: FAILED"));
}

#[test]
fn accuracy_gate_rejects_bad_baselines() {
    let tmp = TempManifest::new("bad-baseline");
    std::fs::write(tmp.path(), r#"{"schema":"other/v9","figures":[]}"#).unwrap();
    let out = repro()
        .args(["accuracy", "--quick", "--baseline", tmp.path()])
        .output()
        .expect("spawn accuracy");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported"));
    let missing = repro()
        .args(["accuracy", "--baseline", "/nonexistent/baseline.json"])
        .output()
        .expect("spawn accuracy");
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot read"));
}

#[test]
fn baseline_flag_is_rejected_outside_accuracy() {
    let out = repro()
        .args(["table1", "--baseline", "x.json"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--baseline"));
}
