//! End-to-end tests of the `repro` binary.

use std::path::PathBuf;
use std::process::Command;

use swcc_experiments::history;
use swcc_experiments::manifest::RunManifest;
use swcc_experiments::trace_report;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A per-test scratch path for manifest/trace/baseline files, cleaned
/// up on drop.
struct TempManifest(PathBuf);

impl TempManifest {
    fn new(tag: &str) -> Self {
        TempManifest(
            std::env::temp_dir().join(format!("swcc-repro-{}-{tag}.json", std::process::id())),
        )
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp path is valid UTF-8")
    }
}

impl Drop for TempManifest {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Strips the runner's nondeterministic `runner: completed in … ms`
/// footnotes from an artifact JSON tree so two runs can be compared.
fn strip_runner_notes(value: &mut serde_json::Value) {
    match value {
        serde_json::Value::Array(items) => {
            items.iter_mut().for_each(strip_runner_notes);
        }
        serde_json::Value::Object(entries) => {
            for (key, entry) in entries.iter_mut() {
                if key == "notes" {
                    if let serde_json::Value::Array(notes) = entry {
                        notes.retain(|n| match n {
                            serde_json::Value::Str(s) => !s.starts_with("runner:"),
                            _ => true,
                        });
                    }
                }
                strip_runner_notes(entry);
            }
        }
        _ => {}
    }
}

#[test]
fn list_names_every_registered_experiment() {
    let out = repro().arg("list").output().expect("spawn repro list");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for e in swcc_experiments::EXPERIMENTS {
        assert!(stdout.contains(e.id), "missing {}", e.id);
    }
}

#[test]
fn single_table_renders() {
    let out = repro().args(["table7"]).output().expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 7"));
    assert!(stdout.contains("1/apl"));
}

#[test]
fn model_figures_render_with_plot_and_data() {
    let out = repro()
        .args(["fig5", "--quick"])
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("legend:"));
    assert!(stdout.contains("series: Dragon"));
}

#[test]
fn json_output_parses_and_carries_ids() {
    let out = repro()
        .args(["table1", "fig7", "--json"])
        .output()
        .expect("spawn repro --json");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON artifact array");
    let arr = parsed.as_array().expect("array of [id, artifact]");
    assert_eq!(arr.len(), 2);
    assert_eq!(arr[0][0], "table1");
    assert_eq!(arr[1][0], "fig7");
    assert!(arr[1][1]["Figure"]["series"].is_array());
}

#[test]
fn parallel_jobs_preserve_request_order_and_record_timings() {
    let out = repro()
        .args(["table1", "fig4", "fig5", "fig6", "--quick", "--jobs", "4"])
        .output()
        .expect("spawn repro --jobs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let positions: Vec<usize> = ["=== table1", "=== fig4", "=== fig5", "=== fig6"]
        .iter()
        .map(|h| stdout.find(h).unwrap_or_else(|| panic!("missing {h}")))
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "output must follow request order regardless of completion order"
    );
    assert!(
        stdout.matches("runner: completed in").count() >= 4,
        "each artifact must carry its wall-clock duration"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("4 experiment(s) with 4 job(s)"));
}

#[test]
fn jobs_zero_uses_available_parallelism() {
    let out = repro()
        .args(["table1", "table7", "--jobs=0"])
        .output()
        .expect("spawn repro --jobs=0");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("with 0 job(s)"),
        "--jobs 0 must resolve to a positive worker count: {stderr}"
    );
}

#[test]
fn all_flag_json_covers_registry() {
    let out = repro()
        .args(["--all", "--quick", "--jobs", "0", "--json"])
        .output()
        .expect("spawn repro --all");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON artifact array");
    let arr = parsed.as_array().expect("array of [id, artifact]");
    assert_eq!(arr.len(), swcc_experiments::EXPERIMENTS.len());
    for (i, e) in swcc_experiments::EXPERIMENTS.iter().enumerate() {
        assert_eq!(arr[i][0], e.id, "JSON order must match registry order");
    }
}

#[test]
fn bad_jobs_value_fails_with_usage() {
    let out = repro()
        .args(["table1", "--jobs", "many"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn unknown_id_fails_with_usage() {
    let out = repro().args(["fig99"]).output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment id"));
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = repro().output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

// --- CLI argument-handling regressions ---------------------------------

#[test]
fn all_mixed_with_ids_is_rejected() {
    // Regression: `repro all fig1` used to silently run the full
    // registry, dropping the named ids.
    for argv in [&["all", "fig1"][..], &["--all", "fig1"], &["fig1", "all"]] {
        let out = repro().args(argv).output().expect("spawn repro");
        assert!(!out.status.success(), "{argv:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("cannot combine 'all' with explicit experiment ids"),
            "{argv:?}: {stderr}"
        );
    }
}

#[test]
fn repeated_jobs_flag_takes_last_value() {
    // Regression: a second `--jobs N` used to survive flag stripping and
    // be parsed as an experiment id ("unknown experiment id: --jobs").
    let out = repro()
        .args(["table1", "--jobs", "4", "--jobs", "1"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("with 1 job(s)"),
        "last --jobs wins: {stderr}"
    );
    let out = repro()
        .args(["table1", "--jobs=4", "--jobs", "2"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "mixed --jobs forms must both be consumed"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("with 2 job(s)"));
}

#[test]
fn repeated_boolean_flags_are_consumed() {
    let out = repro()
        .args(["--quick", "table1", "--quick"])
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "a repeated --quick must not become an experiment id: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn duplicate_ids_run_once() {
    // Regression: `repro fig1 fig1` used to run the experiment twice.
    let out = repro()
        .args(["table1", "table1", "table7", "table1"])
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("=== table1").count(), 1);
    assert_eq!(stdout.matches("=== table7").count(), 1);
    assert!(
        stdout.find("=== table1").unwrap() < stdout.find("=== table7").unwrap(),
        "dedup must preserve first-seen order"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("ignoring duplicate experiment id"));
}

#[test]
fn list_rejects_options_and_arguments() {
    // Regression: `repro list --jobs 2 --quick` used to silently discard
    // the options and print the listing anyway.
    for argv in [
        &["list", "--jobs", "2", "--quick"][..],
        &["list", "--json"],
        &["list", "extra"],
    ] {
        let out = repro().args(argv).output().expect("spawn repro");
        assert!(!out.status.success(), "{argv:?} must fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("list takes no options or arguments"),
            "{argv:?}"
        );
    }
}

#[test]
fn unknown_options_are_rejected() {
    let out = repro()
        .args(["table1", "--frobnicate"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option: --frobnicate"));
}

// --- Observability: --metrics and --manifest ---------------------------

#[test]
fn metrics_flag_reports_solver_counters() {
    let out = repro()
        .args(["fig11", "--quick", "--metrics"])
        .output()
        .expect("spawn repro --metrics");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("metrics:"), "{stderr}");
    assert!(
        stderr.contains("core.solver.residual_evals"),
        "network figure must report solver work: {stderr}"
    );
    assert!(stderr.contains("runner.experiments"));
}

#[test]
fn manifest_records_experiments_and_solver_counters() {
    let tmp = TempManifest::new("partial");
    let out = repro()
        .args([
            "fig10",
            "fig11",
            "--quick",
            "--jobs",
            "2",
            "--manifest",
            tmp.path(),
        ])
        .output()
        .expect("spawn repro --manifest");
    assert!(out.status.success());
    let json = std::fs::read_to_string(tmp.path()).expect("manifest written");
    let manifest = RunManifest::from_json(&json).expect("manifest parses");
    assert_eq!(manifest.schema, swcc_experiments::MANIFEST_SCHEMA);
    assert!(manifest.options.quick);
    assert_eq!(manifest.options.jobs, 2);
    assert_eq!(manifest.totals.experiments, 2);
    assert!(manifest.totals.wall_ms > 0.0);
    for id in ["fig10", "fig11"] {
        let entry = manifest.experiment(id).expect(id);
        assert!(entry.duration_ms >= 0.0);
        let evals = entry
            .counters
            .iter()
            .find(|c| c.name == "core.solver.residual_evals")
            .map(|c| c.value)
            .unwrap_or(0);
        assert!(evals > 0, "{id} must attribute solver work, got {evals}");
    }
    // Process totals cover at least the per-experiment sums.
    assert!(
        manifest
            .metrics
            .counter("core.solver.residual_evals")
            .unwrap_or(0)
            > 0
    );

    // check-manifest: parses, but flags missing registry coverage.
    let check = repro()
        .args(["check-manifest", tmp.path()])
        .output()
        .expect("spawn check-manifest");
    assert!(
        !check.status.success(),
        "partial manifest must fail coverage"
    );
    assert!(String::from_utf8_lossy(&check.stderr).contains("missing:"));
}

#[test]
fn check_manifest_rejects_garbage() {
    let tmp = TempManifest::new("garbage");
    std::fs::write(tmp.path(), "{\"schema\": \"other/v9\"}").unwrap();
    let out = repro()
        .args(["check-manifest", tmp.path()])
        .output()
        .expect("spawn check-manifest");
    assert!(!out.status.success());
    let missing = repro()
        .args(["check-manifest", "/nonexistent/manifest.json"])
        .output()
        .expect("spawn check-manifest");
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot read"));
}

#[test]
fn observation_does_not_change_artifacts_and_manifest_covers_registry() {
    // The acceptance bar for the observability layer: a full observed
    // run produces byte-identical artifacts (modulo nondeterministic
    // runner timing notes) and a manifest covering the whole registry.
    let tmp = TempManifest::new("all");
    let plain = repro()
        .args(["--all", "--quick", "--jobs", "0", "--json"])
        .output()
        .expect("spawn plain run");
    assert!(plain.status.success());
    let observed = repro()
        .args([
            "--all",
            "--quick",
            "--jobs",
            "0",
            "--json",
            "--metrics",
            "--manifest",
            tmp.path(),
        ])
        .output()
        .expect("spawn observed run");
    assert!(observed.status.success());

    let mut plain_json: serde_json::Value =
        serde_json::from_slice(&plain.stdout).expect("plain JSON");
    let mut observed_json: serde_json::Value =
        serde_json::from_slice(&observed.stdout).expect("observed JSON");
    strip_runner_notes(&mut plain_json);
    strip_runner_notes(&mut observed_json);
    assert_eq!(
        plain_json, observed_json,
        "metrics/manifest must not change artifact output"
    );

    let manifest =
        RunManifest::from_json(&std::fs::read_to_string(tmp.path()).expect("manifest written"))
            .expect("manifest parses");
    assert!(
        manifest.missing_experiments().is_empty(),
        "an --all manifest must cover the registry"
    );
    assert_eq!(
        manifest.totals.experiments,
        swcc_experiments::EXPERIMENTS.len()
    );
    let check = repro()
        .args(["check-manifest", tmp.path()])
        .output()
        .expect("spawn check-manifest");
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    assert!(String::from_utf8_lossy(&check.stderr).contains("ok"));
}

// --- Tracing: --trace and trace-report ----------------------------------

#[test]
fn traced_parallel_run_round_trips_and_changes_nothing() {
    // The tentpole acceptance bar: a traced parallel --all run produces
    // byte-identical artifacts (modulo runner timing notes), and the
    // trace round-trips through trace-report with a span for every
    // experiment, a convergence record for every solve, and zero
    // divergences.
    let trace = TempManifest::new("trace");
    let plain = repro()
        .args(["--all", "--quick", "--json"])
        .output()
        .expect("spawn plain run");
    assert!(plain.status.success());
    let traced = repro()
        .args([
            "--all",
            "--quick",
            "--json",
            "--jobs",
            "2",
            "--trace",
            trace.path(),
        ])
        .output()
        .expect("spawn traced run");
    assert!(traced.status.success());
    assert!(
        String::from_utf8_lossy(&traced.stderr).contains("trace event(s)"),
        "traced run must report what it wrote"
    );

    let mut plain_json: serde_json::Value =
        serde_json::from_slice(&plain.stdout).expect("plain JSON");
    let mut traced_json: serde_json::Value =
        serde_json::from_slice(&traced.stdout).expect("traced JSON");
    strip_runner_notes(&mut plain_json);
    strip_runner_notes(&mut traced_json);
    assert_eq!(
        plain_json, traced_json,
        "tracing must not change artifact output"
    );

    let jsonl = std::fs::read_to_string(trace.path()).expect("trace written");
    let report = trace_report::analyze(&jsonl);
    assert_eq!(
        report.skipped, 0,
        "the sink's own output must parse cleanly"
    );
    assert!(
        report.is_clean(),
        "no solver may diverge:\n{}",
        report.render()
    );
    let ids = report.experiment_ids();
    for e in swcc_experiments::EXPERIMENTS {
        assert!(ids.contains(e.id), "missing runner span for {}", e.id);
    }
    let c = &report.convergence;
    assert!(c.solves + c.legacy > 0, "solver spans must be traced");
    assert_eq!(
        c.iterations.len() as u64,
        c.solves + c.legacy,
        "every solve must emit a convergence record"
    );
    assert!(
        !report.accuracy.is_empty(),
        "validation figures must trace accuracy points"
    );
    assert!(report.worst_rel_error().unwrap() < 0.5);

    // The CLI subcommand agrees with the library and exits clean.
    let rendered = repro()
        .args(["trace-report", trace.path()])
        .output()
        .expect("spawn trace-report");
    assert!(rendered.status.success());
    let stdout = String::from_utf8_lossy(&rendered.stdout);
    assert!(stdout.contains("status: clean"), "{stdout}");
    assert!(stdout.contains("model-vs-sim accuracy"));
}

#[test]
fn trace_report_warns_on_garbage_and_rejects_missing_files() {
    // Ingestion is lenient: a file of garbage is an empty trace plus a
    // warning, not a hard failure (a truncated trace is still useful).
    let tmp = TempManifest::new("bad-trace");
    std::fs::write(tmp.path(), "not json at all\n").unwrap();
    let out = repro()
        .args(["trace-report", tmp.path()])
        .output()
        .expect("spawn trace-report");
    assert!(
        out.status.success(),
        "corrupt lines warn, they do not fail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("empty trace"), "{stdout}");
    assert!(stdout.contains("skipped 1 corrupt line(s)"), "{stdout}");
    // A missing file is still an error.
    let missing = repro()
        .args(["trace-report", "/nonexistent/trace.jsonl"])
        .output()
        .expect("spawn trace-report");
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot read"));
}

#[test]
fn mangled_trace_is_summarized_with_warnings() {
    // Regression for the lenient-ingestion satellite: a real trace with
    // a corrupt line spliced in and its tail truncated mid-record still
    // produces a report, with the damage counted in warnings.
    let trace = TempManifest::new("mangle-src");
    let run = repro()
        .args(["table1", "fig1", "--quick", "--trace", trace.path()])
        .output()
        .expect("spawn traced run");
    assert!(run.status.success());
    let jsonl = std::fs::read_to_string(trace.path()).expect("trace written");
    let mut lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() > 4, "need a real trace to mangle");
    let truncated = &lines[lines.len() - 1][..lines[lines.len() - 1].len() / 2];
    *lines.last_mut().unwrap() = truncated;
    lines.insert(2, "}} not a trace line {{");
    let mangled = TempManifest::new("mangled");
    std::fs::write(mangled.path(), lines.join("\n")).unwrap();

    let out = repro()
        .args(["trace-report", mangled.path()])
        .output()
        .expect("spawn trace-report");
    assert!(
        out.status.success(),
        "mangled but divergence-free traces pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("corrupt line(s)"), "{stdout}");
    assert!(stdout.contains("per-phase timing"), "{stdout}");
}

// --- Accuracy gate: repro accuracy --------------------------------------

#[test]
fn accuracy_gate_passes_the_committed_baseline_and_fails_on_drift() {
    // Against the committed tolerances the quick run must pass.
    let pass = repro()
        .args(["accuracy", "--quick"])
        .current_dir(env!("CARGO_MANIFEST_DIR").to_string() + "/../..")
        .output()
        .expect("spawn accuracy");
    assert!(
        pass.status.success(),
        "stderr: {}\nstdout: {}",
        String::from_utf8_lossy(&pass.stderr),
        String::from_utf8_lossy(&pass.stdout)
    );
    assert!(String::from_utf8_lossy(&pass.stdout).contains("accuracy gate: passed"));

    // The negative test: a synthetic drifted baseline (an impossible
    // tolerance) must fail the gate with a nonzero exit code.
    let drifted = TempManifest::new("drifted-baseline");
    std::fs::write(
        drifted.path(),
        r#"{"schema":"swcc-accuracy-baseline/v1","figures":[{"id":"fig1","max_rel_error":0.0001}]}"#,
    )
    .unwrap();
    let fail = repro()
        .args(["accuracy", "--quick", "--baseline", drifted.path()])
        .output()
        .expect("spawn accuracy");
    assert!(!fail.status.success(), "drifted baseline must fail");
    assert!(String::from_utf8_lossy(&fail.stdout).contains("accuracy gate: FAILED"));
}

#[test]
fn accuracy_gate_rejects_bad_baselines() {
    let tmp = TempManifest::new("bad-baseline");
    std::fs::write(tmp.path(), r#"{"schema":"other/v9","figures":[]}"#).unwrap();
    let out = repro()
        .args(["accuracy", "--quick", "--baseline", tmp.path()])
        .output()
        .expect("spawn accuracy");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported"));
    let missing = repro()
        .args(["accuracy", "--baseline", "/nonexistent/baseline.json"])
        .output()
        .expect("spawn accuracy");
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot read"));
}

#[test]
fn baseline_flag_is_rejected_outside_accuracy() {
    let out = repro()
        .args(["table1", "--baseline", "x.json"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--baseline"));
}

// --- Version: repro --version -------------------------------------------

#[test]
fn version_prints_build_provenance_and_stands_alone() {
    let out = repro().arg("--version").output().expect("spawn --version");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("repro "), "{stdout}");
    for field in ["commit", "rustc", "cargo", "profile"] {
        assert!(stdout.contains(field), "missing {field}: {stdout}");
    }
    // --version cannot be combined with anything else.
    for argv in [&["--version", "all"][..], &["table1", "--version"]] {
        let out = repro().args(argv).output().expect("spawn repro");
        assert!(!out.status.success(), "{argv:?} must fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--version takes no other arguments"),
            "{argv:?}"
        );
    }
}

// --- Export: repro trace-export ------------------------------------------

#[test]
fn trace_export_produces_chrome_json_and_folded_stacks() {
    let trace = TempManifest::new("export-src");
    let run = repro()
        .args(["table1", "fig5", "--quick", "--trace", trace.path()])
        .output()
        .expect("spawn traced run");
    assert!(run.status.success());

    // Chrome trace-event JSON, to a file.
    let chrome = TempManifest::new("export-chrome");
    let out = repro()
        .args([
            "trace-export",
            trace.path(),
            "--format",
            "chrome",
            "--out",
            chrome.path(),
        ])
        .output()
        .expect("spawn trace-export chrome");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(chrome.path()).expect("chrome export written");
    let value: serde_json::Value = serde_json::from_str(&json).expect("chrome export is JSON");
    let events = value
        .get_field("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for event in events {
        let ph = event
            .get_field("ph")
            .and_then(serde_json::Value::as_str)
            .expect("every event has a phase");
        assert!(["X", "i", "M"].contains(&ph), "unexpected phase {ph:?}");
    }
    assert!(
        events.iter().any(|e| {
            e.get_field("name").and_then(serde_json::Value::as_str) == Some("thread_name")
        }),
        "thread metadata names the lanes"
    );

    // Folded flamegraph stacks, to stdout: self-times sum to the root
    // span's total within 1% (exactly, for a sequential run).
    let folded = repro()
        .args(["trace-export", trace.path(), "--format", "folded"])
        .output()
        .expect("spawn trace-export folded");
    assert!(folded.status.success());
    let stdout = String::from_utf8_lossy(&folded.stdout);
    let mut self_sum = 0u64;
    for line in stdout.lines() {
        let (path, value) = line.rsplit_once(' ').expect("folded line is 'path value'");
        assert!(!path.is_empty());
        self_sum += value.parse::<u64>().expect("folded value is integer ns");
    }
    let report =
        trace_report::analyze(&std::fs::read_to_string(trace.path()).expect("trace readable"));
    let root_total = report.phases["runner.batch"].total_ns;
    let gap = (self_sum as f64 - root_total as f64).abs() / root_total as f64;
    assert!(
        gap < 0.01,
        "folded self-times ({self_sum}) must sum to the root total ({root_total}) within 1%"
    );

    // Bad or missing --format is rejected.
    let bad = repro()
        .args(["trace-export", trace.path(), "--format", "svg"])
        .output()
        .expect("spawn trace-export bad format");
    assert!(!bad.status.success());
    let missing = repro()
        .args(["trace-export", trace.path()])
        .output()
        .expect("spawn trace-export no format");
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("--format"));
}

// --- History: --record-history and repro history -------------------------

#[test]
fn record_history_appends_schema_checked_records() {
    let log = TempManifest::new("history-log");
    for expected in 1..=2u64 {
        let out = repro()
            .args(["table1", "--record-history", "--history-file", log.path()])
            .output()
            .expect("spawn recorded run");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stderr).contains("recorded run history"));
        let records =
            history::load_history(std::path::Path::new(log.path())).expect("history log parses");
        assert_eq!(records.len() as u64, expected, "append-only log grows");
        let last = records.last().unwrap();
        assert_eq!(last.schema, history::HISTORY_SCHEMA);
        assert_eq!(last.experiments, 1);
        assert!(last.warm_start.iteration_speedup > 1.0);
    }
    // --history-file without --record-history makes no sense on a run.
    let out = repro()
        .args(["table1", "--history-file", log.path()])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--record-history"));
}

/// A hand-built steady history record, as the drift tests' baseline.
fn synthetic_record(speedup: f64, evals: u64, err: f64) -> history::HistoryRecord {
    history::HistoryRecord {
        schema: history::HISTORY_SCHEMA.to_string(),
        build: swcc_experiments::BuildProvenance::current(),
        quick: true,
        jobs: 1,
        experiments: 26,
        wall_ms: 500.0,
        accuracy: vec![history::AccuracyEntry {
            figure: "fig1".to_string(),
            max_rel_error: err,
        }],
        solver: history::SolverStats {
            solves: 400,
            residual_evals: evals,
            warm_reuses: 200,
            bracket_fallbacks: 2,
        },
        warm_start: history::WarmStartStats {
            cold_iterations: 400,
            warm_iterations: 160,
            iteration_speedup: speedup,
        },
        batch: Some(history::BatchStats {
            batches: 12,
            lanes: 4000,
            reference_iterations: 1200,
            lanes_per_second: 2.5e7,
        }),
        sim: Some(history::SimStats {
            reference_accesses: 55_000,
            reference_makespan: 90_000,
            accesses_per_second: 5.0e6,
            wall_ms: 11.0,
        }),
    }
}

#[test]
fn history_subcommand_gates_drift_with_its_exit_code() {
    // Steady log: the gate passes.
    let steady = TempManifest::new("history-steady");
    for record in [
        synthetic_record(2.50, 9000, 0.120),
        synthetic_record(2.52, 9010, 0.119),
        synthetic_record(2.48, 8990, 0.121),
    ] {
        history::append_record(std::path::Path::new(steady.path()), &record).unwrap();
    }
    let out = repro()
        .args(["history", "--history-file", steady.path()])
        .output()
        .expect("spawn repro history");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("run history: showing 3 of 3"), "{stdout}");
    assert!(stdout.contains("drift: OK"), "{stdout}");

    // Drifted newest record: solver suddenly does 3x the work → the
    // acceptance-criteria negative test, nonzero exit.
    let drifted = TempManifest::new("history-drifted");
    std::fs::copy(steady.path(), drifted.path()).unwrap();
    history::append_record(
        std::path::Path::new(drifted.path()),
        &synthetic_record(2.51, 27000, 0.120),
    )
    .unwrap();
    let out = repro()
        .args(["history", "--history-file", drifted.path()])
        .output()
        .expect("spawn repro history drifted");
    assert!(!out.status.success(), "drifted history must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("drift: FAILED"), "{stdout}");
    assert!(stdout.contains("solver residual evals"), "{stdout}");

    // A generous --tolerance lets the same log pass, and --last trims
    // the trend table.
    let out = repro()
        .args([
            "history",
            "--history-file",
            drifted.path(),
            "--tolerance",
            "900",
            "--last",
            "2",
        ])
        .output()
        .expect("spawn repro history tolerant");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("showing 2 of 4"), "{stdout}");
    assert!(stdout.contains("drift: OK"), "{stdout}");

    // A missing log renders as empty and passes.
    let out = repro()
        .args(["history", "--history-file", "/nonexistent/runs.jsonl"])
        .output()
        .expect("spawn repro history empty");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("history is empty"));
}

#[test]
fn history_below_the_median_window_skips_with_insufficient_history() {
    // One record: no comparable predecessor. The gate must skip with an
    // explicit "insufficient history" message and a success exit, even
    // though the record's values would scream drift against any real
    // baseline.
    let log = TempManifest::new("history-short");
    let awful = synthetic_record(0.01, 999_999_999, 0.999);
    history::append_record(std::path::Path::new(log.path()), &awful).unwrap();
    let out = repro()
        .args(["history", "--history-file", log.path()])
        .output()
        .expect("spawn repro history single");
    assert!(
        out.status.success(),
        "a single-record history must not gate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("insufficient history"), "{stdout}");
    assert!(stdout.contains("drift: SKIPPED"), "{stdout}");

    // Two records: exactly one comparable predecessor — still below the
    // trailing-median window. Gating now would compare the newest run
    // against a "median" of one sample, so this must also skip, even
    // with the newest record wildly worse than its lone predecessor.
    history::append_record(
        std::path::Path::new(log.path()),
        &synthetic_record(0.001, u64::MAX / 2, 1.0),
    )
    .unwrap();
    let out = repro()
        .args(["history", "--history-file", log.path()])
        .output()
        .expect("spawn repro history pair");
    assert!(
        out.status.success(),
        "one predecessor is below the median window: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("insufficient history"), "{stdout}");
    assert!(stdout.contains("drift: SKIPPED"), "{stdout}");
    assert!(!stdout.contains("drift: FAILED"), "{stdout}");
}

#[test]
fn history_skips_quantities_predating_the_record_with_a_note() {
    // Records written before the sim-throughput stats existed must not
    // fail the gate — the gate prints one explicit skip line for the
    // quantity and moves on (same contract as the pre-batch records).
    let log = TempManifest::new("history-presim");
    let mut old = synthetic_record(2.50, 9000, 0.120);
    old.sim = None;
    let mut older = synthetic_record(2.52, 9010, 0.119);
    older.sim = None;
    for record in [older, old, synthetic_record(2.48, 8990, 0.121)] {
        history::append_record(std::path::Path::new(log.path()), &record).unwrap();
    }
    let out = repro()
        .args(["history", "--history-file", log.path()])
        .output()
        .expect("spawn repro history pre-sim");
    assert!(
        out.status.success(),
        "pre-sim predecessors must not fail the gate: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("sim reference makespan: SKIPPED"),
        "the skip must be explicit, not silent: {stdout}"
    );
    assert!(stdout.contains("predate it"), "{stdout}");
    assert!(stdout.contains("drift: OK"), "{stdout}");
    // The trend table still shows a sim-throughput column, dashed for
    // the old records.
    assert!(stdout.contains("sim acc/s"), "{stdout}");
}

// --- Sim report: repro sim-report -----------------------------------------

#[test]
fn sim_report_emits_schema_versioned_json_and_human_tables() {
    let json_out = TempManifest::new("sim-report");
    let out = repro()
        .args(["sim-report", "--quick", "--out", json_out.path()])
        .output()
        .expect("spawn repro sim-report");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Human tables on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "sim report (swcc-sim-report/v1, quick profile)",
        "model-vs-sim residuals per validation point:",
        "coherence events per protocol:",
        "measurement counts per validation curve:",
        "totals:",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }

    // Machine-readable document in the --out file.
    let json = std::fs::read_to_string(json_out.path()).expect("sim report written");
    let doc: serde_json::Value = serde_json::from_str(&json).expect("sim report is JSON");
    assert_eq!(
        doc.get_field("schema").and_then(serde_json::Value::as_str),
        Some("swcc-sim-report/v1")
    );
    let points = doc
        .get_field("points")
        .and_then(serde_json::Value::as_array)
        .expect("points array");
    assert_eq!(points.len(), 44, "full validation matrix");
    for point in points {
        for field in ["sim_power", "model_power", "power_rel_error"] {
            assert!(
                point
                    .get_field(field)
                    .and_then(serde_json::Value::as_f64)
                    .is_some(),
                "every point carries {field}"
            );
        }
    }
    let rate = doc
        .get_field("totals")
        .and_then(|t| t.get_field("accesses_per_second"))
        .and_then(serde_json::Value::as_f64)
        .expect("totals carry a throughput");
    assert!(rate > 0.0, "accesses/s must be nonzero, got {rate}");
    let protocols = doc
        .get_field("protocols")
        .and_then(serde_json::Value::as_array)
        .expect("protocols array");
    assert!(
        protocols.len() >= 2,
        "Base and Dragon both appear in the matrix"
    );
}

#[test]
fn sim_report_rejects_foreign_options() {
    for argv in [
        &["sim-report", "--jobs", "2"][..],
        &["sim-report", "--metrics"],
        &["sim-report", "--format", "chrome"],
        &["sim-report", "extra-arg"],
    ] {
        let out = repro().args(argv).output().expect("spawn repro sim-report");
        assert!(!out.status.success(), "{argv:?} must fail");
        assert!(
            String::from_utf8_lossy(&out.stderr)
                .contains("usage: repro sim-report [--quick] [--json] [--out PATH]"),
            "{argv:?}"
        );
    }
}

// --- Dashboard: repro report --html --------------------------------------

#[test]
fn report_writes_a_self_contained_html_dashboard() {
    let trace = TempManifest::new("dash-trace");
    let run = repro()
        .args(["fig1", "--quick", "--trace", trace.path()])
        .output()
        .expect("spawn traced run");
    assert!(run.status.success());
    let log = TempManifest::new("dash-history");
    for record in [
        synthetic_record(2.50, 9000, 0.120),
        synthetic_record(2.52, 9010, 0.119),
    ] {
        history::append_record(std::path::Path::new(log.path()), &record).unwrap();
    }

    let html_out = TempManifest::new("dash-html");
    let out = repro()
        .args([
            "report",
            "--html",
            html_out.path(),
            trace.path(),
            "--history-file",
            log.path(),
        ])
        .output()
        .expect("spawn repro report");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let html = std::fs::read_to_string(html_out.path()).expect("dashboard written");
    assert!(html.starts_with("<!DOCTYPE html>"));
    for section in ["Phase timings", "Run history", "<svg"] {
        assert!(html.contains(section), "missing {section:?}");
    }
    // Single self-contained file: nothing fetched from anywhere.
    for needle in [
        "http://", "https://", "<script", "<link", " src=", "@import",
    ] {
        assert!(
            !html.contains(needle),
            "dashboard must not contain {needle:?}"
        );
    }

    // --html is mandatory; a traceless dashboard still renders.
    let missing = repro().arg("report").output().expect("spawn repro report");
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("--html"));
    let traceless = TempManifest::new("dash-traceless");
    let out = repro()
        .args([
            "report",
            "--html",
            traceless.path(),
            "--history-file",
            log.path(),
        ])
        .output()
        .expect("spawn traceless report");
    assert!(out.status.success());
    assert!(std::fs::read_to_string(traceless.path())
        .expect("traceless dashboard written")
        .contains("No trace supplied"));
}
