//! End-to-end tests of the `repro` binary.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn list_names_every_registered_experiment() {
    let out = repro().arg("list").output().expect("spawn repro list");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for e in swcc_experiments::EXPERIMENTS {
        assert!(stdout.contains(e.id), "missing {}", e.id);
    }
}

#[test]
fn single_table_renders() {
    let out = repro().args(["table7"]).output().expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 7"));
    assert!(stdout.contains("1/apl"));
}

#[test]
fn model_figures_render_with_plot_and_data() {
    let out = repro().args(["fig5", "--quick"]).output().expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("legend:"));
    assert!(stdout.contains("series: Dragon"));
}

#[test]
fn json_output_parses_and_carries_ids() {
    let out = repro()
        .args(["table1", "fig7", "--json"])
        .output()
        .expect("spawn repro --json");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON artifact array");
    let arr = parsed.as_array().expect("array of [id, artifact]");
    assert_eq!(arr.len(), 2);
    assert_eq!(arr[0][0], "table1");
    assert_eq!(arr[1][0], "fig7");
    assert!(arr[1][1]["Figure"]["series"].is_array());
}

#[test]
fn unknown_id_fails_with_usage() {
    let out = repro().args(["fig99"]).output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment id"));
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = repro().output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
