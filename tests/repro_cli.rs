//! End-to-end tests of the `repro` binary.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn list_names_every_registered_experiment() {
    let out = repro().arg("list").output().expect("spawn repro list");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for e in swcc_experiments::EXPERIMENTS {
        assert!(stdout.contains(e.id), "missing {}", e.id);
    }
}

#[test]
fn single_table_renders() {
    let out = repro().args(["table7"]).output().expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 7"));
    assert!(stdout.contains("1/apl"));
}

#[test]
fn model_figures_render_with_plot_and_data() {
    let out = repro()
        .args(["fig5", "--quick"])
        .output()
        .expect("spawn repro");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("legend:"));
    assert!(stdout.contains("series: Dragon"));
}

#[test]
fn json_output_parses_and_carries_ids() {
    let out = repro()
        .args(["table1", "fig7", "--json"])
        .output()
        .expect("spawn repro --json");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON artifact array");
    let arr = parsed.as_array().expect("array of [id, artifact]");
    assert_eq!(arr.len(), 2);
    assert_eq!(arr[0][0], "table1");
    assert_eq!(arr[1][0], "fig7");
    assert!(arr[1][1]["Figure"]["series"].is_array());
}

#[test]
fn parallel_jobs_preserve_request_order_and_record_timings() {
    let out = repro()
        .args(["table1", "fig4", "fig5", "fig6", "--quick", "--jobs", "4"])
        .output()
        .expect("spawn repro --jobs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let positions: Vec<usize> = ["=== table1", "=== fig4", "=== fig5", "=== fig6"]
        .iter()
        .map(|h| stdout.find(h).unwrap_or_else(|| panic!("missing {h}")))
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "output must follow request order regardless of completion order"
    );
    assert!(
        stdout.matches("runner: completed in").count() >= 4,
        "each artifact must carry its wall-clock duration"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("4 experiment(s) with 4 job(s)"));
}

#[test]
fn jobs_zero_uses_available_parallelism() {
    let out = repro()
        .args(["table1", "table7", "--jobs=0"])
        .output()
        .expect("spawn repro --jobs=0");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("with 0 job(s)"),
        "--jobs 0 must resolve to a positive worker count: {stderr}"
    );
}

#[test]
fn all_flag_json_covers_registry() {
    let out = repro()
        .args(["--all", "--quick", "--jobs", "0", "--json"])
        .output()
        .expect("spawn repro --all");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON artifact array");
    let arr = parsed.as_array().expect("array of [id, artifact]");
    assert_eq!(arr.len(), swcc_experiments::EXPERIMENTS.len());
    for (i, e) in swcc_experiments::EXPERIMENTS.iter().enumerate() {
        assert_eq!(arr[i][0], e.id, "JSON order must match registry order");
    }
}

#[test]
fn bad_jobs_value_fails_with_usage() {
    let out = repro()
        .args(["table1", "--jobs", "many"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn unknown_id_fails_with_usage() {
    let out = repro().args(["fig99"]).output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment id"));
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = repro().output().expect("spawn repro");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
