//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::StdRng`] (xoshiro256** seeded through SplitMix64 —
//! a different stream than real rand's ChaCha12-based `StdRng`, but a
//! high-quality deterministic generator), the [`Rng`]/[`RngCore`]/
//! [`SeedableRng`] traits with `gen_range`, `gen_bool`, and `gen`, and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Simulation outputs seeded through this crate are deterministic for a
//! given seed but differ numerically from runs against real `rand`.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`start..end` or `start..=end`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a uniform value of type `T`.
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly over their whole domain
/// (`[0, 1)` for floats).
pub trait Uniform {
    /// Samples one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Uniform for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Uniform for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift (Lemire) keeps bias negligible for the
                // span sizes used here.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator of this stand-in:
    /// xoshiro256** with SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
