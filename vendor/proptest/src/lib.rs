//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`Strategy`] for numeric ranges, tuples, `prop_map`,
//!   [`collection::vec`], [`bool::ANY`], and [`any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] (plain assertions here),
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking** and no persistence:
//! failures report the panicking case directly. Case generation is
//! deterministic per test function (seeded from the test name), so runs
//! are reproducible without a regressions file.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test's name, so each test has a
    /// stable, independent stream.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `span` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Run configuration: how many cases each property executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        // Hit the endpoints occasionally: they are where bugs live.
        match rng.below(64) {
            0 => start,
            1 => end,
            _ => start + (end - start) * rng.unit_f64(),
        }
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over a type's entire domain.
#[derive(Debug, Clone)]
pub struct FullRange<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The canonical whole-domain strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generates vectors whose length lies in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.sizes.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Defines property tests over strategies.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, y in 0.0..1.0f64) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let __strategies = ( $($strat,)+ );
            #[allow(non_snake_case)]
            for __case in 0..__config.cases {
                let ( $($arg,)+ ) = $crate::Strategy::sample(&__strategies, &mut __rng);
                let __run = || -> () { $body };
                __run();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in 0.25..0.75f64, i in 0.0..=1.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((0.0..=1.0).contains(&i));
        }

        #[test]
        fn mapped_strategies_apply(e in evens()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vectors_hit_requested_sizes(v in prop::collection::vec((0u64..64, prop::bool::ANY), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for (x, _flag) in v {
                prop_assert!(x < 64);
            }
        }

        #[test]
        fn any_samples_full_domain(b in any::<u8>(), flag in prop::bool::ANY) {
            let _ = (b, flag);
        }
    }
}
