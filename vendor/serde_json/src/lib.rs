//! Offline stand-in for `serde_json`.
//!
//! Thin facade over the text reader/writer in the `serde` stand-in
//! ([`serde::json`]): `to_string`/`to_string_pretty` serialize any
//! [`serde::Serialize`] into compact or 2-space-indented JSON, and
//! `from_str`/`from_slice` parse JSON into any [`serde::Deserialize`]
//! (including [`Value`] itself for dynamic inspection).

pub use serde::Value;

use std::fmt;

/// Error produced by JSON serialization or deserialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error { msg: e.to_string() }
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails in this stand-in (non-finite floats serialize as `null`);
/// the `Result` mirrors serde_json's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_json(&value.to_value(), false))
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_json(&value.to_value(), true))
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::json::from_json(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON bytes into `T`.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error { msg: e.to_string() })?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v: Value = from_str(r#"{"a":[1,2.5,"x"],"b":null}"#).unwrap();
        assert!(v["a"].is_array());
        assert_eq!(v["a"][2], "x");
        let text = to_string(&v).unwrap();
        let again: Value = from_str(&text).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(f64, f64)> = from_str("[[1,2],[3.5,4]]").unwrap();
        assert_eq!(v, vec![(1.0, 2.0), (3.5, 4.0)]);
        assert_eq!(to_string(&v).unwrap(), "[[1,2],[3.5,4]]");
    }
}
