//! JSON text reader and writer for [`Value`].
//!
//! The writer emits RFC 8259 JSON (non-finite floats degrade to `null`,
//! matching serde_json's lossy float handling in permissive mode); the
//! reader accepts the full grammar including `\uXXXX` escapes and
//! surrogate pairs.

use crate::{DeError, Value};

/// Serializes a [`Value`] to JSON text.
///
/// With `pretty`, uses two-space indentation like serde_json's
/// `to_string_pretty`.
pub fn to_json(value: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, value, pretty, 0);
    out
}

fn write_value(out: &mut String, value: &Value, pretty: bool, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, pretty, depth + 1);
                write_value(out, item, pretty, depth + 1);
            }
            newline_indent(out, pretty, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, pretty, depth + 1);
                write_string(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, depth + 1);
            }
            newline_indent(out, pretty, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, pretty: bool, depth: usize) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`DeError`] on any syntax error, including trailing garbage.
pub fn from_json(text: &str) -> Result<Value, DeError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(DeError::custom(format!(
            "trailing characters at byte {pos}"
        )));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, DeError> {
    if depth > MAX_DEPTH {
        return Err(DeError::custom("nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(DeError::custom("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(DeError::custom("expected ',' or ']' in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(DeError::custom("expected ':' in object"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(DeError::custom("expected ',' or '}' in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, DeError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(DeError::custom(format!(
            "invalid literal, expected {keyword}"
        )))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| DeError::custom("invalid number bytes"))?;
    if text.is_empty() || text == "-" {
        return Err(DeError::custom("expected a JSON value"));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(i) = stripped.parse::<u64>() {
                if i <= i64::MAX as u64 + 1 {
                    return Ok(Value::Int((i as i128).wrapping_neg() as i64));
                }
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| DeError::custom(format!("invalid number {text:?}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, DeError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(DeError::custom("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(DeError::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let high = parse_hex4(bytes, pos)?;
                        let c = if (0xd800..0xdc00).contains(&high) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                let combined = 0x10000
                                    + ((high - 0xd800) << 10)
                                    + (low.wrapping_sub(0xdc00) & 0x3ff);
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(high)
                        };
                        out.push(c.ok_or_else(|| DeError::custom("invalid \\u escape"))?);
                        // parse_hex4 already advanced past the digits.
                        continue;
                    }
                    _ => return Err(DeError::custom("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| DeError::custom("invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, DeError> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err(DeError::custom("truncated \\u escape"));
    }
    let hex = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| DeError::custom("invalid \\u escape"))?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| DeError::custom("invalid \\u escape"))?;
    *pos = end;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x\n\"y\"".into())),
            (
                "points".into(),
                Value::Array(vec![Value::Float(1.5), Value::UInt(2), Value::Int(-3)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let text = to_json(&v, false);
        assert_eq!(from_json(&text).unwrap(), v);
        let pretty = to_json(&v, true);
        assert_eq!(from_json(&pretty).unwrap(), v);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(from_json(r#""aé😀b""#).unwrap(), Value::Str("aé😀b".into()));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "1x",
            "\"abc",
            "{\"a\" 1}",
            "[1] extra",
        ] {
            assert!(from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn integers_keep_exact_width() {
        assert_eq!(
            from_json("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(
            from_json("-9223372036854775808").unwrap(),
            Value::Int(i64::MIN)
        );
    }
}
