//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the real `serde` cannot be fetched. This crate provides the subset
//! of its surface the workspace actually uses, built around a concrete
//! JSON-like [`Value`] tree instead of serde's visitor machinery:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`],
//! * [`Deserialize`] — rebuild `Self` from a [`&Value`](Value),
//! * `#[derive(Serialize, Deserialize)]` — provided by the companion
//!   `serde_derive` proc-macro crate and re-exported here, covering
//!   plain (non-generic) structs, tuple structs, and enums with the same
//!   externally-tagged representation real serde uses by default.
//!
//! The companion `serde_json` stand-in supplies `to_string`,
//! `to_string_pretty`, `from_str`, and `from_slice` on top of the text
//! reader/writer implemented in [`json`].

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use std::fmt;

/// A JSON-like tree: the common interchange format of this stand-in.
///
/// Integers keep their signedness so `u64` values round-trip exactly;
/// [`Deserialize`] impls for numeric types coerce between the three
/// numeric variants.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrows the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// `true` if this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` if this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks a key up in an object (`None` for non-objects and misses).
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks an element up in an array.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(index),
            _ => None,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_field(key).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&json::to_json(self, false))
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`], reporting shape mismatches.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if the value's shape or range does not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::custom("expected boolean"))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v < 0 {
                    Value::Int(v as i64)
                } else {
                    Value::UInt(v as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match *value {
                    Value::Int(i) => i128::from(i),
                    Value::UInt(u) => i128::from(u),
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e18 => f as i128,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::custom("expected single-character string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let v: Vec<T> = Vec::from_value(value)?;
        v.try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$(stringify!($idx)),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom("tuple length mismatch"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// Compatibility alias module mirroring `serde::de::Error::custom` call
/// sites (`DeError` plays both roles in this stand-in).
pub mod de {
    pub use crate::DeError as Error;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion_round_trips() {
        assert_eq!(f64::from_value(&Value::UInt(2)).unwrap(), 2.0);
        assert_eq!(u32::from_value(&Value::Float(7.0)).unwrap(), 7);
        assert!(u8::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn value_indexing_misses_are_null() {
        let v = Value::Array(vec![Value::Str("x".into())]);
        assert_eq!(v[0], "x");
        assert!(v[9].is_null());
        assert!(v["k"].is_null());
    }

    #[test]
    fn tuples_serialize_as_arrays() {
        let v = (1.5f64, 2.5f64).to_value();
        assert_eq!(v, Value::Array(vec![Value::Float(1.5), Value::Float(2.5)]));
        let back = <(f64, f64)>::from_value(&v).unwrap();
        assert_eq!(back, (1.5, 2.5));
    }
}
