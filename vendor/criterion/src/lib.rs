//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — backed by a simple median-of-samples wall-clock harness
//! instead of criterion's full statistical machinery.
//!
//! Numbers print as `ns/iter`; there is no HTML report, no outlier
//! analysis, and no baseline comparison. Requested `measurement_time`s
//! are honored up to a 2-second-per-benchmark cap so `cargo bench` on
//! the full suite stays tractable; set `CRITERION_MEASUREMENT_CAP_MS`
//! to raise it.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Upper bound on per-benchmark measurement time, unless overridden by
/// the `CRITERION_MEASUREMENT_CAP_MS` environment variable.
const DEFAULT_CAP: Duration = Duration::from_secs(2);

fn measurement_cap() -> Duration {
    std::env::var("CRITERION_MEASUREMENT_CAP_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(DEFAULT_CAP, Duration::from_millis)
}

/// Benchmark settings shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            throughput: None,
        }
    }
}

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs a single benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, &self.settings, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            settings: Settings::default(),
        }
    }
}

/// A named collection of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time (capped — see crate docs).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.settings.warm_up_time = t;
        self
    }

    /// Declares how much work one iteration performs, enabling a
    /// throughput line in the output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<I: Display, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &self.settings, f);
        self
    }

    /// Runs a parameterized benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, &self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in this stand-in).
    pub fn finish(&mut self) {}
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id rendered as `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Amount of work performed by one iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the harness asks.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, settings: &Settings, mut f: F) {
    // Warm up and estimate the cost of one iteration.
    let warm_deadline = Instant::now() + settings.warm_up_time.min(measurement_cap());
    let mut warm_iters = 0u64;
    let mut warm_elapsed = Duration::ZERO;
    let mut probe = 1u64;
    while Instant::now() < warm_deadline {
        let mut b = Bencher {
            iters: probe,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += probe;
        warm_elapsed += b.elapsed;
        probe = probe.saturating_mul(2).min(1 << 20);
    }
    let per_iter = if warm_iters == 0 {
        Duration::from_nanos(1)
    } else {
        (warm_elapsed / u32::try_from(warm_iters.min(u64::from(u32::MAX))).unwrap_or(1))
            .max(Duration::from_nanos(1))
    };

    // Split the (capped) measurement budget into `sample_size` samples.
    let budget = settings.measurement_time.min(measurement_cap());
    let per_sample = budget / u32::try_from(settings.sample_size).unwrap_or(1);
    let iters_per_sample =
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 32) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];

    print!(
        "{id:<50} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
    if let Some(tp) = settings.throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if median > 0.0 {
            let rate = count as f64 / (median * 1e-9);
            print!("  thrpt: {rate:.3e} {unit}/s");
        }
    }
    println!();
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each listed group (ignores cargo's argv).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_cheap_routine() {
        std::env::set_var("CRITERION_MEASUREMENT_CAP_MS", "50");
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(2u64) + 2));
        let mut group = c.benchmark_group("grouped");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0u64..4).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 8u32), &8u32, |b, &n| {
            b.iter(|| (0..u64::from(n)).product::<u64>())
        });
        group.finish();
    }
}
