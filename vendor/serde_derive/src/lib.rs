//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses — non-generic structs (named, tuple, unit)
//! and enums (unit, tuple, and struct variants) — by parsing the raw
//! token stream directly, since `syn`/`quote` are unavailable offline.
//!
//! Representations match real serde's defaults:
//!
//! * named struct   → JSON object keyed by field name
//! * newtype struct → the inner value
//! * tuple struct   → JSON array
//! * unit variant   → the variant name as a string
//! * data variant   → externally tagged: `{"Variant": ...}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
}

/// Derives the stand-in `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the stand-in `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = if serialize {
        gen_serialize(&parsed)
    } else {
        gen_deserialize(&parsed)
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes, visibility, and modifiers until `struct` / `enum`.
    let keyword = loop {
        match tokens.get(i) {
            None => return Err("expected `struct` or `enum`".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break "struct";
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                i += 1;
                break "enum";
            }
            Some(_) => i += 1,
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive does not support generic type `{name}`"
            ));
        }
    }
    let kind = if keyword == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(count_top_level(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Shape::Unit),
            _ => return Err("unsupported struct body".into()),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("expected enum body".into()),
        }
    };
    Ok(Input { name, kind })
}

/// Extracts field names from a named-field body, skipping attributes,
/// visibility, and types (tracking `<...>` depth so commas inside
/// generic types do not split fields).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes (doc comments included).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        // Skip visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field, found {other:?}")),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts top-level comma-separated entries (for tuple fields).
fn count_top_level(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut saw_token = false;
    let mut last_was_comma = false;
    for t in stream {
        saw_token = true;
        last_was_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if !saw_token {
        0
    } else if last_was_comma {
        count
    } else {
        count + 1
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Shape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_top_level(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, shape));
    }
    Ok(variants)
}

// --------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", entries.join(","))
        }
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
        }
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from({v:?}), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({v:?}), ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(",");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({v:?}), ::serde::Value::Object(::std::vec![{}]))]),",
                            entries.join(",")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Named(fields)) => named_fields_expr(name, fields, "__value"),
        Kind::Struct(Shape::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => tuple_expr(name, *n, "__value"),
        Kind::Struct(Shape::Unit) => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| {
                    let expr = match shape {
                        Shape::Unit => return None,
                        Shape::Tuple(1) => format!(
                            "::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?))"
                        ),
                        Shape::Tuple(n) => tuple_expr(&format!("{name}::{v}"), *n, "__inner"),
                        Shape::Named(fields) => {
                            named_fields_expr(&format!("{name}::{v}"), fields, "__inner")
                        }
                    };
                    Some(format!("{v:?} => {{ {expr} }},"))
                })
                .collect();
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown variant {{__other:?}} for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {data}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown variant {{__other:?}} for {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::DeError::custom(\
                         \"expected externally tagged enum\")),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn named_fields_expr(ctor: &str, fields: &[String], value: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({value}.get_field({f:?})\
                     .unwrap_or(&::serde::Value::Null))\
                     .map_err(|__e| ::serde::DeError::custom(\
                         ::std::format!(\"field {f}: {{__e}}\")))?"
            )
        })
        .collect();
    format!(
        "::std::result::Result::Ok({ctor} {{ {} }})",
        inits.join(",")
    )
}

fn tuple_expr(ctor: &str, n: usize, value: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "::serde::Deserialize::from_value({value}.get_index({i})\
                     .unwrap_or(&::serde::Value::Null))?"
            )
        })
        .collect();
    format!("::std::result::Result::Ok({ctor}({}))", items.join(","))
}
