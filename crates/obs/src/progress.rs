//! Throttled progress heartbeats for long-running loops.
//!
//! A [`Progress`] sits inside a hot loop (the trace-driven simulator
//! replaying hundreds of millions of accesses, a long sweep) and
//! periodically reports how far along the loop is — items done,
//! items/second, and an ETA — without ever perturbing the loop's
//! results or costing more than an integer compare per iteration.
//!
//! Two layers of throttling keep it honest in a hot loop:
//!
//! 1. [`due`](Progress::due) is a branch-predictable subtraction the
//!    caller gates on every iteration, so the expensive path is only
//!    entered every `check_every` items.
//! 2. [`tick`](Progress::tick) rate-limits actual emission to one
//!    heartbeat per `min_interval` of wall clock, so a fast loop with a
//!    small `check_every` still heartbeats at a human cadence.
//!
//! Throughput is measured over the trailing 10-second window of a
//! [`WindowRing`] (the same primitive behind the service-layer
//! telemetry windows), falling back to the cumulative average while the
//! first window is still filling. Each heartbeat refreshes an optional
//! registry gauge via [`crate::gauge_set`] and, when a trace sink is
//! installed, emits a point event carrying `done`, `total`,
//! `per_second`, `eta_s`, and `elapsed_s`.
//!
//! Like every swcc-obs primitive, a heartbeat only *reads* caller
//! state: with no recorder and no sink installed, ticks update private
//! ring buckets and change nothing observable — loops instrumented
//! with [`Progress`] stay bit-identical to uninstrumented ones.
//!
//! ```
//! use swcc_obs::Progress;
//!
//! let total = 10_000u64;
//! let mut progress = Progress::new("demo.progress", total).check_every(1024);
//! let mut done = 0u64;
//! for _ in 0..total {
//!     // ... one unit of work ...
//!     done += 1;
//!     if progress.due(done) {
//!         progress.tick(done);
//!     }
//! }
//! assert!(progress.emitted() >= 1);
//! ```

use std::time::{Duration, Instant};

use crate::gauge_set;
use crate::trace::{event, trace_enabled, Field};
use crate::window::WindowRing;

/// Per-second sample slots in the internal ring — heartbeats record no
/// latency samples, so the minimum is plenty.
const RING_SAMPLES: usize = 1;

/// Window (seconds) the smoothed rate is computed over.
const RATE_WINDOW_S: u64 = 10;

/// A throttled progress/heartbeat emitter for long loops.
///
/// See the [module docs](self) for the usage pattern.
#[derive(Debug)]
pub struct Progress {
    event: &'static str,
    gauge: Option<&'static str>,
    total: u64,
    check_every: u64,
    min_interval: Duration,
    start: Instant,
    ring: WindowRing,
    last_done: u64,
    last_emit: Option<Instant>,
    emitted: u64,
}

impl Progress {
    /// A heartbeat that emits `event` point events while counting
    /// toward `total` items. Defaults: eligibility check every item,
    /// at most one emission per second.
    pub fn new(event: &'static str, total: u64) -> Progress {
        Progress {
            event,
            gauge: None,
            total,
            check_every: 1,
            min_interval: Duration::from_secs(1),
            start: Instant::now(),
            ring: WindowRing::new(&["done"], RING_SAMPLES),
            last_done: 0,
            last_emit: None,
            emitted: 0,
        }
    }

    /// Items between [`due`](Progress::due) turning true — the
    /// amortization knob for the per-iteration cost (minimum 1).
    #[must_use]
    pub fn check_every(mut self, items: u64) -> Progress {
        self.check_every = items.max(1);
        self
    }

    /// Minimum wall-clock spacing between emitted heartbeats.
    /// [`Duration::ZERO`] emits on every [`tick`](Progress::tick).
    #[must_use]
    pub fn min_interval(mut self, interval: Duration) -> Progress {
        self.min_interval = interval;
        self
    }

    /// Also refresh this registry gauge with the smoothed items/second
    /// on every emitted heartbeat.
    #[must_use]
    pub fn gauge(mut self, name: &'static str) -> Progress {
        self.gauge = Some(name);
        self
    }

    /// Whether enough items have passed since the last
    /// [`tick`](Progress::tick) to warrant one — the cheap gate the hot
    /// loop branches on.
    #[inline]
    pub fn due(&self, done: u64) -> bool {
        done.wrapping_sub(self.last_done) >= self.check_every
    }

    /// Accounts progress up to `done` items and, unless inside the
    /// throttle interval, emits one heartbeat. Returns whether a
    /// heartbeat was emitted.
    pub fn tick(&mut self, done: u64) -> bool {
        let elapsed = self.start.elapsed();
        let now_s = elapsed.as_secs();
        self.ring.add(now_s, 0, done.saturating_sub(self.last_done));
        self.last_done = done;
        if let Some(last) = self.last_emit {
            if last.elapsed() < self.min_interval {
                return false;
            }
        }
        self.emit(done, elapsed, now_s);
        self.last_emit = Some(Instant::now());
        self.emitted += 1;
        true
    }

    /// The smoothed items/second: the trailing 10s window rate when a
    /// full second has completed, otherwise the cumulative average.
    pub fn rate(&self) -> f64 {
        let elapsed = self.start.elapsed();
        self.rate_at(self.last_done, elapsed, elapsed.as_secs())
    }

    /// Heartbeats emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn rate_at(&self, done: u64, elapsed: Duration, now_s: u64) -> f64 {
        let windowed = self
            .ring
            .snapshot(now_s)
            .window(RATE_WINDOW_S)
            .map_or(0.0, |w| w.rate(0));
        if windowed > 0.0 {
            return windowed;
        }
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            done as f64 / secs
        } else {
            0.0
        }
    }

    fn emit(&self, done: u64, elapsed: Duration, now_s: u64) {
        let rate = self.rate_at(done, elapsed, now_s);
        if let Some(gauge) = self.gauge {
            if rate > 0.0 {
                gauge_set(gauge, rate);
            }
        }
        if trace_enabled() {
            let eta_s = if rate > 0.0 && self.total > done {
                (self.total - done) as f64 / rate
            } else {
                0.0
            };
            event(
                self.event,
                &[
                    Field::u64("done", done),
                    Field::u64("total", self.total),
                    Field::f64("per_second", rate),
                    Field::f64("eta_s", eta_s),
                    Field::f64("elapsed_s", elapsed.as_secs_f64()),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_gates_on_item_count() {
        let progress = Progress::new("test.progress", 100).check_every(10);
        assert!(!progress.due(9));
        assert!(progress.due(10));
        // After a tick at 10, the next window starts there.
        let mut progress = progress;
        progress.tick(10);
        assert!(!progress.due(19));
        assert!(progress.due(20));
    }

    #[test]
    fn zero_interval_emits_every_tick() {
        let mut progress = Progress::new("test.progress", 100).min_interval(Duration::ZERO);
        assert!(progress.tick(10));
        assert!(progress.tick(20));
        assert_eq!(progress.emitted(), 2);
    }

    #[test]
    fn default_interval_throttles_back_to_back_ticks() {
        let mut progress = Progress::new("test.progress", 100);
        assert!(progress.tick(10), "first tick always emits");
        assert!(!progress.tick(20), "second tick lands inside 1s");
        assert_eq!(progress.emitted(), 1);
    }

    #[test]
    fn rate_falls_back_to_cumulative_before_a_window_completes() {
        let mut progress = Progress::new("test.progress", 1_000_000).min_interval(Duration::ZERO);
        progress.tick(500_000);
        // No full wall-clock second has elapsed, so the windowed rate is
        // empty and the cumulative fallback (done / tiny elapsed) kicks in.
        assert!(progress.rate() > 0.0);
    }

    #[test]
    fn check_every_has_a_floor_of_one() {
        let progress = Progress::new("test.progress", 10).check_every(0);
        assert!(progress.due(1));
    }
}
