//! Parsing JSONL traces back into typed events and span trees.
//!
//! [`crate::trace`] is the write side: spans and events stream out as
//! newline-delimited JSON via [`crate::trace::event_to_jsonl`]. This
//! module is the read side — it parses those lines back into
//! [`ParsedEvent`]s and reconstructs the cross-thread span tree
//! ([`SpanTree`]) that `span_under` parent ids encode, so analysis
//! tools (`repro trace-report`, `repro trace-export`) can attribute
//! time to phases without re-running anything.
//!
//! The crate promises "nothing but `std` underneath", so the JSON
//! reader here is a small hand-rolled parser covering exactly the
//! subset the wire format emits: one object per line, string keys,
//! scalar / object / array values, `\uXXXX` escapes, and integer
//! versus float numbers kept distinct (span ids must not round-trip
//! through `f64`).
//!
//! Ingestion is deliberately lenient: a truncated or corrupt line is
//! counted in [`ParsedTrace::skipped`] rather than aborting the whole
//! parse, because a trace cut off mid-write (capacity overflow, killed
//! process) is still mostly useful.
//!
//! ```
//! use swcc_obs::tree::{parse_trace, SpanTree};
//!
//! let jsonl = "\
//! {\"ev\":\"start\",\"name\":\"batch\",\"span\":1,\"parent\":0,\"seq\":0,\"thread\":1}\n\
//! {\"ev\":\"start\",\"name\":\"solve\",\"span\":2,\"parent\":1,\"seq\":1,\"thread\":2}\n\
//! {\"ev\":\"end\",\"name\":\"solve\",\"span\":2,\"parent\":1,\"seq\":2,\"thread\":2,\"dur_ns\":400}\n\
//! {\"ev\":\"end\",\"name\":\"batch\",\"span\":1,\"parent\":0,\"seq\":3,\"thread\":1,\"dur_ns\":1000}\n";
//! let trace = parse_trace(jsonl);
//! assert_eq!(trace.skipped, 0);
//! let tree = SpanTree::build(&trace.events);
//! let timings = tree.name_timings();
//! assert_eq!(timings["batch"].total_ns, 1000);
//! assert_eq!(timings["batch"].self_ns, 600); // 1000 − 400 in "solve"
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::trace::EventKind;

// --- scalar values ------------------------------------------------------

/// A typed scalar parsed from a trace line's `fields` object.
///
/// The owned mirror of [`crate::trace::FieldValue`]: integers keep
/// their signedness, floats stay floats, and a JSON `null` (how the
/// writer encodes a non-finite float) is preserved as [`Scalar::Null`].
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// JSON `null` (a non-finite float on the wire).
    Null,
}

impl Scalar {
    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Scalar::U64(v) => Some(*v),
            Scalar::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::U64(v) => Some(*v as f64),
            Scalar::I64(v) => Some(*v as f64),
            Scalar::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(v) => Some(v),
            _ => None,
        }
    }
}

// --- parsed events ------------------------------------------------------

/// One trace record parsed back from its JSONL line.
///
/// The owned mirror of [`crate::trace::TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Record kind (`start` / `end` / `point` on the wire).
    pub kind: EventKind,
    /// Event or span name.
    pub name: String,
    /// Id of the span this record belongs to (`0` = none).
    pub span: u64,
    /// Id of the enclosing span (`0` = root).
    pub parent: u64,
    /// Process-wide sequence number.
    pub seq: u64,
    /// Small per-thread ordinal.
    pub thread: u64,
    /// Duration in nanoseconds; present only on `end` records.
    pub dur_ns: Option<u64>,
    /// Structured payload, in wire order.
    pub fields: Vec<(String, Scalar)>,
}

impl ParsedEvent {
    /// Looks up a field value by key.
    pub fn field(&self, key: &str) -> Option<&Scalar> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

/// A whole trace file parsed leniently.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrace {
    /// Events that parsed cleanly, in input order.
    pub events: Vec<ParsedEvent>,
    /// Lines skipped because they were truncated or corrupt. Blank
    /// lines are ignored without counting.
    pub skipped: usize,
}

/// Parses one JSONL trace line into a [`ParsedEvent`].
///
/// # Errors
///
/// Returns [`ParseError`] when the line is not a JSON object, is
/// missing a required key (`ev`, `name`, `span`, `parent`, `seq`,
/// `thread`), or has a value of the wrong type.
pub fn parse_line(line: &str) -> Result<ParsedEvent, ParseError> {
    let value = parse_json(line)?;
    let JsonValue::Object(entries) = value else {
        return err("trace line is not a JSON object");
    };
    let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let required_u64 = |key: &str| -> Result<u64, ParseError> {
        match get(key) {
            Some(JsonValue::Scalar(s)) => s.as_u64().ok_or_else(|| ParseError {
                message: format!("`{key}` is not an unsigned integer"),
            }),
            Some(_) => err(format!("`{key}` is not a number")),
            None => err(format!("missing `{key}`")),
        }
    };
    let kind = match get("ev") {
        Some(JsonValue::Scalar(Scalar::Str(s))) => match s.as_str() {
            "start" => EventKind::SpanStart,
            "end" => EventKind::SpanEnd,
            "point" => EventKind::Point,
            other => return err(format!("unknown event kind `{other}`")),
        },
        _ => return err("missing or non-string `ev`"),
    };
    let name = match get("name") {
        Some(JsonValue::Scalar(Scalar::Str(s))) => s.clone(),
        _ => return err("missing or non-string `name`"),
    };
    let dur_ns = match get("dur_ns") {
        None => None,
        Some(JsonValue::Scalar(s)) => Some(s.as_u64().ok_or_else(|| ParseError {
            message: "`dur_ns` is not an unsigned integer".to_string(),
        })?),
        Some(_) => return err("`dur_ns` is not a number"),
    };
    let fields = match get("fields") {
        None => Vec::new(),
        Some(JsonValue::Object(pairs)) => {
            let mut out = Vec::with_capacity(pairs.len());
            for (key, value) in pairs {
                match value {
                    JsonValue::Scalar(s) => out.push((key.clone(), s.clone())),
                    _ => return err(format!("field `{key}` is not a scalar")),
                }
            }
            out
        }
        Some(_) => return err("`fields` is not an object"),
    };
    Ok(ParsedEvent {
        kind,
        name,
        span: required_u64("span")?,
        parent: required_u64("parent")?,
        seq: required_u64("seq")?,
        thread: required_u64("thread")?,
        dur_ns,
        fields,
    })
}

/// Parses a whole JSONL trace, skipping corrupt lines.
///
/// Blank lines are ignored silently; lines that fail [`parse_line`]
/// are counted in [`ParsedTrace::skipped`]. An empty input yields an
/// empty event list with zero skips.
pub fn parse_trace(text: &str) -> ParsedTrace {
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(event) => events.push(event),
            Err(_) => skipped += 1,
        }
    }
    ParsedTrace { events, skipped }
}

// --- span tree ----------------------------------------------------------

/// One reconstructed span in a [`SpanTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span id from the wire (`span` field of its start/end).
    pub id: u64,
    /// Span name.
    pub name: String,
    /// Thread ordinal the span ran on.
    pub thread: u64,
    /// Parent span id (`0` = root).
    pub parent: u64,
    /// Sequence number of the start record (or of the end record for
    /// an orphan end whose start was lost).
    pub start_seq: u64,
    /// Duration from the end record; `None` while unclosed.
    pub dur_ns: Option<u64>,
    /// `true` once the end record was seen.
    pub closed: bool,
    /// Fields recorded on the start event.
    pub fields: Vec<(String, Scalar)>,
    /// Child node indices into [`SpanTree::nodes`], in start order.
    pub children: Vec<usize>,
}

/// Aggregated timing for all closed spans sharing a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NameTiming {
    /// Closed spans with this name.
    pub count: u64,
    /// Sum of their durations (includes time in child spans).
    pub total_ns: u64,
    /// Sum of their self times (duration minus closed children).
    pub self_ns: u64,
}

/// The span forest reconstructed from a parsed trace.
///
/// Spans are linked by the explicit `parent` ids the writer recorded —
/// including the cross-thread links [`crate::trace::span_under`]
/// creates — so worker-side spans nest under the batch span that
/// spawned them even though they ran on different threads. A span
/// whose parent never appears in the trace becomes a root rather than
/// being dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    index: BTreeMap<u64, usize>,
    unclosed: usize,
}

impl SpanTree {
    /// Builds the tree from parsed events.
    ///
    /// Events are processed in `seq` order regardless of input order. A
    /// `start` creates a node; an `end` closes it (an `end` with no
    /// matching `start` — lost to sink capacity — creates a closed
    /// orphan node so its time is still attributed). Point events do
    /// not create nodes.
    pub fn build(events: &[ParsedEvent]) -> SpanTree {
        let mut order: Vec<&ParsedEvent> = events.iter().collect();
        order.sort_by_key(|e| e.seq);

        let mut tree = SpanTree {
            nodes: Vec::new(),
            roots: Vec::new(),
            index: BTreeMap::new(),
            unclosed: 0,
        };
        for event in order {
            match event.kind {
                EventKind::SpanStart => {
                    if event.span == 0 || tree.index.contains_key(&event.span) {
                        continue; // malformed or duplicate start
                    }
                    tree.insert_node(SpanNode {
                        id: event.span,
                        name: event.name.clone(),
                        thread: event.thread,
                        parent: event.parent,
                        start_seq: event.seq,
                        dur_ns: None,
                        closed: false,
                        fields: event.fields.clone(),
                        children: Vec::new(),
                    });
                }
                EventKind::SpanEnd => {
                    if event.span == 0 {
                        continue;
                    }
                    match tree.index.get(&event.span).copied() {
                        Some(idx) => {
                            let node = &mut tree.nodes[idx];
                            if !node.closed {
                                node.closed = true;
                                node.dur_ns = event.dur_ns;
                            }
                        }
                        None => {
                            // Orphan end: the start fell off the sink.
                            tree.insert_node(SpanNode {
                                id: event.span,
                                name: event.name.clone(),
                                thread: event.thread,
                                parent: event.parent,
                                start_seq: event.seq,
                                dur_ns: event.dur_ns,
                                closed: true,
                                fields: Vec::new(),
                                children: Vec::new(),
                            });
                        }
                    }
                }
                EventKind::Point => {}
            }
        }
        tree.unclosed = tree.nodes.iter().filter(|n| !n.closed).count();
        tree
    }

    fn insert_node(&mut self, node: SpanNode) {
        let idx = self.nodes.len();
        let parent = node.parent;
        self.index.insert(node.id, idx);
        self.nodes.push(node);
        match self.index.get(&parent).copied() {
            Some(parent_idx) if parent != 0 => self.nodes[parent_idx].children.push(idx),
            _ => self.roots.push(idx),
        }
    }

    /// All nodes, in start order.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Indices of root nodes (parent `0` or parent not in the trace).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The node index for a wire span id.
    pub fn node_for_span(&self, span_id: u64) -> Option<usize> {
        self.index.get(&span_id).copied()
    }

    /// Spans that never saw their end record.
    pub fn unclosed(&self) -> usize {
        self.unclosed
    }

    /// Self time of node `idx`: its duration minus the durations of its
    /// closed children, saturating at zero (clock skew between parent
    /// and child reads can make children nominally exceed the parent).
    pub fn self_ns(&self, idx: usize) -> u64 {
        let node = &self.nodes[idx];
        let total = node.dur_ns.unwrap_or(0);
        let in_children: u64 = node
            .children
            .iter()
            .map(|&c| self.nodes[c].dur_ns.unwrap_or(0))
            .fold(0u64, u64::saturating_add);
        total.saturating_sub(in_children)
    }

    /// Per-name total/self aggregation over closed spans.
    pub fn name_timings(&self) -> BTreeMap<String, NameTiming> {
        let mut out: BTreeMap<String, NameTiming> = BTreeMap::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            if !node.closed {
                continue;
            }
            let entry = out.entry(node.name.clone()).or_default();
            entry.count += 1;
            entry.total_ns = entry.total_ns.saturating_add(node.dur_ns.unwrap_or(0));
            entry.self_ns = entry.self_ns.saturating_add(self.self_ns(idx));
        }
        out
    }
}

// --- minimal JSON parser ------------------------------------------------

/// A parsed JSON value (internal; only scalars escape this module, via
/// [`Scalar`]).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Scalar(Scalar),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Result<JsonValue, ParseError> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return err("trailing characters after JSON value");
    }
    Ok(value)
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), ParseError> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Scalar(Scalar::Str(self.string()?))),
            Some(b't') => {
                self.literal("true")?;
                Ok(JsonValue::Scalar(Scalar::Bool(true)))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(JsonValue::Scalar(Scalar::Bool(false)))
            }
            Some(b'n') => {
                self.literal("null")?;
                Ok(JsonValue::Scalar(Scalar::Null))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) | None => err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so byte runs are valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
                        message: "invalid UTF-8 in string".to_string(),
                    })?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| ParseError {
                        message: "truncated escape".to_string(),
                    })?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require a low pair.
                                self.literal("\\u")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return err("invalid low surrogate");
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| ParseError {
                                message: "invalid \\u escape".to_string(),
                            })?);
                        }
                        other => return err(format!("unknown escape `\\{}`", char::from(other))),
                    }
                }
                _ => return err("unterminated string"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| ParseError {
                message: "truncated \\u escape".to_string(),
            })?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
            message: "non-hex \\u escape".to_string(),
        })?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // Number lexemes are pure ASCII.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
            message: "invalid number".to_string(),
        })?;
        let scalar = if is_float {
            Scalar::F64(text.parse::<f64>().map_err(|_| ParseError {
                message: format!("invalid number `{text}`"),
            })?)
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Parse the magnitude separately so `-0` stays an integer.
            let _ = stripped;
            Scalar::I64(text.parse::<i64>().map_err(|_| ParseError {
                message: format!("integer out of range `{text}`"),
            })?)
        } else {
            match text.parse::<u64>() {
                Ok(v) => Scalar::U64(v),
                // u128 durations can exceed u64 in pathological traces;
                // widen to f64 rather than failing the line.
                Err(_) => Scalar::F64(text.parse::<f64>().map_err(|_| ParseError {
                    message: format!("invalid number `{text}`"),
                })?),
            }
        };
        Ok(JsonValue::Scalar(scalar))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{event_to_jsonl, Field, TraceEvent};

    #[allow(clippy::too_many_arguments)]
    fn line(
        kind: EventKind,
        name: &'static str,
        span: u64,
        parent: u64,
        seq: u64,
        thread: u64,
        dur_ns: Option<u128>,
        fields: &[Field],
    ) -> String {
        event_to_jsonl(&TraceEvent {
            kind,
            name,
            span,
            parent,
            seq,
            thread,
            duration_ns: dur_ns,
            sampled: false,
            fields,
        })
    }

    #[test]
    fn round_trips_writer_output() {
        let wire = line(
            EventKind::SpanEnd,
            "t.fmt",
            9,
            3,
            77,
            2,
            Some(1234),
            &[
                Field::u64("u", 42),
                Field::i64("i", -7),
                Field::f64("f", 0.25),
                Field::f64("nan", f64::NAN),
                Field::bool("b", true),
                Field::str("s", "say \"hi\"\n"),
            ],
        );
        let parsed = parse_line(&wire).unwrap();
        assert_eq!(parsed.kind, EventKind::SpanEnd);
        assert_eq!(parsed.name, "t.fmt");
        assert_eq!(
            (parsed.span, parsed.parent, parsed.seq, parsed.thread),
            (9, 3, 77, 2)
        );
        assert_eq!(parsed.dur_ns, Some(1234));
        assert_eq!(parsed.field("u"), Some(&Scalar::U64(42)));
        assert_eq!(parsed.field("i"), Some(&Scalar::I64(-7)));
        assert_eq!(parsed.field("f"), Some(&Scalar::F64(0.25)));
        assert_eq!(parsed.field("nan"), Some(&Scalar::Null));
        assert_eq!(parsed.field("b"), Some(&Scalar::Bool(true)));
        assert_eq!(
            parsed.field("s").and_then(Scalar::as_str),
            Some("say \"hi\"\n")
        );
        assert_eq!(parsed.field("absent"), None);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogate_pairs() {
        let parsed =
            parse_line(r#"{"ev":"point","name":"é😀","span":0,"parent":0,"seq":1,"thread":1}"#)
                .unwrap();
        assert_eq!(parsed.name, "é😀");
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"ev":"start"}"#,
            r#"{"ev":"warp","name":"x","span":1,"parent":0,"seq":0,"thread":1}"#,
            r#"{"ev":"start","name":"x","span":1,"parent":0,"seq":0,"thread":1"#,
            r#"{"ev":"start","name":"x","span":-1,"parent":0,"seq":0,"thread":1}"#,
            r#"{"ev":"start","name":"x","span":1,"parent":0,"seq":0,"thread":1} extra"#,
        ] {
            assert!(parse_line(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn parse_trace_skips_corrupt_lines_and_blank_lines() {
        let text = format!(
            "{}\n\n{}\ngarbage\n{}",
            line(EventKind::SpanStart, "a", 1, 0, 0, 1, None, &[]),
            "{\"ev\":\"start\",\"name\":\"trunc",
            line(EventKind::SpanEnd, "a", 1, 0, 1, 1, Some(10), &[]),
        );
        let trace = parse_trace(&text);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.skipped, 2);
        assert_eq!(parse_trace("").skipped, 0);
        assert!(parse_trace("").events.is_empty());
    }

    #[test]
    fn tree_links_cross_thread_spans_by_parent_id() {
        // Batch span on thread 1; two workers on threads 2 and 3 use
        // span_under-style explicit parenting; one nested solve.
        let text = [
            line(EventKind::SpanStart, "batch", 1, 0, 0, 1, None, &[]),
            line(EventKind::SpanStart, "work", 2, 1, 1, 2, None, &[]),
            line(EventKind::SpanStart, "work", 3, 1, 2, 3, None, &[]),
            line(EventKind::SpanStart, "solve", 4, 2, 3, 2, None, &[]),
            line(EventKind::SpanEnd, "solve", 4, 2, 4, 2, Some(100), &[]),
            line(EventKind::SpanEnd, "work", 2, 1, 5, 2, Some(300), &[]),
            line(EventKind::SpanEnd, "work", 3, 1, 6, 3, Some(500), &[]),
            line(EventKind::SpanEnd, "batch", 1, 0, 7, 1, Some(1000), &[]),
        ]
        .join("\n");
        let trace = parse_trace(&text);
        assert_eq!(trace.skipped, 0);
        let tree = SpanTree::build(&trace.events);
        assert_eq!(tree.nodes().len(), 4);
        assert_eq!(tree.unclosed(), 0);
        assert_eq!(tree.roots().len(), 1);

        let batch = tree.node_for_span(1).unwrap();
        assert_eq!(tree.nodes()[batch].children.len(), 2);
        let w2 = tree.node_for_span(2).unwrap();
        assert_eq!(
            tree.nodes()[w2].children,
            vec![tree.node_for_span(4).unwrap()]
        );

        // Self times: batch 1000 − (300 + 500) = 200; work#2 300 − 100.
        assert_eq!(tree.self_ns(batch), 200);
        assert_eq!(tree.self_ns(w2), 200);

        let timings = tree.name_timings();
        assert_eq!(timings["work"].count, 2);
        assert_eq!(timings["work"].total_ns, 800);
        assert_eq!(timings["work"].self_ns, 700);
        assert_eq!(timings["batch"].self_ns, 200);
        assert_eq!(timings["solve"].self_ns, 100);
    }

    #[test]
    fn out_of_order_input_and_orphans_are_handled() {
        // End before start in file order (but seq orders them), plus an
        // orphan end whose start fell off the sink, plus an unclosed
        // span and a span with an unknown parent.
        let text = [
            line(EventKind::SpanEnd, "a", 1, 0, 3, 1, Some(50), &[]),
            line(EventKind::SpanStart, "a", 1, 0, 0, 1, None, &[]),
            line(EventKind::SpanEnd, "orphan", 7, 1, 4, 1, Some(5), &[]),
            line(EventKind::SpanStart, "unclosed", 8, 1, 5, 1, None, &[]),
            line(EventKind::SpanStart, "adrift", 9, 999, 6, 1, None, &[]),
            line(EventKind::SpanEnd, "adrift", 9, 999, 7, 1, Some(2), &[]),
        ]
        .join("\n");
        let trace = parse_trace(&text);
        let tree = SpanTree::build(&trace.events);
        assert_eq!(tree.unclosed(), 1);
        // `adrift` has an unknown parent → becomes a root.
        assert_eq!(tree.roots().len(), 2);
        let a = tree.node_for_span(1).unwrap();
        assert!(tree.nodes()[a].closed);
        assert_eq!(tree.nodes()[a].dur_ns, Some(50));
        let orphan = tree.node_for_span(7).unwrap();
        assert!(tree.nodes()[orphan].closed);
        // Orphan parents under `a` because span 1 exists.
        assert!(tree.nodes()[a].children.contains(&orphan));
        // Unclosed spans are excluded from name timings.
        assert!(!tree.name_timings().contains_key("unclosed"));
    }

    #[test]
    fn children_exceeding_parent_saturate_self_time() {
        let text = [
            line(EventKind::SpanStart, "p", 1, 0, 0, 1, None, &[]),
            line(EventKind::SpanStart, "c", 2, 1, 1, 1, None, &[]),
            line(EventKind::SpanEnd, "c", 2, 1, 2, 1, Some(150), &[]),
            line(EventKind::SpanEnd, "p", 1, 0, 3, 1, Some(100), &[]),
        ]
        .join("\n");
        let tree = SpanTree::build(&parse_trace(&text).events);
        assert_eq!(tree.self_ns(tree.node_for_span(1).unwrap()), 0);
    }
}
