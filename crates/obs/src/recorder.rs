//! The [`Recorder`] trait, the process-global recorder slot, and
//! thread-local capture spans.
//!
//! Instrumented code calls the free functions [`crate::counter_add`],
//! [`crate::gauge_set`], and [`crate::observe`]. Those dispatch to:
//!
//! * the **installed recorder**, if any — typically a
//!   [`crate::MetricsRegistry`] installed once at startup via
//!   [`install`], accumulating process-wide totals; and
//! * the **active capture** on the calling thread, if any — a
//!   lightweight thread-local sink opened by [`capture`], which the
//!   experiment runner uses to attribute solver work to the single
//!   experiment running on that worker thread.
//!
//! When neither is active (the default), the dispatch functions return
//! after two relaxed atomic loads — the disabled path costs about a
//! nanosecond and allocates nothing, so instrumentation can live inside
//! solver hot paths without shifting benchmark results.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::registry::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};

/// A sink for metric events, keyed by static metric names.
///
/// [`crate::MetricsRegistry`] is the canonical implementation;
/// [`NoopRecorder`] discards everything (and is what the dispatch
/// functions behave like when nothing is installed).
pub trait Recorder: Sync {
    /// Adds `by` to the named counter.
    fn counter_add(&self, name: &'static str, by: u64);
    /// Sets the named gauge.
    fn gauge_set(&self, name: &'static str, value: f64);
    /// Records one observation into the named histogram.
    fn observe(&self, name: &'static str, value: f64);
}

/// A recorder that drops every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _name: &'static str, _by: u64) {}
    fn gauge_set(&self, _name: &'static str, _value: f64) {}
    fn observe(&self, _name: &'static str, _value: f64) {}
}

/// Returned by [`install`] when a recorder is already installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstallError;

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a metrics recorder is already installed")
    }
}

impl std::error::Error for InstallError {}

static INSTALLED: OnceLock<&'static dyn Recorder> = OnceLock::new();
static HAS_RECORDER: AtomicBool = AtomicBool::new(false);
static CAPTURES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static ACTIVE_SINK: RefCell<Option<LocalSink>> = const { RefCell::new(None) };
}

/// Installs the process-wide recorder. Can succeed at most once.
///
/// # Errors
///
/// Returns [`InstallError`] if a recorder was already installed.
pub fn install(recorder: &'static dyn Recorder) -> Result<(), InstallError> {
    INSTALLED.set(recorder).map_err(|_| InstallError)?;
    HAS_RECORDER.store(true, Ordering::Release);
    Ok(())
}

/// The installed recorder, if any.
pub fn installed() -> Option<&'static dyn Recorder> {
    INSTALLED.get().copied()
}

/// `true` if any sink (installed recorder or an active capture anywhere
/// in the process) might receive events.
///
/// Instrumentation sites with several record calls can hoist this single
/// check in front of the block; the individual dispatch functions also
/// check it, so the guard is an optimization, never a requirement.
#[inline]
pub fn enabled() -> bool {
    HAS_RECORDER.load(Ordering::Relaxed) || CAPTURES.load(Ordering::Relaxed) > 0
}

#[inline]
fn dispatch(global: impl Fn(&dyn Recorder), local: impl FnOnce(&mut LocalSink)) {
    if let Some(recorder) = installed() {
        global(recorder);
    }
    if CAPTURES.load(Ordering::Relaxed) > 0 {
        ACTIVE_SINK.with(|cell| {
            if let Some(sink) = cell.borrow_mut().as_mut() {
                local(sink);
            }
        });
    }
}

/// Adds `by` to the named counter on every active sink.
#[inline]
pub fn counter_add(name: &'static str, by: u64) {
    if !enabled() {
        return;
    }
    dispatch(
        |r| r.counter_add(name, by),
        |sink| *sink.counters.entry(name).or_insert(0) += by,
    );
}

/// Sets the named gauge on every active sink.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    dispatch(
        |r| r.gauge_set(name, value),
        |sink| {
            sink.gauges.insert(name, value);
        },
    );
}

/// Records one histogram observation on every active sink.
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    dispatch(
        |r| r.observe(name, value),
        |sink| {
            let (count, sum) = sink.histograms.entry(name).or_insert((0, 0.0));
            *count += 1;
            if value.is_finite() {
                *sum += value;
            }
        },
    );
}

/// The thread-local sink behind [`capture`]. Histograms keep only count
/// and sum — captures answer "how much work did this span do", not
/// distribution questions.
#[derive(Debug, Default)]
struct LocalSink {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, (u64, f64)>,
}

impl LocalSink {
    fn into_snapshot(self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .into_iter()
                .map(|(name, value)| CounterSnapshot {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .into_iter()
                .map(|(name, value)| GaugeSnapshot {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            histograms: self
                .histograms
                .into_iter()
                .map(|(name, (count, sum))| HistogramSnapshot {
                    name: name.to_string(),
                    count,
                    sum,
                    bounds: Vec::new(),
                    buckets: Vec::new(),
                })
                .collect(),
        }
    }
}

/// Restores the previous thread-local sink (and the global capture
/// count) even if the captured closure panics.
struct CaptureGuard {
    previous: Option<Option<LocalSink>>,
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        CAPTURES.fetch_sub(1, Ordering::Relaxed);
        if let Some(previous) = self.previous.take() {
            ACTIVE_SINK.with(|cell| *cell.borrow_mut() = previous);
        }
    }
}

/// Runs `f` with a fresh thread-local metrics sink and returns its
/// result together with everything the current thread recorded during
/// the call.
///
/// Capture composes with an installed recorder — events flow to both —
/// and works with no recorder installed at all. Other threads are
/// unaffected. A nested capture shadows the outer one for its duration:
/// the inner span's events are not double-counted into the outer span.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, MetricsSnapshot) {
    let previous = ACTIVE_SINK.with(|cell| cell.borrow_mut().replace(LocalSink::default()));
    CAPTURES.fetch_add(1, Ordering::Relaxed);
    let guard = CaptureGuard {
        previous: Some(previous),
    };
    let out = f();
    let snapshot = ACTIVE_SINK
        .with(|cell| cell.borrow_mut().take())
        .map(LocalSink::into_snapshot)
        .unwrap_or_default();
    drop(guard);
    (out, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_sees_only_this_thread() {
        let ((), snap) = capture(|| {
            counter_add("t.count", 2);
            counter_add("t.count", 3);
            gauge_set("t.gauge", 9.0);
            observe("t.hist", 4.0);
            observe("t.hist", 6.0);
            std::thread::scope(|scope| {
                scope.spawn(|| counter_add("t.count", 100));
            });
        });
        assert_eq!(snap.counter("t.count"), Some(5), "other threads excluded");
        assert_eq!(snap.gauge("t.gauge"), Some(9.0));
        let h = snap.histogram("t.hist").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum - 10.0).abs() < 1e-12);
    }

    #[test]
    fn nested_capture_shadows_outer() {
        let ((), outer) = capture(|| {
            counter_add("n.count", 1);
            let ((), inner) = capture(|| counter_add("n.count", 10));
            assert_eq!(inner.counter("n.count"), Some(10));
            counter_add("n.count", 2);
        });
        assert_eq!(outer.counter("n.count"), Some(3));
    }

    #[test]
    fn capture_survives_panics() {
        let result = std::panic::catch_unwind(|| {
            capture(|| {
                counter_add("p.count", 1);
                panic!("boom");
            })
        });
        assert!(result.is_err());
        // The sink must have been torn down: new records go nowhere.
        let ((), snap) = capture(|| counter_add("p.count", 4));
        assert_eq!(snap.counter("p.count"), Some(4));
    }

    #[test]
    fn disabled_dispatch_is_a_no_op() {
        // No capture active on this thread: nothing to assert beyond
        // "does not panic", but exercise every entry point.
        counter_add("nobody.listening", 1);
        gauge_set("nobody.listening", 1.0);
        observe("nobody.listening", 1.0);
    }

    #[test]
    fn install_succeeds_once() {
        static NOOP: NoopRecorder = NoopRecorder;
        // Another test (or this one, re-run) may have installed already;
        // all that matters is that a second install fails cleanly.
        let first = install(&NOOP);
        let second = install(&NOOP);
        assert!(second.is_err() || first.is_ok());
        assert!(install(&NOOP).is_err());
        assert!(installed().is_some());
        assert!(enabled());
    }
}
