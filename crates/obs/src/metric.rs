//! The metric primitives: [`Counter`], [`Gauge`], and fixed-bucket
//! [`Histogram`], all built on `std` atomics.
//!
//! Every operation on these types is lock-free: a counter increment is
//! one `fetch_add`, a gauge set is one `store`, and a histogram
//! observation is two `fetch_add`s plus a compare-and-swap loop for the
//! running sum. They are safe to hammer from any number of threads —
//! the parallel experiment runner records into them without any
//! coordination beyond the atomics themselves.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero (usable in `static` items).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `by` to the counter.
    #[inline]
    pub fn add(&self, by: u64) {
        self.0.fetch_add(by, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement (worker counts, queue
/// depths, configuration values).
///
/// The value is an `f64` stored as its bit pattern in an `AtomicU64`, so
/// reads and writes are single atomic operations.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// Creates a gauge at `0.0` (usable in `static` items).
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Resets the gauge to `0.0`.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

/// A fixed-bucket histogram of `f64` observations.
///
/// Bucket boundaries are chosen at construction and never change, so
/// recording is allocation-free: an observation `v` lands in the first
/// bucket whose upper bound is `>= v`, with one implicit overflow bucket
/// above the largest bound. The running count and sum are tracked so
/// averages survive even when the bucket resolution is coarse.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// Non-finite bounds are dropped; the rest are sorted and
    /// deduplicated. An extra overflow bucket always exists above the
    /// largest bound, so an empty `bounds` slice still yields a working
    /// (single-bucket) histogram.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    /// Records one observation.
    ///
    /// `NaN` observations are counted into the overflow bucket and
    /// excluded from the sum so they cannot poison the average.
    #[inline]
    pub fn observe(&self, value: f64) {
        let index = if value.is_nan() {
            self.bounds.len()
        } else {
            self.bounds.partition_point(|b| *b < value)
        };
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            // Lock-free f64 accumulation: CAS the bit pattern.
            let mut current = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + value).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => current = seen,
                }
            }
        }
    }

    /// The bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts; one longer than [`bounds`](Self::bounds).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of the finite observations, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Resets every bucket, the count, and the sum to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0_f64.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.set(-7.0);
        assert_eq!(g.get(), -7.0);
        g.reset();
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        // 0.5 and 1.0 land in the <=1 bucket (inclusive upper bound).
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 556.5).abs() < 1e-12);
        assert!((h.mean() - 556.5 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sanitizes_bounds() {
        let h = Histogram::new(&[10.0, f64::NAN, 1.0, 10.0, f64::INFINITY]);
        assert_eq!(h.bounds(), &[1.0, 10.0]);
        assert_eq!(h.bucket_counts().len(), 3);
    }

    #[test]
    fn histogram_handles_nan_observations() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(0.5);
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 0.5).abs() < 1e-12, "NaN must not poison sum");
        assert_eq!(h.bucket_counts(), vec![1, 1]);
    }

    #[test]
    fn empty_bounds_still_work() {
        let h = Histogram::new(&[]);
        h.observe(42.0);
        assert_eq!(h.bucket_counts(), vec![1]);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let c = Counter::new();
        let h = Histogram::new(&[50.0]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..1000 {
                        c.incr();
                        h.observe(f64::from(i % 100));
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        let expected: f64 = 8.0 * 10.0 * (0..100).map(f64::from).sum::<f64>();
        assert!((h.sum() - expected).abs() < 1e-6);
    }
}
