//! The [`MetricsRegistry`]: a fixed set of named metrics shared by every
//! thread, plus point-in-time [`MetricsSnapshot`]s of its contents.
//!
//! Registration is a build-time step ([`RegistryBuilder`]): once
//! [`RegistryBuilder::build`] runs, the name tables are immutable, so
//! the record path is a binary search over a read-only slice followed by
//! one atomic update — no locks anywhere. Names that were never
//! registered are counted into the [`UNREGISTERED`] counter instead of
//! being recorded, so a typo in an instrumentation site shows up in the
//! snapshot rather than silently vanishing.

use crate::metric::{Counter, Gauge, Histogram};
use crate::recorder::Recorder;

/// Counter name under which the registry reports drops of metrics that
/// were recorded but never registered.
pub const UNREGISTERED: &str = "obs.unregistered";

/// Collects metric definitions before freezing them into a
/// [`MetricsRegistry`].
///
/// ```
/// use swcc_obs::RegistryBuilder;
///
/// let registry = RegistryBuilder::new()
///     .counter("demo.events")
///     .gauge("demo.workers")
///     .histogram("demo.latency_ms", &[1.0, 10.0, 100.0])
///     .build();
/// registry.counter_value("demo.events");
/// ```
#[derive(Debug, Default)]
pub struct RegistryBuilder {
    counters: Vec<&'static str>,
    gauges: Vec<&'static str>,
    histograms: Vec<(&'static str, Vec<f64>)>,
}

impl RegistryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        RegistryBuilder::default()
    }

    /// Registers a counter.
    #[must_use]
    pub fn counter(mut self, name: &'static str) -> Self {
        self.counters.push(name);
        self
    }

    /// Registers a gauge.
    #[must_use]
    pub fn gauge(mut self, name: &'static str) -> Self {
        self.gauges.push(name);
        self
    }

    /// Registers a histogram with the given bucket upper bounds (see
    /// [`Histogram::new`] for how bounds are sanitized).
    #[must_use]
    pub fn histogram(mut self, name: &'static str, bounds: &[f64]) -> Self {
        self.histograms.push((name, bounds.to_vec()));
        self
    }

    /// Freezes the definitions into a registry.
    ///
    /// Duplicate names keep their first registration.
    pub fn build(self) -> MetricsRegistry {
        fn dedup_sorted<T>(mut items: Vec<(&'static str, T)>) -> Vec<(&'static str, T)> {
            items.sort_by_key(|(name, _)| *name);
            items.dedup_by_key(|(name, _)| *name);
            items
        }
        let counters = dedup_sorted(
            self.counters
                .into_iter()
                .map(|n| (n, Counter::new()))
                .collect(),
        );
        let gauges = dedup_sorted(self.gauges.into_iter().map(|n| (n, Gauge::new())).collect());
        let histograms = dedup_sorted(
            self.histograms
                .into_iter()
                .map(|(n, bounds)| (n, Histogram::new(&bounds)))
                .collect(),
        );
        MetricsRegistry {
            counters,
            gauges,
            histograms,
            unregistered: Counter::new(),
        }
    }
}

/// A thread-safe collection of pre-registered metrics.
///
/// Implements [`Recorder`], so it can be installed as the process-wide
/// sink via [`crate::install`]. All recording methods take `&self` and
/// touch only atomics.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, Counter)>,
    gauges: Vec<(&'static str, Gauge)>,
    histograms: Vec<(&'static str, Histogram)>,
    unregistered: Counter,
}

impl MetricsRegistry {
    fn find<'a, T>(table: &'a [(&'static str, T)], name: &str) -> Option<&'a T> {
        table
            .binary_search_by(|(n, _)| (*n).cmp(name))
            .ok()
            .map(|i| &table[i].1)
    }

    /// The current value of a registered counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        Self::find(&self.counters, name).map(Counter::get)
    }

    /// The current value of a registered gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        Self::find(&self.gauges, name).map(Gauge::get)
    }

    /// A registered histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        Self::find(&self.histograms, name)
    }

    /// How many records targeted names that were never registered.
    pub fn unregistered(&self) -> u64 {
        self.unregistered.get()
    }

    /// Resets every metric (and the unregistered-drop counter) to zero.
    pub fn reset(&self) {
        for (_, c) in &self.counters {
            c.reset();
        }
        for (_, g) in &self.gauges {
            g.reset();
        }
        for (_, h) in &self.histograms {
            h.reset();
        }
        self.unregistered.reset();
    }

    /// Captures a point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: (*name).to_string(),
                value: c.get(),
            })
            .collect();
        counters.push(CounterSnapshot {
            name: UNREGISTERED.to_string(),
            value: self.unregistered.get(),
        });
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: (*name).to_string(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: (*name).to_string(),
                count: h.count(),
                sum: h.sum(),
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl Recorder for MetricsRegistry {
    fn counter_add(&self, name: &'static str, by: u64) {
        match Self::find(&self.counters, name) {
            Some(c) => c.add(by),
            None => self.unregistered.incr(),
        }
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        match Self::find(&self.gauges, name) {
            Some(g) => g.set(value),
            None => self.unregistered.incr(),
        }
    }

    fn observe(&self, name: &'static str, value: f64) {
        match Self::find(&self.histograms, name) {
            Some(h) => h.observe(value),
            None => self.unregistered.incr(),
        }
    }
}

/// A frozen copy of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// A frozen copy of one gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// A frozen copy of one histogram.
///
/// Snapshots taken from a thread-local capture ([`crate::capture`]) have
/// empty `bounds`/`buckets` (only `count` and `sum` are tracked there);
/// registry snapshots carry the full bucket layout.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of finite observations.
    pub sum: f64,
    /// Bucket upper bounds (empty for capture snapshots).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, one longer than `bounds` (the overflow bucket).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of the observations, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A point-in-time copy of a set of metrics, detached from any atomics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks a counter value up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks a gauge value up by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks a histogram up by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// `true` if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|c| c.value == 0)
            && self.gauges.iter().all(|g| g.value == 0.0) // swcc-lint: allow(float-eq) — a -0.0 gauge counts as empty for snapshot pruning
            && self.histograms.iter().all(|h| h.count == 0)
    }

    /// Renders a human-readable multi-line summary (the body of
    /// `repro --metrics`).
    pub fn render(&self) -> String {
        let mut out = String::from("metrics:\n");
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for c in &self.counters {
                out.push_str(&format!("    {:<36} {}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("  gauges:\n");
            for g in &self.gauges {
                out.push_str(&format!("    {:<36} {}\n", g.name, g.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms:\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "    {:<36} count={} sum={:.3} mean={:.3}\n",
                    h.name,
                    h.count,
                    h.sum,
                    h.mean()
                ));
                if !h.bounds.is_empty() && h.count > 0 {
                    let cells: Vec<String> = h
                        .bounds
                        .iter()
                        .zip(&h.buckets)
                        .map(|(le, n)| format!("le{le}:{n}"))
                        .collect();
                    let overflow = h.buckets.last().copied().unwrap_or(0);
                    out.push_str(&format!(
                        "      buckets: {} inf:{overflow}\n",
                        cells.join(" ")
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MetricsRegistry {
        RegistryBuilder::new()
            .counter("a.count")
            .counter("b.count")
            .gauge("a.gauge")
            .histogram("a.hist", &[1.0, 10.0])
            .build()
    }

    #[test]
    fn records_into_registered_metrics() {
        let r = registry();
        r.counter_add("a.count", 3);
        r.counter_add("b.count", 1);
        r.gauge_set("a.gauge", 4.5);
        r.observe("a.hist", 5.0);
        assert_eq!(r.counter_value("a.count"), Some(3));
        assert_eq!(r.counter_value("b.count"), Some(1));
        assert_eq!(r.gauge_value("a.gauge"), Some(4.5));
        assert_eq!(r.histogram("a.hist").unwrap().count(), 1);
        assert_eq!(r.unregistered(), 0);
    }

    #[test]
    fn unknown_names_count_as_unregistered() {
        let r = registry();
        r.counter_add("typo.count", 1);
        r.observe("typo.hist", 1.0);
        r.gauge_set("typo.gauge", 1.0);
        assert_eq!(r.unregistered(), 3);
        let snap = r.snapshot();
        assert_eq!(snap.counter(UNREGISTERED), Some(3));
    }

    #[test]
    fn snapshot_and_reset_round_trip() {
        let r = registry();
        r.counter_add("a.count", 7);
        r.observe("a.hist", 0.5);
        r.observe("a.hist", 100.0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.count"), Some(7));
        let h = snap.histogram("a.hist").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets, vec![1, 0, 1]);
        assert!((h.mean() - 50.25).abs() < 1e-12);
        assert!(!snap.is_empty());
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn duplicate_registrations_collapse() {
        let r = RegistryBuilder::new().counter("dup").counter("dup").build();
        r.counter_add("dup", 2);
        assert_eq!(r.counter_value("dup"), Some(2));
        assert_eq!(r.snapshot().counters.len(), 2, "dup + obs.unregistered");
    }

    #[test]
    fn snapshot_orders_every_section_by_name() {
        let r = RegistryBuilder::new()
            .counter("z.count")
            .counter("a.count")
            .gauge("z.gauge")
            .gauge("a.gauge")
            .histogram("z.hist", &[1.0])
            .histogram("a.hist", &[1.0])
            .build();
        let snap = r.snapshot();
        for section in [
            snap.counters.iter().map(|c| &c.name).collect::<Vec<_>>(),
            snap.gauges.iter().map(|g| &g.name).collect::<Vec<_>>(),
            snap.histograms.iter().map(|h| &h.name).collect::<Vec<_>>(),
        ] {
            let mut sorted = section.clone();
            sorted.sort();
            assert_eq!(section, sorted, "snapshot sections must be name-sorted");
        }
    }

    #[test]
    fn render_mentions_every_metric() {
        let r = registry();
        r.counter_add("a.count", 1);
        r.observe("a.hist", 2.0);
        let text = r.snapshot().render();
        assert!(text.contains("a.count"));
        assert!(text.contains("a.gauge"));
        assert!(text.contains("a.hist"));
        assert!(text.contains("buckets:"));
    }
}
