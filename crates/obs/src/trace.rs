//! Structured tracing: spans, events, and a pluggable [`EventSink`].
//!
//! The metrics layer ([`crate::counter_add`] and friends) answers "how
//! much work happened"; this module answers "in what order, nested how,
//! and with what intermediate values". It is the machinery behind
//! `repro --trace out.jsonl` and the `trace-report` diagnostics:
//! per-phase timing breakdowns, solver convergence trajectories, and
//! model-vs-simulation deltas all ride on these events.
//!
//! Three pieces:
//!
//! * **Spans** ([`span`], [`span_under`], [`Span`]) — nested, timed
//!   scopes (experiment → sweep → solve). A span emits a `start` event
//!   when opened and an `end` event (with its duration) when dropped;
//!   point events recorded while it is open carry its id as their
//!   parent, so a consumer can rebuild the tree.
//! * **Events** ([`event`], [`event_sampled`]) — single structured
//!   records with typed [`Field`]s. `event_sampled` marks
//!   high-frequency instrumentation (per-iteration solver residuals,
//!   per-access simulator arbitration) that sinks may downsample.
//! * **Sinks** ([`EventSink`], installed once via [`install_sink`]) —
//!   where events go. [`JsonlSink`] collects newline-delimited JSON
//!   into a lock-free slab for writing out at process exit.
//!
//! With no sink installed every entry point returns after **one relaxed
//! atomic load** — the same "observation is free when off" budget as
//! the metric dispatch — so instrumentation lives permanently inside
//! solver and simulator hot paths without moving benchmarks.
//!
//! ```
//! use swcc_obs::trace::{Field, JsonlSink};
//!
//! let sink = JsonlSink::with_capacity(16);
//! // (Normally installed process-wide with swcc_obs::trace::install_sink.)
//! # let _ = &sink;
//! let fields = [Field::u64("points", 64), Field::f64("service", 0.37)];
//! # let _ = fields;
//! ```

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A typed value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values serialize as JSON `null`.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A static string (metric-style labels).
    Str(&'static str),
    /// An owned string (labels composed at runtime).
    Text(String),
}

/// One `key: value` pair on a trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name; stable, snake_case, unique within the event.
    pub key: &'static str,
    /// Field value.
    pub value: FieldValue,
}

impl Field {
    /// An unsigned-integer field.
    pub fn u64(key: &'static str, value: u64) -> Field {
        Field {
            key,
            value: FieldValue::U64(value),
        }
    }

    /// A signed-integer field.
    pub fn i64(key: &'static str, value: i64) -> Field {
        Field {
            key,
            value: FieldValue::I64(value),
        }
    }

    /// A float field.
    pub fn f64(key: &'static str, value: f64) -> Field {
        Field {
            key,
            value: FieldValue::F64(value),
        }
    }

    /// A boolean field.
    pub fn bool(key: &'static str, value: bool) -> Field {
        Field {
            key,
            value: FieldValue::Bool(value),
        }
    }

    /// A static-string field.
    pub fn str(key: &'static str, value: &'static str) -> Field {
        Field {
            key,
            value: FieldValue::Str(value),
        }
    }

    /// An owned-string field.
    pub fn text(key: &'static str, value: String) -> Field {
        Field {
            key,
            value: FieldValue::Text(value),
        }
    }
}

/// What kind of record a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed; `duration_ns` is set.
    SpanEnd,
    /// A point-in-time record inside (or outside) a span.
    Point,
}

impl EventKind {
    /// The wire name used in the JSONL `ev` field.
    pub fn wire_name(self) -> &'static str {
        match self {
            EventKind::SpanStart => "start",
            EventKind::SpanEnd => "end",
            EventKind::Point => "point",
        }
    }
}

/// One structured record handed to the installed [`EventSink`].
///
/// Borrowed, not owned: sinks serialize or copy what they need and must
/// not retain the reference.
#[derive(Debug)]
pub struct TraceEvent<'a> {
    /// Record kind.
    pub kind: EventKind,
    /// Event or span name (`"patel.solve"`, `"runner.experiment"`, ...).
    pub name: &'static str,
    /// Id of the span this record belongs to (`0` = none). For
    /// `SpanStart`/`SpanEnd` this is the span's own id.
    pub span: u64,
    /// Id of the enclosing span (`0` = root).
    pub parent: u64,
    /// Process-wide sequence number; totally orders events across
    /// threads.
    pub seq: u64,
    /// Small per-thread ordinal (not an OS thread id).
    pub thread: u64,
    /// Wall-clock duration, set only on `SpanEnd`.
    pub duration_ns: Option<u128>,
    /// `true` for high-frequency events that sinks may downsample.
    pub sampled: bool,
    /// Structured payload.
    pub fields: &'a [Field],
}

/// A sink for trace events. Implementations must tolerate concurrent
/// calls from many threads.
pub trait EventSink: Sync {
    /// Records one event. Called on the instrumented code's thread, so
    /// implementations should stay cheap and must not block on I/O.
    fn record(&self, event: &TraceEvent<'_>);
}

/// Returned by [`install_sink`] when a sink is already installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkInstallError;

impl std::fmt::Display for SinkInstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a trace event sink is already installed")
    }
}

impl std::error::Error for SinkInstallError {}

static SINK: OnceLock<&'static dyn EventSink> = OnceLock::new();
static HAS_SINK: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    static THREAD_ORD: Cell<u64> = const { Cell::new(0) };
}

/// Installs the process-wide event sink. Can succeed at most once.
///
/// # Errors
///
/// Returns [`SinkInstallError`] if a sink was already installed.
pub fn install_sink(sink: &'static dyn EventSink) -> Result<(), SinkInstallError> {
    SINK.set(sink).map_err(|_| SinkInstallError)?;
    HAS_SINK.store(true, Ordering::Release);
    Ok(())
}

/// `true` if a sink is installed and events will be recorded.
///
/// One relaxed atomic load: instrumentation sites that build fields or
/// spans hoist this check so the disabled path costs nothing else.
#[inline]
pub fn trace_enabled() -> bool {
    HAS_SINK.load(Ordering::Relaxed)
}

/// The installed sink, if any.
pub fn installed_sink() -> Option<&'static dyn EventSink> {
    SINK.get().copied()
}

fn thread_ordinal() -> u64 {
    THREAD_ORD.with(|cell| {
        let mut ord = cell.get();
        if ord == 0 {
            ord = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
            cell.set(ord);
        }
        ord
    })
}

/// The id of the span currently open on this thread (`0` = none).
///
/// The experiment runner forwards this across its worker-thread
/// boundary via [`span_under`], so worker-side spans nest correctly
/// under the batch span opened on the spawning thread.
pub fn current_span() -> u64 {
    CURRENT_SPAN.with(Cell::get)
}

fn emit(
    kind: EventKind,
    name: &'static str,
    span: u64,
    parent: u64,
    duration_ns: Option<u128>,
    sampled: bool,
    fields: &[Field],
) {
    if let Some(sink) = installed_sink() {
        sink.record(&TraceEvent {
            kind,
            name,
            span,
            parent,
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
            thread: thread_ordinal(),
            duration_ns,
            sampled,
            fields,
        });
    }
}

/// Records a point event under the current span.
#[inline]
pub fn event(name: &'static str, fields: &[Field]) {
    if !trace_enabled() {
        return;
    }
    emit(
        EventKind::Point,
        name,
        current_span(),
        current_span(),
        None,
        false,
        fields,
    );
}

/// Records a high-frequency point event that sinks may downsample (see
/// [`JsonlSink::with_sampling`]).
#[inline]
pub fn event_sampled(name: &'static str, fields: &[Field]) {
    if !trace_enabled() {
        return;
    }
    emit(
        EventKind::Point,
        name,
        current_span(),
        current_span(),
        None,
        true,
        fields,
    );
}

/// An open trace span. Emits a `SpanEnd` event with its wall-clock
/// duration when dropped and restores the previous current span.
///
/// Inert (no allocation, no clock read, no sink calls) when no sink is
/// installed.
#[derive(Debug)]
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    id: u64,
    name: &'static str,
    parent: u64,
    /// The span that was current on this thread when this one opened;
    /// restored on drop. Distinct from `parent` for [`span_under`].
    previous: u64,
    start: Option<Instant>,
}

impl Span {
    /// This span's id (`0` if tracing is disabled), for explicit
    /// parenting across threads via [`span_under`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// `true` if this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        CURRENT_SPAN.with(|cell| cell.set(self.previous));
        emit(
            EventKind::SpanEnd,
            self.name,
            self.id,
            self.parent,
            Some(start.elapsed().as_nanos()),
            false,
            &[],
        );
    }
}

fn open_span(name: &'static str, parent: u64, fields: &[Field]) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let previous = CURRENT_SPAN.with(|cell| cell.replace(id));
    emit(EventKind::SpanStart, name, id, parent, None, false, fields);
    Span {
        id,
        name,
        parent,
        previous,
        start: Some(Instant::now()),
    }
}

const INERT_SPAN: fn(&'static str) -> Span = |name| Span {
    id: 0,
    name,
    parent: 0,
    previous: 0,
    start: None,
};

/// Opens a span nested under the current span of this thread.
///
/// `fields` are recorded on the `start` event; the `end` event carries
/// the duration.
pub fn span(name: &'static str, fields: &[Field]) -> Span {
    if !trace_enabled() {
        return INERT_SPAN(name);
    }
    open_span(name, current_span(), fields)
}

/// Opens a span under an explicit parent span id.
///
/// This is the cross-thread form: a worker thread has no thread-local
/// link to the span opened on the thread that spawned it, so the
/// spawner passes `parent_span.id()` into the closure and the worker
/// opens its spans under it. A `parent` of `0` makes a root span.
pub fn span_under(name: &'static str, parent: u64, fields: &[Field]) -> Span {
    if !trace_enabled() {
        return INERT_SPAN(name);
    }
    open_span(name, parent, fields)
}

// --- JSONL sink --------------------------------------------------------

/// Appends a JSON-escaped copy of `s` to `out`.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Serializes one event to a single JSONL line (no trailing newline).
///
/// Wire format, one object per line:
///
/// ```json
/// {"ev":"point","name":"patel.iteration","span":7,"parent":7,
///  "seq":91,"thread":2,"fields":{"iter":3,"residual":1.2e-9}}
/// ```
///
/// `dur_ns` is present only on `end` records. Field values keep their
/// JSON types; non-finite floats become `null`.
pub fn event_to_jsonl(event: &TraceEvent<'_>) -> String {
    let mut line = String::with_capacity(96 + event.fields.len() * 24);
    line.push_str("{\"ev\":\"");
    line.push_str(event.kind.wire_name());
    line.push_str("\",\"name\":");
    push_json_string(&mut line, event.name);
    let _ = write!(
        line,
        ",\"span\":{},\"parent\":{},\"seq\":{},\"thread\":{}",
        event.span, event.parent, event.seq, event.thread
    );
    if let Some(dur) = event.duration_ns {
        let _ = write!(line, ",\"dur_ns\":{dur}");
    }
    if !event.fields.is_empty() {
        line.push_str(",\"fields\":{");
        for (i, field) in event.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            push_json_string(&mut line, field.key);
            line.push(':');
            match &field.value {
                FieldValue::U64(v) => {
                    let _ = write!(line, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(line, "{v}");
                }
                FieldValue::F64(v) => push_json_f64(&mut line, *v),
                FieldValue::Bool(v) => {
                    let _ = write!(line, "{v}");
                }
                FieldValue::Str(v) => push_json_string(&mut line, v),
                FieldValue::Text(v) => push_json_string(&mut line, v),
            }
        }
        line.push('}');
    }
    line.push('}');
    line
}

/// A lock-free, bounded, sampled collector of JSONL trace lines.
///
/// The record path is wait-free with respect to other recorders: each
/// event claims a slot with one `fetch_add` and writes its
/// pre-formatted line into that slot's [`OnceLock`]. There is no mutex
/// anywhere — concurrent writers never contend beyond the slot
/// counter, so tracing the parallel runner cannot serialize its
/// workers. Events past `capacity` are counted in [`JsonlSink::dropped`]
/// rather than blocking or reallocating.
///
/// Sampling applies only to events marked [`TraceEvent::sampled`]
/// (per-iteration residuals, per-access simulator arbitration): with
/// `with_sampling(sink, n)` every `n`-th such event is kept. Span
/// start/end and unsampled points are always kept, so the span tree
/// stays complete no matter the sampling rate.
#[derive(Debug)]
pub struct JsonlSink {
    slots: Box<[OnceLock<String>]>,
    cursor: AtomicUsize,
    dropped: AtomicU64,
    sampled_seen: AtomicU64,
    sample_every: u64,
}

impl JsonlSink {
    /// A sink keeping every event, with room for `capacity` lines.
    pub fn with_capacity(capacity: usize) -> JsonlSink {
        JsonlSink::with_sampling(capacity, 1)
    }

    /// A sink keeping 1 in `sample_every` sampled-class events (and
    /// every span/unsampled event). A `sample_every` of 0 is treated
    /// as 1.
    pub fn with_sampling(capacity: usize, sample_every: u64) -> JsonlSink {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, OnceLock::new);
        JsonlSink {
            slots: slots.into_boxed_slice(),
            cursor: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            sampled_seen: AtomicU64::new(0),
            sample_every: sample_every.max(1),
        }
    }

    /// Lines recorded so far (excluding drops), in claim order.
    ///
    /// Slots claimed by a thread that has not finished writing yet are
    /// skipped; call this only after instrumented work has quiesced
    /// (e.g. after the runner's threads joined).
    pub fn lines(&self) -> Vec<&str> {
        let claimed = self.cursor.load(Ordering::Acquire).min(self.slots.len());
        self.slots[..claimed]
            .iter()
            .filter_map(|slot| slot.get().map(String::as_str))
            .collect()
    }

    /// Events recorded (slots claimed), capped at capacity.
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events lost to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Writes all recorded lines to `path` as newline-delimited JSON.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        let mut out = String::new();
        for line in self.lines() {
            out.push_str(line);
            out.push('\n');
        }
        std::fs::write(path, out)
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &TraceEvent<'_>) {
        if event.sampled && self.sample_every > 1 {
            let n = self.sampled_seen.fetch_add(1, Ordering::Relaxed);
            if !n.is_multiple_of(self.sample_every) {
                return;
            }
        }
        let line = event_to_jsonl(event);
        let slot = self.cursor.fetch_add(1, Ordering::AcqRel);
        match self.slots.get(slot) {
            // A slot is claimed exactly once; set cannot fail.
            Some(cell) => {
                let _ = cell.set(line);
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;

    /// One owned copy of a recorded event: kind, name, span id, parent
    /// id, and the fields.
    type RecordedEvent = (EventKind, &'static str, u64, u64, Vec<Field>);

    /// Test sink capturing owned copies of everything it sees.
    #[derive(Debug, Default)]
    struct VecSink {
        events: Mutex<Vec<RecordedEvent>>,
    }

    impl EventSink for VecSink {
        fn record(&self, event: &TraceEvent<'_>) {
            self.events.lock().push((
                event.kind,
                event.name,
                event.span,
                event.parent,
                event.fields.to_vec(),
            ));
        }
    }

    /// The one global sink shared by every test in this process
    /// (install_sink is once-per-process); tests filter by name.
    fn shared_sink() -> &'static VecSink {
        static SHARED: OnceLock<&'static VecSink> = OnceLock::new();
        SHARED.get_or_init(|| {
            let sink: &'static VecSink = Box::leak(Box::new(VecSink::default()));
            install_sink(sink).expect("first install in this process");
            sink
        })
    }

    fn events_named(
        sink: &VecSink,
        name: &str,
    ) -> Vec<(EventKind, &'static str, u64, u64, Vec<Field>)> {
        sink.events
            .lock()
            .iter()
            .filter(|e| e.1 == name)
            .cloned()
            .collect()
    }

    #[test]
    fn spans_nest_and_events_attach_to_the_innermost() {
        let sink = shared_sink();
        let outer = span("t.outer", &[Field::u64("n", 1)]);
        let outer_id = outer.id();
        {
            let inner = span("t.inner", &[]);
            assert_eq!(current_span(), inner.id());
            event("t.inner_point", &[Field::f64("x", 0.5)]);
            let pts = events_named(sink, "t.inner_point");
            assert_eq!(pts.len(), 1);
            assert_eq!(pts[0].3, inner.id(), "point parents to innermost span");
            let starts = events_named(sink, "t.inner");
            assert_eq!(starts[0].3, outer_id, "inner span parents to outer");
        }
        assert_eq!(current_span(), outer_id, "drop restores the outer span");
        drop(outer);
        assert_eq!(current_span(), 0);
        let ends: Vec<_> = events_named(sink, "t.outer")
            .into_iter()
            .filter(|e| e.0 == EventKind::SpanEnd)
            .collect();
        assert_eq!(ends.len(), 1);
    }

    #[test]
    fn span_under_crosses_threads() {
        let sink = shared_sink();
        let batch = span("t.batch", &[]);
        let batch_id = batch.id();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let worker = span_under("t.worker", batch_id, &[Field::u64("worker", 0)]);
                event("t.worker_point", &[]);
                drop(worker);
            });
        });
        drop(batch);
        let starts: Vec<_> = events_named(sink, "t.worker")
            .into_iter()
            .filter(|e| e.0 == EventKind::SpanStart)
            .collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(starts[0].3, batch_id, "worker span adopts the batch parent");
        let pts = events_named(sink, "t.worker_point");
        assert_eq!(pts[0].3, starts[0].2, "worker event nests in worker span");
    }

    #[test]
    fn concurrent_writers_never_lose_or_tear_lines() {
        let sink = JsonlSink::with_capacity(4 * 500);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sink = &sink;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        sink.record(&TraceEvent {
                            kind: EventKind::Point,
                            name: "t.concurrent",
                            span: t,
                            parent: 0,
                            seq: i,
                            thread: t,
                            duration_ns: None,
                            sampled: false,
                            fields: &[Field::u64("i", i), Field::u64("t", t)],
                        });
                    }
                });
            }
        });
        let lines = sink.lines();
        assert_eq!(lines.len(), 2000);
        assert_eq!(sink.dropped(), 0);
        // Every line is intact, self-consistent JSON.
        let mut per_thread = [0u64; 4];
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"name\":\"t.concurrent\""), "{line}");
            let t = line
                .split("\"t\":")
                .nth(1)
                .and_then(|rest| rest.trim_end_matches('}').parse::<u64>().ok())
                .expect("t field parses");
            per_thread[t as usize] += 1;
        }
        assert_eq!(per_thread, [500; 4], "no thread's events were lost");
    }

    #[test]
    fn capacity_overflow_counts_drops() {
        let sink = JsonlSink::with_capacity(3);
        for i in 0..5u64 {
            sink.record(&TraceEvent {
                kind: EventKind::Point,
                name: "t.overflow",
                span: 0,
                parent: 0,
                seq: i,
                thread: 1,
                duration_ns: None,
                sampled: false,
                fields: &[],
            });
        }
        assert_eq!(sink.lines().len(), 3);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn sampling_thins_only_sampled_events() {
        let sink = JsonlSink::with_sampling(100, 10);
        for i in 0..40u64 {
            sink.record(&TraceEvent {
                kind: EventKind::Point,
                name: "t.sampled",
                span: 0,
                parent: 0,
                seq: i,
                thread: 1,
                duration_ns: None,
                sampled: true,
                fields: &[],
            });
        }
        for i in 0..5u64 {
            sink.record(&TraceEvent {
                kind: EventKind::SpanStart,
                name: "t.span",
                span: i + 1,
                parent: 0,
                seq: 40 + i,
                thread: 1,
                duration_ns: None,
                sampled: false,
                fields: &[],
            });
        }
        let lines = sink.lines();
        let sampled = lines.iter().filter(|l| l.contains("t.sampled")).count();
        let spans = lines.iter().filter(|l| l.contains("t.span")).count();
        assert_eq!(sampled, 4, "1 in 10 of 40 sampled events");
        assert_eq!(spans, 5, "span records are never sampled away");
    }

    #[test]
    fn jsonl_escapes_and_types_fields() {
        let line = event_to_jsonl(&TraceEvent {
            kind: EventKind::SpanEnd,
            name: "t.fmt",
            span: 9,
            parent: 3,
            seq: 77,
            thread: 2,
            duration_ns: Some(1234),
            sampled: false,
            fields: &[
                Field::u64("u", 42),
                Field::i64("i", -7),
                Field::f64("f", 0.25),
                Field::f64("nan", f64::NAN),
                Field::bool("b", true),
                Field::str("s", "say \"hi\"\n"),
                Field::text("t", "owned".to_string()),
            ],
        });
        assert_eq!(
            line,
            "{\"ev\":\"end\",\"name\":\"t.fmt\",\"span\":9,\"parent\":3,\"seq\":77,\
             \"thread\":2,\"dur_ns\":1234,\"fields\":{\"u\":42,\"i\":-7,\"f\":0.25,\
             \"nan\":null,\"b\":true,\"s\":\"say \\\"hi\\\"\\n\",\"t\":\"owned\"}}"
        );
    }

    #[test]
    fn disabled_paths_are_inert_without_a_recording_span() {
        // The shared global sink may be installed by other tests, so
        // assert only the span-local invariants here.
        let span = Span {
            id: 0,
            name: "t.inert",
            parent: 0,
            previous: 0,
            start: None,
        };
        assert!(!span.is_recording());
        assert_eq!(span.id(), 0);
        drop(span); // must not emit or touch the thread-local stack
    }
}
