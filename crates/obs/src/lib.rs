//! # swcc-obs — dependency-free observability for the swcc workspace
//!
//! The model layer answers "how fast is the multiprocessor"; this crate
//! answers "how hard did the solvers work to find out". It provides the
//! counters behind `repro --metrics` and the machine-readable run
//! manifest (`repro --manifest`), with nothing but `std` underneath —
//! no external dependencies, no locks on the record path.
//!
//! Three pieces:
//!
//! * **Primitives** ([`Counter`], [`Gauge`], [`Histogram`]) — atomic
//!   metric cells any number of threads can update concurrently.
//! * **Registry** ([`MetricsRegistry`], built via [`RegistryBuilder`]) —
//!   a frozen, name-indexed set of metrics. Recording is a binary
//!   search over an immutable table plus one atomic update.
//! * **Dispatch** ([`counter_add`], [`gauge_set`], [`observe`]) — free
//!   functions instrumented code calls. They forward to the recorder
//!   installed via [`install`] (process totals) and to the calling
//!   thread's active [`capture`] span (per-experiment attribution).
//!   With neither active they cost two relaxed atomic loads — cheap
//!   enough to leave inside solver hot paths permanently.
//!
//! ```
//! use swcc_obs::{capture, counter_add, RegistryBuilder};
//!
//! // Per-span capture needs no global setup at all:
//! let (answer, metrics) = capture(|| {
//!     counter_add("demo.solves", 3);
//!     42
//! });
//! assert_eq!(answer, 42);
//! assert_eq!(metrics.counter("demo.solves"), Some(3));
//!
//! // Process-wide totals go through an installed registry:
//! let registry = RegistryBuilder::new().counter("demo.solves").build();
//! // swcc_obs::install(Box::leak(Box::new(registry))).unwrap();
//! # let _ = registry;
//! ```
//!
//! The metric *names* live with the code that owns them —
//! `swcc_core::metrics` for solver/sweep counters,
//! `swcc_experiments::runner` for runner spans — each exposing a
//! `register` function that adds its names to a [`RegistryBuilder`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod metric;
pub mod progress;
pub mod quantile;
mod recorder;
mod registry;
pub mod sync;
pub mod trace;
pub mod tree;
pub mod window;

pub use metric::{Counter, Gauge, Histogram};
pub use progress::Progress;
pub use recorder::{
    capture, counter_add, enabled, gauge_set, install, installed, observe, InstallError,
    NoopRecorder, Recorder,
};
pub use registry::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    RegistryBuilder, UNREGISTERED,
};
pub use trace::{
    event, event_sampled, install_sink, span, span_under, trace_enabled, EventKind, EventSink,
    Field, FieldValue, JsonlSink, Span, TraceEvent,
};
pub use tree::{parse_line, parse_trace, ParsedEvent, ParsedTrace, Scalar, SpanNode, SpanTree};
pub use window::{WindowRing, WindowStats, WindowedSnapshot, WINDOW_SECONDS};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_and_capture_compose() {
        let registry = RegistryBuilder::new().counter("compose.count").build();
        // Not installed globally (install is once-per-process and other
        // tests race for it); drive the Recorder impl directly while a
        // capture is active to mimic dual-sink dispatch.
        let ((), span) = capture(|| {
            counter_add("compose.count", 2);
            Recorder::counter_add(&registry, "compose.count", 2);
        });
        assert_eq!(span.counter("compose.count"), Some(2));
        assert_eq!(registry.counter_value("compose.count"), Some(2));
    }
}
