//! Rolling-window telemetry: a lock-free time-bucketed ring of
//! counters and latency samples, snapshotted into 1s / 10s / 60s
//! rates and interpolated quantiles.
//!
//! The cumulative [`crate::MetricsRegistry`] answers "how much has
//! happened since the process started"; this module answers "what is
//! happening *right now*". A [`WindowRing`] owns a fixed ring of
//! per-second buckets; every record call tags the bucket for its
//! second and bumps atomics in place — no locks, no allocation, and
//! writers never block each other. A [`snapshot`](WindowRing::snapshot)
//! folds the completed seconds of each window into totals, per-second
//! rates, and type-7 interpolated p50/p90/p99 ([`crate::quantile`],
//! the same estimator the load-test harness uses, so client-side and
//! server-side quantiles are directly comparable).
//!
//! Time is passed in explicitly as epoch seconds (`now_s`), never read
//! from a clock inside the module: callers in a service pass
//! `SystemTime::now()`, tests pass a synthetic counter and get fully
//! deterministic windows.
//!
//! ## Accuracy contract
//!
//! This is telemetry, not accounting. Two benign races are accepted by
//! design and bounded to one bucket boundary:
//!
//! * When a bucket rolls over to a new second, the winner of the tag
//!   CAS resets the counts; a concurrent writer that recorded between
//!   the claim and the reset may lose that one record.
//! * A straggler thread holding an older `now_s` than the bucket's tag
//!   drops its record rather than polluting the newer second.
//!
//! Latency samples per bucket are capped ([`WindowRing::new`]'s
//! `sample_capacity`); past the cap new samples overwrite the oldest
//! slots, and the snapshot reports both `observed` (everything offered)
//! and `sampled` (what the quantiles were computed over), so a
//! saturated window is visible rather than silent.
//!
//! ```
//! use swcc_obs::window::WindowRing;
//!
//! let ring = WindowRing::new(&["requests", "errors"], 128);
//! ring.add(100, 0, 3); // 3 requests during epoch second 100
//! ring.sample(100, 250.0); // one 250us latency sample
//! let snap = ring.snapshot(101); // second 100 is now complete
//! assert_eq!(snap.total(1, "requests"), Some(3));
//! assert_eq!(snap.windows[0].p50, Some(250.0));
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::quantile;
use crate::registry::MetricsSnapshot;

/// The rolling windows a snapshot reports, in seconds.
pub const WINDOW_SECONDS: &[u64] = &[1, 10, 60];

/// Ring slots; must exceed the longest window plus the in-progress
/// second so a 60s window never reads a bucket being overwritten.
const RING_SLOTS: usize = 64;

/// Bucket tag meaning "never used".
const UNUSED: u64 = u64::MAX;

struct Bucket {
    /// Epoch second this bucket currently holds ([`UNUSED`] initially).
    second: AtomicU64,
    /// One slot per registered counter name.
    counts: Vec<AtomicU64>,
    /// Latency samples as `f64` bits, a fixed-capacity overwrite ring.
    samples: Vec<AtomicU64>,
    /// Samples offered this second (may exceed the sample capacity).
    offered: AtomicU64,
}

impl std::fmt::Debug for Bucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bucket")
            .field("second", &self.second.load(Ordering::Relaxed))
            .field("offered", &self.offered.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A lock-free ring of per-second telemetry buckets.
///
/// Counters are addressed by index into the name slice given to
/// [`WindowRing::new`]; the service layer defines its indices as
/// constants next to the name slice so records stay self-describing.
#[derive(Debug)]
pub struct WindowRing {
    names: Vec<&'static str>,
    buckets: Vec<Bucket>,
    sample_capacity: usize,
}

impl WindowRing {
    /// A ring with one slot per counter name and `sample_capacity`
    /// latency-sample slots per second (minimum 1).
    pub fn new(names: &[&'static str], sample_capacity: usize) -> WindowRing {
        let sample_capacity = sample_capacity.max(1);
        let buckets = (0..RING_SLOTS)
            .map(|_| Bucket {
                second: AtomicU64::new(UNUSED),
                counts: (0..names.len()).map(|_| AtomicU64::new(0)).collect(),
                samples: (0..sample_capacity).map(|_| AtomicU64::new(0)).collect(),
                offered: AtomicU64::new(0),
            })
            .collect();
        WindowRing {
            names: names.to_vec(),
            buckets,
            sample_capacity,
        }
    }

    /// The registered counter names, in index order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// The bucket for `now_s`, claiming (and resetting) it if this is
    /// the first record of that second. `None` when a newer second
    /// already owns the slot (stale writer) — the record is dropped.
    fn bucket(&self, now_s: u64) -> Option<&Bucket> {
        let bucket = self.buckets.get(now_s as usize % RING_SLOTS)?;
        let tag = bucket.second.load(Ordering::Acquire);
        if tag == now_s {
            return Some(bucket);
        }
        if tag != UNUSED && tag > now_s {
            return None;
        }
        match bucket
            .second
            .compare_exchange(tag, now_s, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                // We rolled the bucket over: zero it for the new second.
                for c in &bucket.counts {
                    c.store(0, Ordering::Relaxed);
                }
                bucket.offered.store(0, Ordering::Relaxed);
                Some(bucket)
            }
            Err(actual) if actual == now_s => Some(bucket),
            Err(_) => None,
        }
    }

    /// Adds `by` to counter index `counter` in the bucket for `now_s`.
    /// Out-of-range indices and stale seconds are dropped silently.
    pub fn add(&self, now_s: u64, counter: usize, by: u64) {
        if let Some(bucket) = self.bucket(now_s) {
            if let Some(cell) = bucket.counts.get(counter) {
                cell.fetch_add(by, Ordering::Relaxed);
            }
        }
    }

    /// Records one latency sample (any unit; the service layer uses
    /// microseconds) into the bucket for `now_s`. Non-finite samples
    /// are stored but filtered out again at snapshot time.
    pub fn sample(&self, now_s: u64, value: f64) {
        if let Some(bucket) = self.bucket(now_s) {
            let slot = bucket.offered.fetch_add(1, Ordering::Relaxed) as usize;
            if let Some(cell) = bucket.samples.get(slot % self.sample_capacity) {
                cell.store(value.to_bits(), Ordering::Relaxed);
            }
        }
    }

    /// Folds the completed seconds before `now_s` into one
    /// [`WindowStats`] per entry of [`WINDOW_SECONDS`]. The in-progress
    /// second (`now_s` itself) is excluded so rates are never computed
    /// over a partial second.
    pub fn snapshot(&self, now_s: u64) -> WindowedSnapshot {
        let windows = WINDOW_SECONDS
            .iter()
            .map(|&seconds| {
                let lo = now_s.saturating_sub(seconds);
                let mut totals = vec![0u64; self.names.len()];
                let mut observed = 0u64;
                let mut samples: Vec<f64> = Vec::new();
                for bucket in &self.buckets {
                    let tag = bucket.second.load(Ordering::Acquire);
                    if tag == UNUSED || tag < lo || tag >= now_s {
                        continue;
                    }
                    for (total, cell) in totals.iter_mut().zip(&bucket.counts) {
                        *total += cell.load(Ordering::Relaxed);
                    }
                    let offered = bucket.offered.load(Ordering::Relaxed);
                    observed += offered;
                    let kept = (offered as usize).min(self.sample_capacity);
                    samples.extend(
                        bucket
                            .samples
                            .iter()
                            .take(kept)
                            .map(|cell| f64::from_bits(cell.load(Ordering::Relaxed)))
                            .filter(|v| v.is_finite()),
                    );
                }
                let sampled = samples.len() as u64;
                let (p50, p90, p99) = match quantile::quantiles(&samples, &[0.5, 0.9, 0.99]) {
                    Some(qs) => (
                        qs.first().copied().flatten(),
                        qs.get(1).copied().flatten(),
                        qs.get(2).copied().flatten(),
                    ),
                    None => (None, None, None),
                };
                WindowStats {
                    seconds,
                    totals,
                    observed,
                    sampled,
                    p50,
                    p90,
                    p99,
                }
            })
            .collect();
        WindowedSnapshot {
            at_s: now_s,
            names: self.names.clone(),
            windows,
        }
    }
}

/// One rolling window's folded statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window length in seconds.
    pub seconds: u64,
    /// Counter totals over the window, parallel to the ring's names.
    pub totals: Vec<u64>,
    /// Latency samples offered during the window (before capping).
    pub observed: u64,
    /// Finite latency samples the quantiles were computed over.
    pub sampled: u64,
    /// Interpolated median latency, `None` when no sample landed.
    pub p50: Option<f64>,
    /// Interpolated 90th-percentile latency.
    pub p90: Option<f64>,
    /// Interpolated 99th-percentile latency.
    pub p99: Option<f64>,
}

impl WindowStats {
    /// Per-second rate of counter index `i` over this window.
    pub fn rate(&self, i: usize) -> f64 {
        match self.totals.get(i) {
            Some(&total) if self.seconds > 0 => total as f64 / self.seconds as f64,
            _ => 0.0,
        }
    }
}

/// A point-in-time copy of every rolling window, detached from the
/// ring's atomics, with JSON and Prometheus-text renderings.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSnapshot {
    /// The `now_s` the snapshot was taken at (epoch seconds).
    pub at_s: u64,
    /// Counter names, in index order (shared by every window).
    pub names: Vec<&'static str>,
    /// One entry per [`WINDOW_SECONDS`] entry, same order.
    pub windows: Vec<WindowStats>,
}

impl WindowedSnapshot {
    /// Looks up one window by its length in seconds.
    pub fn window(&self, seconds: u64) -> Option<&WindowStats> {
        self.windows.iter().find(|w| w.seconds == seconds)
    }

    /// Total of counter `name` over the `seconds` window.
    pub fn total(&self, seconds: u64, name: &str) -> Option<u64> {
        let i = self.names.iter().position(|n| *n == name)?;
        self.window(seconds)?.totals.get(i).copied()
    }

    /// Renders the snapshot as one JSON object:
    ///
    /// ```json
    /// {"at_s":100,"windows":[{"seconds":1,
    ///   "counters":{"requests":3},"rates":{"requests":3.0},
    ///   "latency":{"observed":1,"sampled":1,
    ///              "p50":250.0,"p90":250.0,"p99":250.0}}]}
    /// ```
    ///
    /// Absent quantiles render as `null`. Float formatting is Rust's
    /// shortest round-trip `Display`, matching the serve protocol.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(out, "{{\"at_s\":{},\"windows\":[", self.at_s);
        for (wi, w) in self.windows.iter().enumerate() {
            if wi > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"seconds\":{},\"counters\":{{", w.seconds);
            for (i, name) in self.names.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":{}", w.totals.get(i).copied().unwrap_or(0));
            }
            out.push_str("},\"rates\":{");
            for (i, name) in self.names.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":");
                push_json_f64(&mut out, w.rate(i));
            }
            let _ = write!(
                out,
                "}},\"latency\":{{\"observed\":{},\"sampled\":{},",
                w.observed, w.sampled
            );
            for (key, q) in [("p50", w.p50), ("p90", w.p90), ("p99", w.p99)] {
                let _ = write!(out, "\"{key}\":");
                match q {
                    Some(v) => push_json_f64(&mut out, v),
                    None => out.push_str("null"),
                }
                if key != "p99" {
                    out.push(',');
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format,
    /// with every sample name prefixed by `prefix` (e.g.
    /// `"swcc_serve_window"`):
    ///
    /// ```text
    /// swcc_serve_window_total{counter="requests",window="1s"} 3
    /// swcc_serve_window_rate{counter="requests",window="1s"} 3
    /// swcc_serve_window_latency_observed{window="1s"} 1
    /// swcc_serve_window_latency_sampled{window="1s"} 1
    /// swcc_serve_window_latency_us{window="1s",quantile="0.5"} 250
    /// ```
    ///
    /// Quantile lines are omitted (not zeroed) for windows with no
    /// samples, mirroring the JSON `null`s.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::with_capacity(512);
        let _ = writeln!(out, "# TYPE {prefix}_total gauge");
        let _ = writeln!(out, "# TYPE {prefix}_rate gauge");
        let _ = writeln!(out, "# TYPE {prefix}_latency_us gauge");
        for w in &self.windows {
            let label = format!("{}s", w.seconds);
            for (i, name) in self.names.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{prefix}_total{{counter=\"{name}\",window=\"{label}\"}} {}",
                    w.totals.get(i).copied().unwrap_or(0)
                );
                let _ = writeln!(
                    out,
                    "{prefix}_rate{{counter=\"{name}\",window=\"{label}\"}} {}",
                    w.rate(i)
                );
            }
            let _ = writeln!(
                out,
                "{prefix}_latency_observed{{window=\"{label}\"}} {}",
                w.observed
            );
            let _ = writeln!(
                out,
                "{prefix}_latency_sampled{{window=\"{label}\"}} {}",
                w.sampled
            );
            for (q, value) in [("0.5", w.p50), ("0.9", w.p90), ("0.99", w.p99)] {
                if let Some(v) = value {
                    let _ = writeln!(
                        out,
                        "{prefix}_latency_us{{window=\"{label}\",quantile=\"{q}\"}} {v}"
                    );
                }
            }
        }
        out
    }
}

/// Appends a finite float in shortest round-trip form, `null` otherwise
/// (the vendored JSON serializer's convention).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Maps a dotted metric name to a Prometheus-safe sample name:
/// every character outside `[A-Za-z0-9_]` becomes `_`.
fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a cumulative [`MetricsSnapshot`] in the Prometheus text
/// exposition format. Counter samples get the conventional `_total`
/// suffix; histograms expose cumulative `_bucket{le=…}` series plus
/// `_sum` and `_count`. Dotted registry names are sanitized
/// (`serve.requests` → `{prefix}serve_requests_total`).
pub fn registry_to_prometheus(snapshot: &MetricsSnapshot, prefix: &str) -> String {
    let mut out = String::with_capacity(1024);
    for c in &snapshot.counters {
        let name = prometheus_name(&c.name);
        let _ = writeln!(out, "# TYPE {prefix}{name}_total counter");
        let _ = writeln!(out, "{prefix}{name}_total {}", c.value);
    }
    for g in &snapshot.gauges {
        let name = prometheus_name(&g.name);
        let _ = writeln!(out, "# TYPE {prefix}{name} gauge");
        let _ = writeln!(out, "{prefix}{name} {}", g.value);
    }
    for h in &snapshot.histograms {
        let name = prometheus_name(&h.name);
        let _ = writeln!(out, "# TYPE {prefix}{name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.buckets) {
            cumulative += count;
            let _ = writeln!(out, "{prefix}{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{prefix}{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{prefix}{name}_sum {}", h.sum);
        let _ = writeln!(out, "{prefix}{name}_count {}", h.count);
    }
    out
}

/// Renders a cumulative [`MetricsSnapshot`] as one JSON object with
/// `counters`, `gauges`, and `histograms` sections keyed by metric
/// name — the machine-readable twin of [`registry_to_prometheus`].
pub fn registry_to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"counters\":{");
    for (i, c) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", c.name, c.value);
    }
    out.push_str("},\"gauges\":{");
    for (i, g) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", g.name);
        push_json_f64(&mut out, g.value);
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{{\"count\":{},\"sum\":", h.name, h.count);
        push_json_f64(&mut out, h.sum);
        out.push_str(",\"bounds\":[");
        for (j, b) in h.bounds.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_json_f64(&mut out, *b);
        }
        out.push_str("],\"buckets\":[");
        for (j, b) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

/// A Prometheus `*_info`-style build provenance sample:
/// `{prefix}build_info{commit="…",rustc="…",profile="…"} 1`.
pub fn build_info_prometheus(prefix: &str, commit: &str, rustc: &str, profile: &str) -> String {
    format!(
        "# TYPE {prefix}build_info gauge\n{prefix}build_info{{commit=\"{}\",rustc=\"{}\",profile=\"{}\"}} 1\n",
        escape_label(commit),
        escape_label(rustc),
        escape_label(profile),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryBuilder;
    use crate::Recorder as _;

    const NAMES: &[&str] = &["requests", "errors"];

    #[test]
    fn totals_and_rates_fold_complete_seconds_only() {
        let ring = WindowRing::new(NAMES, 16);
        for s in 100..110u64 {
            ring.add(s, 0, 5);
        }
        ring.add(110, 0, 999); // in-progress second: excluded
        let snap = ring.snapshot(110);
        assert_eq!(snap.total(1, "requests"), Some(5));
        assert_eq!(snap.window(1).unwrap().rate(0), 5.0);
        assert_eq!(snap.total(10, "requests"), Some(50));
        assert_eq!(snap.window(10).unwrap().rate(0), 5.0);
        assert_eq!(snap.total(60, "requests"), Some(50));
        assert_eq!(snap.total(60, "errors"), Some(0));
    }

    #[test]
    fn quantiles_reuse_the_shared_estimator() {
        let ring = WindowRing::new(NAMES, 64);
        let xs: Vec<f64> = (1..=11).map(f64::from).collect();
        for &x in &xs {
            ring.sample(200, x);
        }
        let snap = ring.snapshot(201);
        let w = snap.window(1).unwrap();
        assert_eq!(w.observed, 11);
        assert_eq!(w.sampled, 11);
        assert_eq!(w.p50, quantile::p50(&xs));
        assert_eq!(w.p90, quantile::p90(&xs));
        assert_eq!(w.p99, quantile::p99(&xs));
    }

    #[test]
    fn sample_overflow_reports_observed_above_sampled() {
        let ring = WindowRing::new(NAMES, 4);
        for i in 0..10 {
            ring.sample(300, i as f64);
        }
        let snap = ring.snapshot(301);
        let w = snap.window(1).unwrap();
        assert_eq!(w.observed, 10);
        assert_eq!(w.sampled, 4, "capped at the ring capacity");
    }

    #[test]
    fn buckets_roll_over_and_old_seconds_evaporate() {
        let ring = WindowRing::new(NAMES, 8);
        ring.add(100, 0, 7);
        // Same ring slot 64 seconds later: the old count must not leak.
        ring.add(100 + RING_SLOTS as u64, 0, 1);
        let snap = ring.snapshot(101 + RING_SLOTS as u64);
        assert_eq!(snap.total(1, "requests"), Some(1));
        assert_eq!(snap.total(60, "requests"), Some(1));
    }

    #[test]
    fn stale_writers_are_dropped_not_misfiled() {
        let ring = WindowRing::new(NAMES, 8);
        ring.add(500, 0, 1);
        ring.add(500 - RING_SLOTS as u64, 0, 99); // straggler, same slot
        let snap = ring.snapshot(501);
        assert_eq!(snap.total(1, "requests"), Some(1));
    }

    #[test]
    fn non_finite_samples_do_not_poison_quantiles() {
        let ring = WindowRing::new(NAMES, 8);
        ring.sample(100, f64::NAN);
        ring.sample(100, 4.0);
        ring.sample(100, f64::INFINITY);
        let snap = ring.snapshot(101);
        let w = snap.window(1).unwrap();
        assert_eq!(w.observed, 3);
        assert_eq!(w.sampled, 1);
        assert_eq!(w.p99, Some(4.0));
    }

    #[test]
    fn json_and_prometheus_renderings_agree_with_the_snapshot() {
        let ring = WindowRing::new(NAMES, 16);
        ring.add(100, 0, 12);
        ring.add(100, 1, 2);
        for v in [10.0, 20.0, 30.0, 40.0] {
            ring.sample(100, v);
        }
        let snap = ring.snapshot(101);
        let json = snap.to_json();
        let prom = snap.to_prometheus("w");
        // Both renderings must carry exactly the numbers in the
        // snapshot struct, formatted identically (shortest round-trip
        // Display), so parsing either recovers the same values.
        for w in &snap.windows {
            let label = format!("{}s", w.seconds);
            for (i, name) in snap.names.iter().enumerate() {
                let total = w.totals[i];
                assert!(
                    json.contains(&format!("\"{name}\":{total}")),
                    "json missing {name}={total} for {label}"
                );
                assert!(
                    prom.contains(&format!(
                        "w_total{{counter=\"{name}\",window=\"{label}\"}} {total}"
                    )),
                    "prometheus missing {name}={total} for {label}"
                );
                let rate = w.rate(i);
                assert!(prom.contains(&format!(
                    "w_rate{{counter=\"{name}\",window=\"{label}\"}} {rate}"
                )));
            }
            if let Some(p99) = w.p99 {
                assert!(json.contains(&format!("\"p99\":{p99}")));
                assert!(prom.contains(&format!(
                    "w_latency_us{{window=\"{label}\",quantile=\"0.99\"}} {p99}"
                )));
            }
        }
        // Empty windows render null quantiles in JSON and omit the
        // Prometheus sample line entirely.
        let empty = WindowRing::new(NAMES, 4).snapshot(1);
        assert!(empty.to_json().contains("\"p50\":null"));
        assert!(!empty.to_prometheus("w").contains("latency_us{"));
    }

    #[test]
    fn registry_exposition_round_trips_counts_and_cumulative_buckets() {
        let registry = RegistryBuilder::new()
            .counter("serve.requests")
            .gauge("serve.workers")
            .histogram("serve.request_us", &[10.0, 100.0])
            .build();
        registry.counter_add("serve.requests", 42);
        registry.gauge_set("serve.workers", 4.0);
        registry.observe("serve.request_us", 5.0);
        registry.observe("serve.request_us", 50.0);
        registry.observe("serve.request_us", 500.0);
        let snap = registry.snapshot();
        let prom = registry_to_prometheus(&snap, "swcc_");
        assert!(prom.contains("swcc_serve_requests_total 42"));
        assert!(prom.contains("swcc_serve_workers 4"));
        assert!(prom.contains("swcc_serve_request_us_bucket{le=\"10\"} 1"));
        assert!(
            prom.contains("swcc_serve_request_us_bucket{le=\"100\"} 2"),
            "buckets must be cumulative: {prom}"
        );
        assert!(prom.contains("swcc_serve_request_us_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("swcc_serve_request_us_count 3"));
        let json = registry_to_json(&snap);
        assert!(json.contains("\"serve.requests\":42"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"buckets\":[1,1,1]"));
    }

    #[test]
    fn build_info_labels_are_escaped() {
        let line = build_info_prometheus("s_", "abc123", "rustc 1.0 (\"x\")", "release");
        assert!(line.contains("commit=\"abc123\""));
        assert!(line.contains("\\\"x\\\""));
        assert!(line.ends_with("1\n"));
    }
}
