//! Shared quantile estimation over `f64` samples.
//!
//! Several consumers in the workspace summarize distributions — the
//! `trace-report` iteration histogram, the run-history drift detector's
//! trailing medians, the bench harness's median-of-samples timings.
//! Before this module each carried its own ad-hoc `sort + index` math
//! with subtly different edge-case behavior; this is the one shared
//! implementation.
//!
//! Semantics:
//!
//! * **Non-finite rejecting** — `NaN` and `±inf` samples are dropped
//!   before estimation rather than poisoning the sort order.
//! * **[`f64::total_cmp`]-based** — the sort is total and deterministic
//!   (`-0.0 < +0.0`, no `partial_cmp` unwraps).
//! * **Linear interpolation** between the two nearest order statistics
//!   (the "type 7" estimator of R/NumPy), so `p50` of `[1, 2]` is `1.5`
//!   and every quantile of a single sample is that sample.
//!
//! ```
//! use swcc_obs::quantile::{median, p90, quantile};
//!
//! let xs = [4.0, 1.0, 3.0, 2.0];
//! assert_eq!(median(&xs), Some(2.5));
//! assert_eq!(quantile(&xs, 0.0), Some(1.0));
//! assert_eq!(p90(&xs), Some(3.7));
//! assert_eq!(median(&[]), None);
//! ```

/// The `q`-quantile (`0.0 ..= 1.0`) of `values`, ignoring non-finite
/// samples. `None` when `q` is out of range or no finite sample remains.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    let finite = finite_sorted(values)?;
    sorted_quantile(&finite, q)
}

/// Several quantiles of the same sample in one pass: the filter + sort
/// is paid once instead of once per `q` (the load-test harness asks for
/// p50/p90/p99 of millions of latencies). Each returned slot is exactly
/// what [`quantile`] returns for the same `q`.
///
/// `None` when no finite sample remains; per-slot `None` for an
/// out-of-range `q`.
pub fn quantiles(values: &[f64], qs: &[f64]) -> Option<Vec<Option<f64>>> {
    let finite = finite_sorted(values)?;
    Some(qs.iter().map(|&q| sorted_quantile(&finite, q)).collect())
}

/// Finite samples in [`f64::total_cmp`] order, or `None` when empty.
fn finite_sorted(values: &[f64]) -> Option<Vec<f64>> {
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    finite.sort_unstable_by(f64::total_cmp);
    Some(finite)
}

/// The type-7 estimate over an already-sorted non-empty sample.
///
/// The upper index is `lo + 1` capped at the last element, never
/// `rank.ceil()`: for `q` near 1.0 the product `q * (len - 1)` is
/// computed in floating point, and a `ceil` of a value that rounded a
/// hair above `len - 1` would index out of bounds, while `min` cannot.
/// (`frac` is clamped to `[0, 1]` for the same reason.)
fn sorted_quantile(finite: &[f64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let last = finite.len() - 1;
    let rank = q * last as f64;
    let lo = (rank.floor() as usize).min(last);
    let hi = (lo + 1).min(last);
    let frac = (rank - lo as f64).clamp(0.0, 1.0);
    // swcc-lint: allow(float-eq) — frac came out of clamp(0.0, 1.0), so NaN cannot reach here and -0.0 is an exact rank
    if frac == 0.0 {
        // An exact order statistic is returned as-is. Running it
        // through the interpolation arithmetic is not a no-op:
        // `x + (y - x) * 0.0` rewrites `-0.0` to `+0.0`, and when
        // `y - x` overflows to infinity it manufactures a NaN
        // (`inf * 0.0`) out of two perfectly finite samples.
        return Some(finite[lo]);
    }
    Some(finite[lo] + (finite[hi] - finite[lo]) * frac)
}

/// The median (p50). See [`quantile`].
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// The 50th percentile. See [`quantile`].
pub fn p50(values: &[f64]) -> Option<f64> {
    quantile(values, 0.50)
}

/// The 90th percentile. See [`quantile`].
pub fn p90(values: &[f64]) -> Option<f64> {
    quantile(values, 0.90)
}

/// The 99th percentile. See [`quantile`].
pub fn p99(values: &[f64]) -> Option<f64> {
    quantile(values, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_has_no_quantiles() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
        assert_eq!(p99(&[]), None);
    }

    #[test]
    fn single_element_is_every_quantile() {
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(quantile(&[7.25], q), Some(7.25), "q = {q}");
        }
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let xs = [10.0, 20.0];
        assert_eq!(median(&xs), Some(15.0));
        assert_eq!(quantile(&xs, 0.25), Some(12.5));
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(20.0));
        // Order must not matter.
        assert_eq!(median(&[20.0, 10.0]), Some(15.0));
    }

    #[test]
    fn ties_are_stable() {
        let xs = [3.0, 3.0, 3.0, 3.0];
        assert_eq!(median(&xs), Some(3.0));
        assert_eq!(p90(&xs), Some(3.0));
        assert_eq!(p99(&xs), Some(3.0));
        let mostly = [1.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(median(&mostly), Some(2.0));
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        assert_eq!(median(&[f64::NAN, 1.0, 3.0, f64::INFINITY]), Some(2.0));
        assert_eq!(median(&[f64::NAN]), None);
        assert_eq!(median(&[f64::NEG_INFINITY, f64::INFINITY]), None);
    }

    #[test]
    fn out_of_range_q_is_rejected() {
        assert_eq!(quantile(&[1.0], -0.01), None);
        assert_eq!(quantile(&[1.0], 1.01), None);
        assert_eq!(quantile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn matches_known_percentiles() {
        let xs: Vec<f64> = (1..=11).map(f64::from).collect();
        assert_eq!(p50(&xs), Some(6.0));
        assert_eq!(p90(&xs), Some(10.0));
        assert!((p99(&xs).unwrap() - 10.9).abs() < 1e-12);
    }

    // --- edge-case pinning: the cases a load-test p99 depends on -------

    #[test]
    fn single_finite_value_among_nan_is_every_quantile() {
        // Filtering must reduce this to the one-sample case, not panic
        // or interpolate against garbage.
        let xs = [f64::NAN, 42.5, f64::NAN, f64::INFINITY];
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(quantile(&xs, q), Some(42.5), "q = {q}");
        }
    }

    #[test]
    fn q_one_upper_index_never_escapes_the_slice() {
        // rank = q * (len - 1) is a floating-point product; the upper
        // order statistic must be index-capped, not `ceil`-derived, so
        // q = 1.0 (and q infinitesimally below it) address the last
        // element for every length.
        for len in 1..=257_usize {
            let xs: Vec<f64> = (0..len).map(|i| i as f64).collect();
            assert_eq!(quantile(&xs, 1.0), Some((len - 1) as f64), "len {len}");
            let just_below = 1.0 - f64::EPSILON;
            let v = quantile(&xs, just_below).unwrap();
            assert!(
                v <= (len - 1) as f64 && v >= (len.saturating_sub(2)) as f64,
                "len {len}: q just below 1.0 gave {v}"
            );
        }
    }

    #[test]
    fn all_nan_input_is_none_for_every_q() {
        let xs = [f64::NAN; 8];
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(quantile(&xs, q), None, "q = {q}");
        }
        assert_eq!(quantiles(&xs, &[0.5, 0.99]), None);
    }

    #[test]
    fn mixed_nan_positions_do_not_change_the_estimate() {
        // NaN payloads sort unpredictably under partial comparisons;
        // after filtering, their position in the input must be
        // irrelevant — same finite values, same answer, bitwise.
        let clean = [5.0, 1.0, 3.0, 2.0, 4.0];
        let variants: [&[f64]; 3] = [
            &[f64::NAN, 5.0, 1.0, 3.0, 2.0, 4.0],
            &[5.0, 1.0, f64::NAN, 3.0, 2.0, f64::NAN, 4.0],
            &[5.0, 1.0, 3.0, 2.0, 4.0, f64::NAN],
        ];
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let want = quantile(&clean, q).unwrap();
            for (i, xs) in variants.iter().enumerate() {
                let got = quantile(xs, q).unwrap();
                assert_eq!(got.to_bits(), want.to_bits(), "variant {i}, q = {q}");
            }
        }
    }

    #[test]
    fn signed_zeros_sort_deterministically() {
        // total_cmp orders -0.0 before +0.0; the median of the pair is
        // a zero either way, and the order of the inputs cannot flip
        // which order statistic is which.
        assert_eq!(
            quantile(&[0.0, -0.0], 0.0).unwrap().to_bits(),
            (-0.0_f64).to_bits()
        );
        assert_eq!(
            quantile(&[-0.0, 0.0], 1.0).unwrap().to_bits(),
            (0.0_f64).to_bits()
        );
        assert_eq!(median(&[0.0, -0.0]), Some(0.0));
    }

    #[test]
    fn quantiles_batch_matches_individual_calls() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let qs = [0.0, 0.5, 0.9, 0.99, 1.0, 1.5, -0.1];
        let batch = quantiles(&xs, &qs).unwrap();
        assert_eq!(batch.len(), qs.len());
        for (i, &q) in qs.iter().enumerate() {
            assert_eq!(batch[i], quantile(&xs, q), "q = {q}");
        }
        // Out-of-range slots are None without voiding the rest.
        assert_eq!(batch[5], None);
        assert_eq!(batch[6], None);
    }

    #[test]
    fn extreme_magnitudes_interpolate_without_overflow_surprises() {
        let xs = [f64::MIN, f64::MAX];
        // lo + (hi - lo) * frac with frac = 0.5: (MAX - MIN) overflows
        // to +inf and the estimate becomes +inf * 0.5 + MIN; pin the
        // current behavior so a future "fix" is a deliberate choice.
        let mid = quantile(&xs, 0.5).unwrap();
        assert!(mid.is_infinite() && mid > 0.0);
        // The exact order statistics are still exact.
        assert_eq!(quantile(&xs, 0.0), Some(f64::MIN));
        assert_eq!(quantile(&xs, 1.0), Some(f64::MAX));
    }
}
