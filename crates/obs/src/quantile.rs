//! Shared quantile estimation over `f64` samples.
//!
//! Several consumers in the workspace summarize distributions — the
//! `trace-report` iteration histogram, the run-history drift detector's
//! trailing medians, the bench harness's median-of-samples timings.
//! Before this module each carried its own ad-hoc `sort + index` math
//! with subtly different edge-case behavior; this is the one shared
//! implementation.
//!
//! Semantics:
//!
//! * **Non-finite rejecting** — `NaN` and `±inf` samples are dropped
//!   before estimation rather than poisoning the sort order.
//! * **[`f64::total_cmp`]-based** — the sort is total and deterministic
//!   (`-0.0 < +0.0`, no `partial_cmp` unwraps).
//! * **Linear interpolation** between the two nearest order statistics
//!   (the "type 7" estimator of R/NumPy), so `p50` of `[1, 2]` is `1.5`
//!   and every quantile of a single sample is that sample.
//!
//! ```
//! use swcc_obs::quantile::{median, p90, quantile};
//!
//! let xs = [4.0, 1.0, 3.0, 2.0];
//! assert_eq!(median(&xs), Some(2.5));
//! assert_eq!(quantile(&xs, 0.0), Some(1.0));
//! assert_eq!(p90(&xs), Some(3.7));
//! assert_eq!(median(&[]), None);
//! ```

/// The `q`-quantile (`0.0 ..= 1.0`) of `values`, ignoring non-finite
/// samples. `None` when `q` is out of range or no finite sample remains.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    finite.sort_unstable_by(f64::total_cmp);
    let rank = q * (finite.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(finite[lo] + (finite[hi] - finite[lo]) * frac)
}

/// The median (p50). See [`quantile`].
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// The 50th percentile. See [`quantile`].
pub fn p50(values: &[f64]) -> Option<f64> {
    quantile(values, 0.50)
}

/// The 90th percentile. See [`quantile`].
pub fn p90(values: &[f64]) -> Option<f64> {
    quantile(values, 0.90)
}

/// The 99th percentile. See [`quantile`].
pub fn p99(values: &[f64]) -> Option<f64> {
    quantile(values, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_has_no_quantiles() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
        assert_eq!(p99(&[]), None);
    }

    #[test]
    fn single_element_is_every_quantile() {
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(quantile(&[7.25], q), Some(7.25), "q = {q}");
        }
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let xs = [10.0, 20.0];
        assert_eq!(median(&xs), Some(15.0));
        assert_eq!(quantile(&xs, 0.25), Some(12.5));
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(20.0));
        // Order must not matter.
        assert_eq!(median(&[20.0, 10.0]), Some(15.0));
    }

    #[test]
    fn ties_are_stable() {
        let xs = [3.0, 3.0, 3.0, 3.0];
        assert_eq!(median(&xs), Some(3.0));
        assert_eq!(p90(&xs), Some(3.0));
        assert_eq!(p99(&xs), Some(3.0));
        let mostly = [1.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(median(&mostly), Some(2.0));
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        assert_eq!(median(&[f64::NAN, 1.0, 3.0, f64::INFINITY]), Some(2.0));
        assert_eq!(median(&[f64::NAN]), None);
        assert_eq!(median(&[f64::NEG_INFINITY, f64::INFINITY]), None);
    }

    #[test]
    fn out_of_range_q_is_rejected() {
        assert_eq!(quantile(&[1.0], -0.01), None);
        assert_eq!(quantile(&[1.0], 1.01), None);
        assert_eq!(quantile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn matches_known_percentiles() {
        let xs: Vec<f64> = (1..=11).map(f64::from).collect();
        assert_eq!(p50(&xs), Some(6.0));
        assert_eq!(p90(&xs), Some(10.0));
        assert!((p99(&xs).unwrap() - 10.9).abs() < 1e-12);
    }
}
