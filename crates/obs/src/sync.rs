//! Non-poisoning synchronization primitives.
//!
//! `std::sync::Mutex` poisons itself when a thread panics while holding
//! the guard, and every later `.lock().unwrap()` then panics too — one
//! crashed worker cascades into unrelated failures across the process
//! (observability sinks going dark, cache shards becoming unusable,
//! whole servers aborting). For the shared state in this workspace that
//! is never the right trade: every protected structure (event buffers,
//! solved-point cache shards, latency accumulators) is valid after any
//! prefix of mutations, so the data a panicking thread leaves behind is
//! at worst *incomplete*, never *corrupt*.
//!
//! [`Mutex`] and [`Condvar`] here are thin wrappers over the `std`
//! types that recover from poisoning via
//! [`PoisonError::into_inner`] instead of propagating it — the
//! `parking_lot` behavior, built from `std` only (this workspace
//! vendors no external crates). The panic itself still unwinds on the
//! thread that caused it; callers that want to *report* it (e.g. the
//! query service naming the request that crashed) catch it at their
//! boundary with `std::panic::catch_unwind`.
//!
//! ```
//! use swcc_obs::sync::Mutex;
//!
//! let shared = Mutex::new(vec![1, 2, 3]);
//! shared.lock().push(4);
//! assert_eq!(shared.lock().len(), 4);
//! ```

use std::fmt;
use std::sync::{LockResult, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Unwraps a [`LockResult`], recovering the guard from a poisoned lock.
fn recover<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// A mutual-exclusion lock that never propagates poisoning.
///
/// [`lock`](Mutex::lock) is infallible: if a previous holder panicked,
/// the next caller silently takes the lock and sees whatever state the
/// panicking thread left behind. The guard is the plain
/// [`std::sync::MutexGuard`], so it composes with [`Condvar`].
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the protected value (recovering it
    /// even if the lock was poisoned).
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never panics
    /// on poison: a previous holder's panic is recovered from.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.inner.lock())
    }

    /// Attempts to acquire the lock without blocking. `None` when the
    /// lock is currently held (poison, as always, is recovered from).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow checker proves
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

/// A condition variable whose wait operations recover from poisoning,
/// for use with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing `guard` while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        recover(self.inner.wait(guard))
    }

    /// Blocks until notified and `condition` returns `false`.
    pub fn wait_while<'a, T, F: FnMut(&mut T) -> bool>(
        &self,
        guard: MutexGuard<'a, T>,
        condition: F,
    ) -> MutexGuard<'a, T> {
        recover(self.inner.wait_while(guard, condition))
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        recover(self.inner.wait_timeout(guard, timeout))
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_survives_a_panicking_holder() {
        let shared = Arc::new(Mutex::new(Vec::new()));
        let writer = Arc::clone(&shared);
        let crash = thread::spawn(move || {
            let mut guard = writer.lock();
            guard.push(1);
            panic!("worker dies mid-update");
        });
        assert!(crash.join().is_err(), "the worker must have panicked");
        // A std Mutex would now be poisoned and this lock would panic;
        // the wrapper recovers and sees the partial (but valid) state.
        let mut guard = shared.lock();
        assert_eq!(*guard, vec![1]);
        guard.push(2);
        assert_eq!(*guard, vec![1, 2]);
    }

    #[test]
    fn try_lock_recovers_from_poison_and_reports_contention() {
        let shared = Arc::new(Mutex::new(7_u32));
        let holder = Arc::clone(&shared);
        let _ = thread::spawn(move || {
            let _guard = holder.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*shared.try_lock().expect("poison is recovered"), 7);
        let held = shared.lock();
        assert!(shared.try_lock().is_none(), "held lock must report busy");
        drop(held);
    }

    #[test]
    fn condvar_wakes_through_a_recovered_lock() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Poison the mutex first so the wait path exercises recovery.
        let poisoner = Arc::clone(&pair);
        let _ = thread::spawn(move || {
            let _guard = poisoner.0.lock();
            panic!("poison before the wait");
        })
        .join();
        let signaler = Arc::clone(&pair);
        let t = thread::spawn(move || {
            *signaler.0.lock() = true;
            signaler.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let guard = cv.wait_while(lock.lock(), |ready| !*ready);
        assert!(*guard);
        drop(guard);
        t.join().unwrap();
    }

    #[test]
    fn into_inner_and_get_mut_recover() {
        let mut m = Mutex::new(String::from("x"));
        m.get_mut().push('y');
        assert_eq!(m.into_inner(), "xy");
    }
}
