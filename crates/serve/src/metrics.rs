//! Metric and trace-event names emitted by the query service.
//!
//! The serve layer reports traffic shape (requests, queries, batch
//! widths), cache effectiveness (hits / misses / coalesced admissions),
//! and solver amortization (grid calls vs lanes) through the
//! `swcc-obs` dispatch functions. As everywhere else in the workspace,
//! nothing is recorded unless a recorder is installed
//! ([`swcc_obs::install`]) or a capture span is active; the binaries
//! install a registry covering both these names and the model-layer
//! names ([`swcc_core::metrics::register`]).

use swcc_obs::RegistryBuilder;

/// Request lines handled (control commands and batches alike).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Individual query points answered across all batch requests (each
/// sweep point counts once).
pub const SERVE_QUERIES: &str = "serve.queries";
/// Requests answered with an error response (parse failures, invalid
/// queries, solver errors, panics).
pub const SERVE_ERRORS: &str = "serve.errors";
/// Connections accepted by the listener pool.
pub const SERVE_CONNECTIONS: &str = "serve.connections";

/// Query points answered from a ready cache entry.
pub const SERVE_CACHE_HITS: &str = "serve.cache.hits";
/// Query points that claimed a cold cache slot and solved it.
pub const SERVE_CACHE_MISSES: &str = "serve.cache.misses";
/// Query points that attached to another request's in-flight solve
/// instead of solving (single-flight admission).
pub const SERVE_CACHE_COALESCED: &str = "serve.cache.coalesced";

/// Batch solver calls made on behalf of cache misses (one MVA grid per
/// distinct processor count, one Patel batch for all network lanes).
pub const SERVE_SOLVES: &str = "serve.solves";
/// Lanes submitted across all serve-side solver calls.
pub const SERVE_SOLVE_LANES: &str = "serve.solve_lanes";

/// `telemetry` protocol commands answered.
pub const SERVE_TELEMETRY_REQUESTS: &str = "serve.telemetry.requests";
/// Exposition-listener scrapes served (`--telemetry-addr`).
pub const SERVE_TELEMETRY_SCRAPES: &str = "serve.telemetry.scrapes";
/// Requests captured into the slow-request ring (over
/// `--slow-threshold-us`).
pub const SERVE_SLOW_CAPTURED: &str = "serve.slow.captured";
/// Lines appended to the structured access log.
pub const SERVE_ACCESS_LOG_LINES: &str = "serve.access_log.lines";
/// Access-log lines lost to write errors.
pub const SERVE_ACCESS_LOG_ERRORS: &str = "serve.access_log.errors";

/// Distribution of query points per batch request.
pub const SERVE_BATCH_WIDTH: &str = "serve.batch_width";
/// Distribution of wall-clock microseconds per request.
pub const SERVE_REQUEST_US: &str = "serve.request_us";
/// Distribution of microseconds spent waiting on another request's
/// in-flight solve (coalesced admissions only).
pub const SERVE_FLIGHT_WAIT_US: &str = "serve.flight_wait_us";

// --- Trace event names (see `swcc_obs::trace`) -------------------------

/// Span around one batch request. Fields: `queries`, `points`.
pub const EV_SERVE_REQUEST: &str = "serve.request";
/// Span around one serve-side solver call. Fields: `machine`
/// (`"bus"` / `"network"`), `lanes`.
pub const EV_SERVE_SOLVE: &str = "serve.solve";

/// Registers every serve-layer metric on the builder.
#[must_use]
pub fn register(builder: RegistryBuilder) -> RegistryBuilder {
    builder
        .counter(SERVE_REQUESTS)
        .counter(SERVE_QUERIES)
        .counter(SERVE_ERRORS)
        .counter(SERVE_CONNECTIONS)
        .counter(SERVE_CACHE_HITS)
        .counter(SERVE_CACHE_MISSES)
        .counter(SERVE_CACHE_COALESCED)
        .counter(SERVE_SOLVES)
        .counter(SERVE_SOLVE_LANES)
        .counter(SERVE_TELEMETRY_REQUESTS)
        .counter(SERVE_TELEMETRY_SCRAPES)
        .counter(SERVE_SLOW_CAPTURED)
        .counter(SERVE_ACCESS_LOG_LINES)
        .counter(SERVE_ACCESS_LOG_ERRORS)
        .histogram(
            SERVE_BATCH_WIDTH,
            &[
                1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
            ],
        )
        .histogram(
            SERVE_REQUEST_US,
            &[
                10.0,
                100.0,
                1_000.0,
                5_000.0,
                20_000.0,
                100_000.0,
                1_000_000.0,
            ],
        )
        .histogram(
            SERVE_FLIGHT_WAIT_US,
            &[
                10.0,
                100.0,
                1_000.0,
                5_000.0,
                20_000.0,
                100_000.0,
                1_000_000.0,
            ],
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_name() {
        let registry = register(RegistryBuilder::new()).build();
        for name in [
            SERVE_REQUESTS,
            SERVE_QUERIES,
            SERVE_ERRORS,
            SERVE_CONNECTIONS,
            SERVE_CACHE_HITS,
            SERVE_CACHE_MISSES,
            SERVE_CACHE_COALESCED,
            SERVE_SOLVES,
            SERVE_SOLVE_LANES,
            SERVE_TELEMETRY_REQUESTS,
            SERVE_TELEMETRY_SCRAPES,
            SERVE_SLOW_CAPTURED,
            SERVE_ACCESS_LOG_LINES,
            SERVE_ACCESS_LOG_ERRORS,
        ] {
            assert_eq!(registry.counter_value(name), Some(0), "{name}");
        }
        for name in [SERVE_BATCH_WIDTH, SERVE_REQUEST_US, SERVE_FLIGHT_WAIT_US] {
            assert!(registry.histogram(name).is_some(), "{name}");
        }
    }
}
