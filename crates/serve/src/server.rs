//! The query engine and TCP service.
//!
//! Request handling splits into a pure engine ([`handle_request`] /
//! [`run_batch`], driven directly by the in-process tests) and thin
//! socket plumbing ([`spawn`] / [`RunningServer`], a pre-forked pool of
//! blocking accept loops).
//!
//! ## Admission and bit-identity
//!
//! Every query point reduces to a queueing-solver input before it
//! touches the cache:
//!
//! * **Bus** — `analyze_bus` depends on the workload only through the
//!   demand `(c, b)`, and the contention solve only through
//!   `(service, think) = (b, c − b)`. The cache key is those bits plus
//!   the processor count, and the cached value is the solver outputs
//!   `(waiting, bus_utilization)`. Reassembling through
//!   [`BusPerformance::from_queue_solution`] reproduces the direct
//!   call's getters bitwise, because [`machine_repairman_grid`] lanes
//!   are bit-identical to scalar [`machine_repairman`] solves.
//! * **Network** — likewise keyed on
//!   `(transaction_size, transaction_rate)` bits plus the stage count,
//!   caching the solved [`OperatingPoint`]. Misses are solved by
//!   [`BatchPatelSolver::solve_grid`], whose cold lanes are
//!   bit-identical to the pointwise guarded-Newton solver
//!   (`patel::solve_with`) — *not* the legacy 200-step bisection that
//!   `analyze_network` still uses, so served network results match the
//!   modern solver path.
//!
//! Both keys use [`PointKey::SHARED_SCHEME`]: the solved value depends
//! on the scheme only through the demand bits, so two schemes (or two
//! workloads) that induce the same queue share one cache entry.
//!
//! Admission is single-flight: the first request to miss a key claims
//! it and solves; concurrent requests for the same key attach to the
//! in-flight solve and block only on its completion. All of one
//! request's misses are drained into one solver call per machine family
//! (one MVA grid per distinct processor count, one Patel batch for
//! every network lane), so a cold 4096-point sweep costs one lockstep
//! solve, not 4096.
//!
//! ## Failure containment
//!
//! A panic while solving a batch is caught at the request boundary and
//! reported as an error response naming the originating request id —
//! the connection and the process keep serving. Claimed-but-unsolved
//! cache slots are released by a RAII guard ([`ClaimSet`]) during
//! unwinding, waking any coalesced waiters, who then re-claim and solve
//! for themselves ([`resolve_lanes`]'s retry arm).

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use swcc_core::batch::{machine_repairman_grid, BatchPatelSolver, Stages};
use swcc_core::bus::BusPerformance;
use swcc_core::cache::{Admission, Flight, PointKey, SolvedPointCache};
use swcc_core::demand::{scheme_demand, Demand};
use swcc_core::network::{NetworkPerformance, OperatingPoint};
use swcc_core::queue::machine_repairman;
use swcc_core::sensitivity::sensitivity_table_at;
use swcc_core::system::{BusSystemModel, NetworkSystemModel};
use swcc_core::workload::ParamId;

use swcc_obs::MetricsRegistry;

use crate::metrics;
use crate::protocol::{
    error_response, parse_request, push_f64, push_json_str, Batch, Machine, Query, QueryKind,
    Request, TelemetryFormat, PROTOCOL_VERSION,
};
use crate::telemetry::{self, RequestTrace, Telemetry};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Worker threads in the accept pool.
    pub workers: usize,
    /// Per-connection read timeout; an idle connection is closed after
    /// this long without a request line.
    pub read_timeout: Duration,
    /// How long a coalesced query waits on another request's in-flight
    /// solve before re-claiming the point for itself.
    pub solve_timeout: Duration,
    /// The process metrics registry, for the `telemetry` command's
    /// cumulative section (`None` renders `"cumulative":null`). This is
    /// the same registry the binary passes to [`swcc_obs::install`] —
    /// the trait-object install API deliberately hides the concrete
    /// snapshot type, so the server needs its own reference.
    pub registry: Option<&'static MetricsRegistry>,
    /// Optional bind address for the plain-text exposition listener
    /// (`GET /metrics`, `/telemetry`, `/slow`).
    pub telemetry_addr: Option<String>,
    /// Optional structured JSONL access-log path (append-or-create).
    pub access_log: Option<String>,
    /// Requests slower than this many microseconds are captured into
    /// the slow-request ring (`0` disables capture).
    pub slow_threshold_us: f64,
    /// Most slow-request captures retained (oldest evicted first).
    pub slow_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            read_timeout: Duration::from_secs(30),
            solve_timeout: Duration::from_secs(10),
            registry: None,
            telemetry_addr: None,
            access_log: None,
            slow_threshold_us: 100_000.0,
            slow_capacity: 32,
        }
    }
}

/// The solved bus contention point cached per `(service, think,
/// processors)`: exactly the two [`machine_repairman`] outputs
/// [`BusPerformance`] is assembled from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusPoint {
    /// Mean bus waiting time per transaction, `w`.
    pub waiting: f64,
    /// Bus (server) utilization.
    pub bus_utilization: f64,
}

/// Shared state behind all connections: the two solved-point caches
/// and the traffic counters backing `{"cmd":"stats"}`.
#[derive(Debug)]
pub struct ServeState {
    bus_points: SolvedPointCache<BusPoint>,
    net_points: SolvedPointCache<OperatingPoint>,
    solve_timeout: Duration,
    shutdown: AtomicBool,
    requests: AtomicU64,
    queries: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
    solves: AtomicU64,
    solve_lanes: AtomicU64,
    telemetry: Telemetry,
    registry: Option<&'static MetricsRegistry>,
}

impl ServeState {
    /// Fresh state with empty caches.
    pub fn new(config: &ServeConfig) -> Self {
        ServeState {
            bus_points: SolvedPointCache::new(),
            net_points: SolvedPointCache::new(),
            solve_timeout: config.solve_timeout,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            solve_lanes: AtomicU64::new(0),
            telemetry: Telemetry::new(
                config.access_log.as_deref(),
                config.slow_threshold_us,
                config.slow_capacity,
            ),
            registry: config.registry,
        }
    }

    /// The live telemetry hub (windows, slow captures, access log).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Renders the `telemetry` snapshot response (JSON, with the
    /// Prometheus exposition of the same snapshot inlined when asked).
    pub fn telemetry_response(&self, format: TelemetryFormat) -> String {
        self.telemetry
            .capture(telemetry::epoch_seconds(), self.registry)
            .to_response(format == TelemetryFormat::Prometheus)
    }

    /// Renders the `telemetry --slow` response: the retained captures,
    /// oldest first.
    pub fn slow_response(&self) -> String {
        let mut out = String::from("{\"ok\":true,\"slow\":[");
        for (i, capture) in self.telemetry.slow_captures().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(capture);
        }
        out.push_str("]}");
        out
    }

    /// True once a shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests a graceful shutdown (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Renders the stats response line.
    pub fn stats_response(&self) -> String {
        use std::fmt::Write as _;
        let bus = self.bus_points.stats();
        let net = self.net_points.stats();
        let mut out = String::from("{\"ok\":true,\"stats\":{");
        let _ = write!(
            out,
            "\"requests\":{},\"queries\":{},\"errors\":{},\"connections\":{},\
             \"solves\":{},\"solve_lanes\":{},",
            self.requests.load(Ordering::Relaxed),
            self.queries.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.connections.load(Ordering::Relaxed),
            self.solves.load(Ordering::Relaxed),
            self.solve_lanes.load(Ordering::Relaxed),
        );
        let _ = write!(
            out,
            "\"uptime_s\":{},\"build\":{{\"commit\":",
            self.telemetry.uptime_s()
        );
        push_json_str(&mut out, telemetry::build_commit());
        out.push_str(",\"rustc\":");
        push_json_str(&mut out, telemetry::build_rustc());
        out.push_str(",\"profile\":");
        push_json_str(&mut out, telemetry::build_profile());
        out.push_str("},");
        let _ = write!(
            out,
            "\"cache\":{{\"hits\":{},\"misses\":{},\"coalesced\":{},\"inserts\":{},\
             \"probes\":{},\"entries\":{}}}}}}}",
            bus.hits + net.hits,
            bus.misses + net.misses,
            bus.coalesced + net.coalesced,
            bus.inserts + net.inserts,
            bus.probes + net.probes,
            self.bus_points.len() + self.net_points.len(),
        );
        out
    }
}

/// How a query point was answered, reported per point in full responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Provenance {
    Hit,
    Miss,
    Coalesced,
}

impl Provenance {
    fn name(self) -> &'static str {
        match self {
            Provenance::Hit => "hit",
            Provenance::Miss => "miss",
            Provenance::Coalesced => "coalesced",
        }
    }
}

enum LaneState<V> {
    /// Claimed by this request; value lands in the [`ClaimSet`] after
    /// the batch solve.
    Ours(Provenance),
    /// Answered.
    Value(V, Provenance),
    /// Attached to another request's in-flight solve.
    Wait(Arc<Flight<V>>),
}

struct Lane<V> {
    key: PointKey,
    demand: Demand,
    state: LaneState<V>,
}

#[derive(Default)]
struct Acct {
    hits: u64,
    misses: u64,
    coalesced: u64,
}

/// RAII over this request's claimed cache slots: `publish` moves a
/// slot from pending to solved; anything still pending on drop (solver
/// error, panic) is aborted so coalesced waiters wake and re-claim.
struct ClaimSet<'a, V: Copy> {
    cache: &'a SolvedPointCache<V>,
    pending: HashSet<PointKey>,
    solved: HashMap<PointKey, V>,
}

impl<'a, V: Copy> ClaimSet<'a, V> {
    fn new(cache: &'a SolvedPointCache<V>) -> Self {
        ClaimSet {
            cache,
            pending: HashSet::new(),
            solved: HashMap::new(),
        }
    }

    fn claim(&mut self, key: PointKey) {
        self.pending.insert(key);
    }

    fn owns(&self, key: &PointKey) -> bool {
        self.pending.contains(key)
    }

    fn pending_keys(&self) -> Vec<PointKey> {
        self.pending.iter().copied().collect()
    }

    fn publish(&mut self, key: PointKey, value: V) {
        self.cache.publish(key, value);
        self.pending.remove(&key);
        self.solved.insert(key, value);
    }

    fn solved(&self, key: &PointKey) -> Option<V> {
        self.solved.get(key).copied()
    }
}

impl<V: Copy> Drop for ClaimSet<'_, V> {
    fn drop(&mut self) {
        for key in &self.pending {
            self.cache.abort(key);
        }
    }
}

fn admit<V: Copy>(
    cache: &SolvedPointCache<V>,
    lanes: &mut [Lane<V>],
    claims: &mut ClaimSet<'_, V>,
    acct: &mut Acct,
) {
    for lane in lanes.iter_mut() {
        lane.state = match cache.begin(lane.key) {
            Admission::Hit(v) => {
                acct.hits += 1;
                LaneState::Value(v, Provenance::Hit)
            }
            Admission::Claimed => {
                acct.misses += 1;
                claims.claim(lane.key);
                LaneState::Ours(Provenance::Miss)
            }
            Admission::Shared(flight) => {
                acct.coalesced += 1;
                if claims.owns(&lane.key) {
                    // A duplicate point within this request coalesces
                    // onto our own claim; its value is in the ClaimSet
                    // after the batch solve, no waiting needed.
                    LaneState::Ours(Provenance::Coalesced)
                } else {
                    LaneState::Wait(flight)
                }
            }
        };
    }
}

/// Settles every lane to a value: claimed lanes read the batch-solve
/// result, coalesced lanes wait on the owning request's flight — with
/// one re-claim retry if that request aborted or the wait timed out.
fn resolve_lanes<V: Copy>(
    cache: &SolvedPointCache<V>,
    lanes: &mut [Lane<V>],
    claims: &ClaimSet<'_, V>,
    timeout: Duration,
    wait_us: &mut f64,
    solve_one: &mut dyn FnMut(&PointKey) -> Result<V, String>,
) -> Result<(), String> {
    for lane in lanes.iter_mut() {
        let next = match &lane.state {
            LaneState::Value(..) => continue,
            LaneState::Ours(provenance) => {
                let v = claims
                    .solved(&lane.key)
                    .ok_or("internal: claimed point missing after batch solve")?;
                LaneState::Value(v, *provenance)
            }
            LaneState::Wait(flight) => {
                let started = Instant::now();
                let got = flight.wait_for(timeout);
                let waited_us = started.elapsed().as_secs_f64() * 1e6;
                *wait_us += waited_us;
                if swcc_obs::enabled() {
                    swcc_obs::observe(metrics::SERVE_FLIGHT_WAIT_US, waited_us);
                }
                match got {
                    Some(v) => LaneState::Value(v, Provenance::Coalesced),
                    // The owning request aborted (solver error or
                    // panic) or is stuck past the timeout: take the
                    // point over ourselves.
                    None => match cache.begin(lane.key) {
                        Admission::Hit(v) => LaneState::Value(v, Provenance::Coalesced),
                        Admission::Claimed => match solve_one(&lane.key) {
                            Ok(v) => {
                                cache.publish(lane.key, v);
                                LaneState::Value(v, Provenance::Miss)
                            }
                            Err(e) => {
                                cache.abort(&lane.key);
                                return Err(e);
                            }
                        },
                        Admission::Shared(flight) => match flight.wait_for(timeout) {
                            Some(v) => LaneState::Value(v, Provenance::Coalesced),
                            None => {
                                return Err("timed out waiting for an in-flight solve".to_string())
                            }
                        },
                    },
                }
            }
        };
        lane.state = next;
    }
    Ok(())
}

fn lane_value<V: Copy>(lane: &Lane<V>) -> Result<(V, Provenance), String> {
    match &lane.state {
        LaneState::Value(v, p) => Ok((*v, *p)),
        // resolve_lanes settles every lane; answering an internal
        // error beats panicking mid-response if that ever regresses.
        _ => Err("internal: lane left unsettled after resolve".to_string()),
    }
}

fn bus_key(demand: &Demand, processors: u32) -> PointKey {
    PointKey {
        service: demand.interconnect().to_bits(),
        think: demand.think_time().to_bits(),
        scheme: PointKey::SHARED_SCHEME,
        machine: processors,
    }
}

fn net_key(demand: &Demand, stages: u32) -> PointKey {
    PointKey {
        service: demand.transaction_size().to_bits(),
        think: demand.transaction_rate().to_bits(),
        scheme: PointKey::SHARED_SCHEME,
        machine: stages,
    }
}

fn solve_bus_one(key: &PointKey) -> Result<BusPoint, String> {
    let mva = machine_repairman(
        key.machine,
        f64::from_bits(key.service),
        f64::from_bits(key.think),
    )
    .map_err(|e| e.to_string())?;
    Ok(BusPoint {
        waiting: mva.waiting(),
        bus_utilization: mva.server_utilization(),
    })
}

fn solve_net_one(key: &PointKey) -> Result<OperatingPoint, String> {
    let batch = BatchPatelSolver::new()
        .solve_grid(
            &[f64::from_bits(key.think)],
            &[f64::from_bits(key.service)],
            &Stages::Uniform(key.machine),
            None,
        )
        .map_err(|e| e.to_string())?;
    batch
        .points()
        .first()
        .copied()
        .ok_or_else(|| "internal: one-lane network solve returned no points".to_string())
}

enum QueryPlan {
    Bus { start: usize, len: usize },
    Net { start: usize, len: usize },
    Sensitivity { ranking: Vec<(ParamId, f64)> },
}

fn record_solve(state: &ServeState, lanes: usize) {
    state.solves.fetch_add(1, Ordering::Relaxed);
    state.solve_lanes.fetch_add(lanes as u64, Ordering::Relaxed);
    if swcc_obs::enabled() {
        swcc_obs::counter_add(metrics::SERVE_SOLVES, 1);
        swcc_obs::counter_add(metrics::SERVE_SOLVE_LANES, lanes as u64);
    }
}

/// Executes one parsed batch and renders its response line.
///
/// # Errors
///
/// Returns a message (already naming the offending query where one is
/// identifiable) to be wrapped by [`error_response`].
pub fn run_batch(state: &ServeState, batch: &Batch) -> Result<String, String> {
    run_batch_traced(state, batch, "", &mut RequestTrace::default())
}

/// [`run_batch`] with request-scoped attribution: the request id lands
/// on the `serve.request` span and in the response; phase timings,
/// cache split, and flight waits accumulate into `trace` for the
/// access log and the slow-request capture.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_batch_traced(
    state: &ServeState,
    batch: &Batch,
    request_id: &str,
    trace: &mut RequestTrace,
) -> Result<String, String> {
    let started = Instant::now();
    let bus_system = BusSystemModel::new();

    // --- Plan: expand every query point to a cache key + demand. -----
    let phase_started = Instant::now();
    let mut plans: Vec<QueryPlan> = Vec::with_capacity(batch.queries.len());
    let mut bus_lanes: Vec<Lane<BusPoint>> = Vec::new();
    let mut net_lanes: Vec<Lane<OperatingPoint>> = Vec::new();
    let mut points = 0u64;
    for (i, query) in batch.queries.iter().enumerate() {
        // Log the protocol's wire spelling ("software-flush"), not the
        // human Display name ("Software-Flush").
        trace.note_scheme(&query.scheme.to_string().to_ascii_lowercase());
        match query.machine {
            Machine::Bus { processors } => {
                if query.kind == QueryKind::Sensitivity {
                    let workload = query
                        .workloads
                        .first()
                        .ok_or_else(|| format!("query {i}: no workload to rank"))?;
                    let table = sensitivity_table_at(processors, workload)
                        .map_err(|e| format!("query {i}: {e}"))?;
                    points += 1;
                    plans.push(QueryPlan::Sensitivity {
                        ranking: table.ranking(query.scheme),
                    });
                    continue;
                }
                let start = bus_lanes.len();
                for w in &query.workloads {
                    let demand = scheme_demand(query.scheme, w, &bus_system)
                        .map_err(|e| format!("query {i}: {e}"))?;
                    bus_lanes.push(Lane {
                        key: bus_key(&demand, processors),
                        demand,
                        state: LaneState::Ours(Provenance::Miss), // placeholder until admission
                    });
                }
                points += query.workloads.len() as u64;
                plans.push(QueryPlan::Bus {
                    start,
                    len: query.workloads.len(),
                });
            }
            Machine::Network { stages } => {
                let system = NetworkSystemModel::new(stages);
                let start = net_lanes.len();
                for w in &query.workloads {
                    let demand = scheme_demand(query.scheme, w, &system)
                        .map_err(|e| format!("query {i}: {e}"))?;
                    net_lanes.push(Lane {
                        key: net_key(&demand, stages),
                        demand,
                        state: LaneState::Ours(Provenance::Miss),
                    });
                }
                points += query.workloads.len() as u64;
                plans.push(QueryPlan::Net {
                    start,
                    len: query.workloads.len(),
                });
            }
        }
    }

    trace.queries = batch.queries.len() as u64;
    trace.points = points;
    trace.phase("plan", phase_started, started, 0);

    state.queries.fetch_add(points, Ordering::Relaxed);
    if swcc_obs::enabled() {
        swcc_obs::counter_add(metrics::SERVE_QUERIES, points);
        swcc_obs::observe(metrics::SERVE_BATCH_WIDTH, points as f64);
    }
    let _span = swcc_obs::span(
        metrics::EV_SERVE_REQUEST,
        &[
            swcc_obs::Field::text("request", request_id.to_string()),
            swcc_obs::Field::u64("queries", batch.queries.len() as u64),
            swcc_obs::Field::u64("points", points),
        ],
    );

    // --- Admit: single-flight begin() on every point. ----------------
    let phase_started = Instant::now();
    let mut acct = Acct::default();
    let mut bus_claims = ClaimSet::new(&state.bus_points);
    let mut net_claims = ClaimSet::new(&state.net_points);
    admit(
        &state.bus_points,
        &mut bus_lanes,
        &mut bus_claims,
        &mut acct,
    );
    admit(
        &state.net_points,
        &mut net_lanes,
        &mut net_claims,
        &mut acct,
    );
    trace.phase("admit", phase_started, started, 0);

    // --- Solve: drain all claims into one grid call per machine
    // family (bus grids are per distinct processor count).
    let bus_pending = bus_claims.pending_keys();
    if !bus_pending.is_empty() {
        let phase_started = Instant::now();
        let lanes_total = bus_pending.len() as u64;
        let mut groups: HashMap<u32, Vec<PointKey>> = HashMap::new();
        for key in bus_pending {
            groups.entry(key.machine).or_default().push(key);
        }
        for (processors, keys) in groups {
            let services: Vec<f64> = keys.iter().map(|k| f64::from_bits(k.service)).collect();
            let thinks: Vec<f64> = keys.iter().map(|k| f64::from_bits(k.think)).collect();
            let _solve_span = swcc_obs::span(
                metrics::EV_SERVE_SOLVE,
                &[
                    swcc_obs::Field::str("machine", "bus"),
                    swcc_obs::Field::u64("lanes", keys.len() as u64),
                ],
            );
            let grid = machine_repairman_grid(processors, &services, &thinks)
                .map_err(|e| format!("bus solve failed: {e}"))?;
            record_solve(state, keys.len());
            for (key, mva) in keys.iter().zip(&grid) {
                bus_claims.publish(
                    *key,
                    BusPoint {
                        waiting: mva.waiting(),
                        bus_utilization: mva.server_utilization(),
                    },
                );
            }
        }
        trace.phase("solve.bus", phase_started, started, lanes_total);
    }
    let net_pending = net_claims.pending_keys();
    if !net_pending.is_empty() {
        let phase_started = Instant::now();
        let rates: Vec<f64> = net_pending
            .iter()
            .map(|k| f64::from_bits(k.think))
            .collect();
        let sizes: Vec<f64> = net_pending
            .iter()
            .map(|k| f64::from_bits(k.service))
            .collect();
        let stage_counts: Vec<u32> = net_pending.iter().map(|k| k.machine).collect();
        let _solve_span = swcc_obs::span(
            metrics::EV_SERVE_SOLVE,
            &[
                swcc_obs::Field::str("machine", "network"),
                swcc_obs::Field::u64("lanes", net_pending.len() as u64),
            ],
        );
        let batch_solution = BatchPatelSolver::new()
            .solve_grid(&rates, &sizes, &Stages::PerLane(&stage_counts), None)
            .map_err(|e| format!("network solve failed: {e}"))?;
        record_solve(state, net_pending.len());
        for (key, point) in net_pending.iter().zip(batch_solution.points()) {
            net_claims.publish(*key, *point);
        }
        trace.phase(
            "solve.network",
            phase_started,
            started,
            net_pending.len() as u64,
        );
    }

    // --- Resolve: settle coalesced waits (after our publishes, so a
    // duplicate key never deadlocks on itself).
    let phase_started = Instant::now();
    let mut flight_wait_us = 0.0;
    resolve_lanes(
        &state.bus_points,
        &mut bus_lanes,
        &bus_claims,
        state.solve_timeout,
        &mut flight_wait_us,
        &mut solve_bus_one,
    )?;
    resolve_lanes(
        &state.net_points,
        &mut net_lanes,
        &net_claims,
        state.solve_timeout,
        &mut flight_wait_us,
        &mut solve_net_one,
    )?;
    trace.flight_wait_us = flight_wait_us;
    trace.phase("resolve", phase_started, started, 0);

    // --- Render. ------------------------------------------------------
    let phase_started = Instant::now();
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + 24 * points as usize);
    out.push_str("{\"ok\":true");
    if let Some(id) = batch.id {
        let _ = write!(out, ",\"id\":{id}");
    }
    if !request_id.is_empty() {
        out.push_str(",\"request\":");
        push_json_str(&mut out, request_id);
    }
    out.push_str(",\"results\":[");
    for (qi, (plan, query)) in plans.iter().zip(&batch.queries).enumerate() {
        if qi > 0 {
            out.push(',');
        }
        match plan {
            QueryPlan::Sensitivity { ranking } => {
                out.push_str("{\"kind\":\"sensitivity\",\"scheme\":");
                push_json_str(&mut out, &query.scheme.to_string());
                out.push_str(",\"ranking\":[");
                for (j, (param, percent)) in ranking.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"param\":");
                    push_json_str(&mut out, param.name());
                    out.push_str(",\"percent\":");
                    push_f64(&mut out, *percent);
                    out.push('}');
                }
                out.push_str("]}");
            }
            QueryPlan::Bus { start, len } => {
                let lanes = bus_lanes
                    .get(*start..*start + *len)
                    .ok_or_else(|| format!("internal: bus plan for query {qi} out of range"))?;
                render_bus_query(&mut out, query, lanes, batch.compact)?;
            }
            QueryPlan::Net { start, len } => {
                let lanes = net_lanes
                    .get(*start..*start + *len)
                    .ok_or_else(|| format!("internal: net plan for query {qi} out of range"))?;
                render_net_query(&mut out, query, lanes, batch.compact)?;
            }
        }
    }
    let _ = write!(
        out,
        "],\"cache\":{{\"hits\":{},\"misses\":{},\"coalesced\":{}}}",
        acct.hits, acct.misses, acct.coalesced
    );
    trace.hits = acct.hits;
    trace.misses = acct.misses;
    trace.coalesced = acct.coalesced;
    if swcc_obs::enabled() {
        swcc_obs::counter_add(metrics::SERVE_CACHE_HITS, acct.hits);
        swcc_obs::counter_add(metrics::SERVE_CACHE_MISSES, acct.misses);
        swcc_obs::counter_add(metrics::SERVE_CACHE_COALESCED, acct.coalesced);
    }
    trace.phase("render", phase_started, started, 0);
    let _ = write!(
        out,
        ",\"elapsed_us\":{}}}",
        started.elapsed().as_micros() as u64
    );
    Ok(out)
}

fn render_bus_query(
    out: &mut String,
    query: &Query,
    lanes: &[Lane<BusPoint>],
    compact: bool,
) -> Result<(), String> {
    let Machine::Bus { processors } = query.machine else {
        return Err("internal: bus plan paired with a non-bus machine".to_string());
    };
    if compact {
        out.push_str("{\"values\":[");
        for (j, lane) in lanes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let (v, _) = lane_value(lane)?;
            let perf = BusPerformance::from_queue_solution(
                query.scheme,
                processors,
                lane.demand,
                v.waiting,
                v.bus_utilization,
            );
            let primary = match query.kind {
                QueryKind::Penalty => perf.waiting(),
                _ => perf.power(),
            };
            push_f64(out, primary);
        }
        out.push_str("]}");
        return Ok(());
    }
    out.push_str("{\"points\":[");
    for (j, lane) in lanes.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        let (v, provenance) = lane_value(lane)?;
        let perf = BusPerformance::from_queue_solution(
            query.scheme,
            processors,
            lane.demand,
            v.waiting,
            v.bus_utilization,
        );
        out.push('{');
        if let Some(value) = query.sweep_values.get(j) {
            out.push_str("\"value\":");
            push_f64(out, *value);
            out.push(',');
        }
        out.push_str("\"power\":");
        push_f64(out, perf.power());
        out.push_str(",\"utilization\":");
        push_f64(out, perf.utilization());
        out.push_str(",\"cpi\":");
        push_f64(out, perf.cycles_per_instruction());
        out.push_str(",\"waiting\":");
        push_f64(out, perf.waiting());
        out.push_str(",\"bus_utilization\":");
        push_f64(out, perf.bus_utilization());
        out.push_str(",\"cached\":");
        push_json_str(out, provenance.name());
        out.push('}');
    }
    out.push_str("]}");
    Ok(())
}

fn render_net_query(
    out: &mut String,
    query: &Query,
    lanes: &[Lane<OperatingPoint>],
    compact: bool,
) -> Result<(), String> {
    let Machine::Network { stages } = query.machine else {
        return Err("internal: net plan paired with a non-network machine".to_string());
    };
    if compact {
        out.push_str("{\"values\":[");
        for (j, lane) in lanes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let (point, _) = lane_value(lane)?;
            let perf =
                NetworkPerformance::from_operating_point(query.scheme, stages, lane.demand, point);
            push_f64(out, perf.power());
        }
        out.push_str("]}");
        return Ok(());
    }
    out.push_str("{\"points\":[");
    for (j, lane) in lanes.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        let (point, provenance) = lane_value(lane)?;
        let perf =
            NetworkPerformance::from_operating_point(query.scheme, stages, lane.demand, point);
        out.push('{');
        if let Some(value) = query.sweep_values.get(j) {
            out.push_str("\"value\":");
            push_f64(out, *value);
            out.push(',');
        }
        out.push_str("\"power\":");
        push_f64(out, perf.power());
        out.push_str(",\"utilization\":");
        push_f64(out, perf.utilization());
        out.push_str(",\"think_fraction\":");
        push_f64(out, point.think_fraction());
        out.push_str(",\"accepted_rate\":");
        push_f64(out, point.accepted_rate());
        out.push_str(",\"cached\":");
        push_json_str(out, provenance.name());
        out.push('}');
    }
    out.push_str("]}");
    Ok(())
}

/// Handles one request line, returning the response line and whether a
/// shutdown was requested.
pub fn handle_request(state: &ServeState, line: &str) -> (String, bool) {
    let (response, shutdown, pending) = handle_request_deferred(state, line);
    pending.finish(state);
    (response, shutdown)
}

/// Everything a finished request needs recorded into telemetry, minus
/// the final duration: the connection path calls [`PendingRecord::finish`]
/// only after the response is flushed to the socket, so the recorded
/// duration matches what a client measures (solve *and* serialization).
#[derive(Debug)]
pub struct PendingRecord {
    cmd: &'static str,
    ok: bool,
    request_id: Option<String>,
    trace: RequestTrace,
    started: Instant,
}

impl PendingRecord {
    /// Folds the request into the windows / access log / slow ring,
    /// with the duration measured up to now.
    pub fn finish(self, state: &ServeState) {
        let duration_us = self.started.elapsed().as_secs_f64() * 1e6;
        if swcc_obs::enabled() {
            swcc_obs::observe(metrics::SERVE_REQUEST_US, duration_us);
        }
        let rid = self
            .request_id
            .unwrap_or_else(|| state.telemetry.next_request_id());
        state.telemetry.record(
            telemetry::epoch_seconds(),
            &rid,
            self.cmd,
            self.ok,
            duration_us,
            &self.trace,
        );
    }
}

/// [`handle_request`] with telemetry recording deferred to the caller.
pub fn handle_request_deferred(state: &ServeState, line: &str) -> (String, bool, PendingRecord) {
    let started = Instant::now();
    state.requests.fetch_add(1, Ordering::Relaxed);
    if swcc_obs::enabled() {
        swcc_obs::counter_add(metrics::SERVE_REQUESTS, 1);
    }
    let mut trace = RequestTrace::default();
    let mut request_id: Option<String> = None;
    let (cmd, response, shutdown, ok) = match parse_request(line) {
        Err(e) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            if swcc_obs::enabled() {
                swcc_obs::counter_add(metrics::SERVE_ERRORS, 1);
            }
            // Echo the correlation id even for malformed batches, so
            // the client can attribute the error to its request.
            let id = serde_json::from_str::<serde::Value>(line)
                .ok()
                .and_then(|v| v.get_field("id").and_then(serde::Value::as_u64));
            ("error", error_response(id, &e), false, false)
        }
        Ok(Request::Ping) => (
            "ping",
            format!("{{\"ok\":true,\"pong\":true,\"version\":\"{PROTOCOL_VERSION}\"}}"),
            false,
            true,
        ),
        Ok(Request::Stats) => ("stats", state.stats_response(), false, true),
        Ok(Request::Telemetry { slow, format }) => {
            if swcc_obs::enabled() {
                swcc_obs::counter_add(metrics::SERVE_TELEMETRY_REQUESTS, 1);
            }
            let response = if slow {
                state.slow_response()
            } else {
                state.telemetry_response(format)
            };
            ("telemetry", response, false, true)
        }
        Ok(Request::Shutdown) => {
            state.request_shutdown();
            (
                "shutdown",
                "{\"ok\":true,\"shutting_down\":true}".to_string(),
                true,
                true,
            )
        }
        Ok(Request::Batch(batch)) => {
            let id = batch.id;
            let rid = batch
                .request
                .clone()
                .unwrap_or_else(|| state.telemetry.next_request_id());
            // A panic while solving must not take down the worker: the
            // ClaimSet drops during unwinding (waking coalesced
            // waiters), and the client gets an error naming its
            // request instead of a dead connection.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_batch_traced(state, &batch, &rid, &mut trace)
            }));
            request_id = Some(rid);
            match outcome {
                Ok(Ok(response)) => ("batch", response, false, true),
                Ok(Err(e)) => {
                    state.errors.fetch_add(1, Ordering::Relaxed);
                    if swcc_obs::enabled() {
                        swcc_obs::counter_add(metrics::SERVE_ERRORS, 1);
                    }
                    ("batch", error_response(id, &e), false, false)
                }
                Err(panic) => {
                    state.errors.fetch_add(1, Ordering::Relaxed);
                    if swcc_obs::enabled() {
                        swcc_obs::counter_add(metrics::SERVE_ERRORS, 1);
                    }
                    let detail = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_string());
                    (
                        "batch",
                        error_response(id, &format!("internal panic while solving: {detail}")),
                        false,
                        false,
                    )
                }
            }
        }
    };
    (
        response,
        shutdown,
        PendingRecord {
            cmd,
            ok,
            request_id,
            trace,
            started,
        },
    )
}

fn serve_connection(
    state: &ServeState,
    stream: TcpStream,
    read_timeout: Duration,
) -> io::Result<bool> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        if state.shutting_down() {
            return Ok(true);
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(false),
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle past the read timeout: close; clients reconnect.
                return Ok(false);
            }
            Err(e) => return Err(e),
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (response, shutdown, pending) = handle_request_deferred(state, trimmed);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        // Recorded after the flush so the windowed latency matches what
        // a client measures (serialization and socket write included).
        pending.finish(state);
        if shutdown {
            return Ok(true);
        }
    }
}

/// A running server: worker pool plus the shared state.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    telemetry_addr: Option<SocketAddr>,
    state: Arc<ServeState>,
    handles: Vec<JoinHandle<()>>,
}

impl RunningServer {
    /// The bound address (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound exposition-listener address, when one was configured.
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.telemetry_addr
    }

    /// The shared state (stats and caches), for in-process inspection.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Requests shutdown and wakes workers blocked in `accept`.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
        for _ in 0..self.handles.len() {
            // Each connect pops one blocked accept; the worker sees the
            // flag and exits.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(addr) = self.telemetry_addr {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Waits for every worker to exit. Call [`Self::shutdown`] first
    /// (or send `{"cmd":"shutdown"}`) or this blocks indefinitely.
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// Binds the listener and starts the worker pool.
///
/// # Errors
///
/// Propagates bind/spawn I/O errors.
pub fn spawn(config: ServeConfig) -> io::Result<RunningServer> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let listener = Arc::new(listener);
    let state = Arc::new(ServeState::new(&config));
    let workers = config.workers.max(1);
    let mut handles = Vec::with_capacity(workers + 1);
    for i in 0..workers {
        let listener = Arc::clone(&listener);
        let state = Arc::clone(&state);
        let read_timeout = config.read_timeout;
        let handle = thread::Builder::new()
            .name(format!("swcc-serve-{i}"))
            .spawn(move || worker_loop(&listener, &state, addr, read_timeout))?;
        handles.push(handle);
    }
    let telemetry_addr = match &config.telemetry_addr {
        None => None,
        Some(bind) => {
            let telemetry_listener = TcpListener::bind(bind)?;
            let telemetry_addr = telemetry_listener.local_addr()?;
            let state = Arc::clone(&state);
            let handle = thread::Builder::new()
                .name("swcc-serve-telemetry".to_string())
                .spawn(move || telemetry_loop(&telemetry_listener, &state))?;
            handles.push(handle);
            Some(telemetry_addr)
        }
    };
    Ok(RunningServer {
        addr,
        telemetry_addr,
        state,
        handles,
    })
}

/// The exposition listener: a deliberately minimal HTTP/1.0-style
/// responder for scrapers. `GET /metrics` returns the Prometheus text
/// exposition, `GET /telemetry` the JSON snapshot, `GET /slow` the
/// slow-request captures. One request per connection.
fn telemetry_loop(listener: &TcpListener, state: &Arc<ServeState>) {
    loop {
        if state.shutting_down() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if state.shutting_down() {
            return;
        }
        let _ = serve_scrape(state, stream);
    }
}

fn serve_scrape(state: &ServeState, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => {
            let snapshot = state
                .telemetry
                .capture(telemetry::epoch_seconds(), state.registry);
            (
                "200 OK",
                "text/plain; version=0.0.4",
                snapshot.to_prometheus(),
            )
        }
        "/telemetry" => (
            "200 OK",
            "application/json",
            state.telemetry_response(TelemetryFormat::Json),
        ),
        "/slow" => ("200 OK", "application/json", state.slow_response()),
        _ => (
            "404 Not Found",
            "text/plain",
            "unknown path; try /metrics, /telemetry, /slow\n".to_string(),
        ),
    };
    if swcc_obs::enabled() {
        swcc_obs::counter_add(metrics::SERVE_TELEMETRY_SCRAPES, 1);
    }
    let mut writer = BufWriter::new(stream);
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

fn worker_loop(
    listener: &TcpListener,
    state: &Arc<ServeState>,
    addr: SocketAddr,
    read_timeout: Duration,
) {
    loop {
        if state.shutting_down() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if state.shutting_down() {
            return;
        }
        state.connections.fetch_add(1, Ordering::Relaxed);
        if swcc_obs::enabled() {
            swcc_obs::counter_add(metrics::SERVE_CONNECTIONS, 1);
        }
        if let Ok(true) = serve_connection(state, stream, read_timeout) {
            // This connection initiated shutdown: wake the peers
            // blocked in accept so the pool drains.
            for _ in 0..16 {
                let _ = TcpStream::connect(addr);
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swcc_core::bus::analyze_bus;
    use swcc_core::scheme::Scheme;
    use swcc_core::workload::{Level, WorkloadParams};

    fn state() -> ServeState {
        ServeState::new(&ServeConfig::default())
    }

    fn batch(line: &str) -> Batch {
        match parse_request(line).unwrap() {
            Request::Batch(b) => b,
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn bus_power_is_bit_identical_to_analyze_bus() {
        let state = state();
        let line =
            r#"{"queries":[{"scheme":"dragon","machine":{"interconnect":"bus","processors":16}}]}"#;
        let response = run_batch(&state, &batch(line)).unwrap();
        let parsed: serde::Value = serde_json::from_str(&response).unwrap();
        let point = parsed
            .get_field("results")
            .and_then(|r| r.get_index(0))
            .and_then(|q| q.get_field("points"))
            .and_then(|p| p.get_index(0))
            .unwrap();
        let direct = analyze_bus(
            Scheme::Dragon,
            &WorkloadParams::at_level(Level::Middle),
            &BusSystemModel::new(),
            16,
        )
        .unwrap();
        for (field, want) in [
            ("power", direct.power()),
            ("utilization", direct.utilization()),
            ("cpi", direct.cycles_per_instruction()),
            ("waiting", direct.waiting()),
            ("bus_utilization", direct.bus_utilization()),
        ] {
            let got = point
                .get_field(field)
                .and_then(serde::Value::as_f64)
                .unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "{field}");
        }
        assert_eq!(
            point.get_field("cached").and_then(serde::Value::as_str),
            Some("miss")
        );
    }

    #[test]
    fn repeat_queries_hit_the_cache_with_identical_bits() {
        let state = state();
        // Dragon's demand varies with shd (Base's does not, so a Base
        // sweep over shd would collapse to one cache key).
        let line = r#"{"compact":true,"queries":[{"scheme":"dragon","machine":{"interconnect":"bus","processors":8},"sweep":{"param":"shd","from":0.01,"to":0.2,"points":32}}]}"#;
        let cold = run_batch(&state, &batch(line)).unwrap();
        let warm = run_batch(&state, &batch(line)).unwrap();
        let values = |resp: &str| -> Vec<f64> {
            let parsed: serde::Value = serde_json::from_str(resp).unwrap();
            parsed
                .get_field("results")
                .and_then(|r| r.get_index(0))
                .and_then(|q| q.get_field("values"))
                .and_then(serde::Value::as_array)
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect()
        };
        let a = values(&cold);
        let b = values(&warm);
        assert_eq!(a.len(), 32);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let stats = state.bus_points.stats();
        assert_eq!(stats.misses, 32, "cold pass claims every point");
        assert!(stats.hits >= 32, "warm pass is all hits");
        assert_eq!(state.solves.load(Ordering::Relaxed), 1, "one grid call");
    }

    #[test]
    fn a_cold_sweep_is_one_grid_call() {
        let state = state();
        let line = r#"{"queries":[
            {"scheme":"software-flush","machine":{"interconnect":"bus","processors":16},"sweep":{"param":"shd","from":0.01,"to":0.3,"points":64}},
            {"scheme":"dragon","machine":{"interconnect":"bus","processors":16},"sweep":{"param":"shd","from":0.01,"to":0.3,"points":64}}
        ]}"#
        .replace('\n', " ");
        run_batch(&state, &batch(&line)).unwrap();
        // Both queries share one processor count, so every distinct
        // cold point drains into a single lockstep MVA grid. (Distinct
        // keys, not 128: schemes whose variations induce the same
        // queue share entries by design.)
        assert_eq!(state.solves.load(Ordering::Relaxed), 1);
        let entries = state.bus_points.len() as u64;
        assert_eq!(state.solve_lanes.load(Ordering::Relaxed), entries);
        assert!(entries >= 64, "at least one full sweep of distinct keys");
    }

    #[test]
    fn duplicate_points_within_a_request_coalesce_on_our_own_claim() {
        let state = state();
        // points=3 over a zero-width sweep: three identical workloads.
        let line = r#"{"queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":4},"sweep":{"param":"shd","from":0.1,"to":0.1,"points":3}}]}"#;
        let response = run_batch(&state, &batch(line)).unwrap();
        assert!(response.contains("\"ok\":true"));
        assert_eq!(state.solve_lanes.load(Ordering::Relaxed), 1);
        let parsed: serde::Value = serde_json::from_str(&response).unwrap();
        let cache = parsed.get_field("cache").unwrap();
        assert_eq!(
            cache.get_field("misses").and_then(serde::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            cache.get_field("coalesced").and_then(serde::Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn handle_request_reports_panics_with_the_request_id() {
        let state = state();
        // A panic inside run_batch is simulated by the solver being fed
        // an internally inconsistent state; absent a natural trigger,
        // exercise the catch_unwind plumbing directly.
        let result = catch_unwind(AssertUnwindSafe(|| {
            panic!("query 2 exploded");
        }));
        assert!(result.is_err());
        // The public surface: a malformed line still yields a response,
        // and the connection-level path never propagates panics.
        let (response, shutdown) = handle_request(&state, "{\"queries\":[]}");
        assert!(response.contains("\"ok\":false"));
        assert!(!shutdown);
        assert_eq!(state.errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_workload_expansion_is_an_error_response_not_a_panic() {
        // parse_query always emits >= 1 workload, so this batch can
        // only be constructed programmatically — exactly the shape the
        // request path must answer (not die on) if an upstream
        // invariant ever regresses.
        let state = state();
        let pathological = Batch {
            id: Some(7),
            request: None,
            compact: false,
            queries: vec![Query {
                kind: QueryKind::Sensitivity,
                scheme: Scheme::Dragon,
                machine: Machine::Bus { processors: 8 },
                workloads: Vec::new(),
                sweep_values: Vec::new(),
            }],
        };
        let err = run_batch(&state, &pathological).unwrap_err();
        assert!(err.contains("no workload"), "got: {err}");
    }

    #[test]
    fn short_sweep_values_render_without_panicking() {
        // sweep_values is documented as parallel to workloads; a
        // mismatch must degrade to omitting the `value` field for the
        // unmatched lanes, never to an index panic.
        let state = state();
        let line = r#"{"queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":4},"sweep":{"param":"shd","from":0.05,"to":0.2,"points":3}}]}"#;
        let mut mismatched = batch(line);
        mismatched.queries[0].sweep_values.truncate(1);
        let response = run_batch(&state, &mismatched).unwrap();
        let parsed: serde::Value = serde_json::from_str(&response).unwrap();
        let points = parsed
            .get_field("results")
            .and_then(|r| r.get_index(0))
            .and_then(|q| q.get_field("points"))
            .and_then(serde::Value::as_array)
            .unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[0].get_field("value").is_some());
        assert!(points[1].get_field("value").is_none());
        assert!(points[2].get_field("value").is_none());
    }

    #[test]
    fn stats_response_is_valid_json_with_expected_fields() {
        let state = state();
        let line =
            r#"{"queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":4}}]}"#;
        run_batch(&state, &batch(line)).unwrap();
        let stats: serde::Value = serde_json::from_str(&state.stats_response()).unwrap();
        let inner = stats.get_field("stats").unwrap();
        assert_eq!(
            inner.get_field("solves").and_then(serde::Value::as_u64),
            Some(1)
        );
        let cache = inner.get_field("cache").unwrap();
        assert_eq!(
            cache.get_field("entries").and_then(serde::Value::as_u64),
            Some(1)
        );
    }
}
