//! Closed-loop load harness for `swcc-serve`.
//!
//! ```text
//! swcc-loadgen --addr HOST:PORT [--connections N] [--duration-ms MS]
//!              [--sweep-points K] [--processors P] [--full]
//!              [--min-qps Q] [--min-hit-rate R] [--verify]
//!              [--out PATH] [--shutdown]
//! ```
//!
//! Each connection replays one compact batch request — all four
//! schemes swept over `shd` at `K` points each — as fast as the server
//! answers, after one untimed warmup round that populates the cache.
//! The report (stdout, and `--out` as JSON, schema `swcc-loadgen/v1`)
//! gives served-query throughput, request latency quantiles
//! ([`swcc_obs::quantile`]), and the server's cache counter deltas.
//!
//! Gates (process exits nonzero on violation):
//!
//! * every request must succeed (`"ok":true`);
//! * `--min-qps` — served queries/second floor;
//! * `--min-hit-rate` — cache hits ÷ admissions floor over the timed
//!   window (the warmup makes the steady state all-hits);
//! * the server's hit counter must move at all (the cache is actually
//!   in the serving path).
//!
//! `--verify` additionally replays a set of full-mode single queries
//! and bit-compares every served float against the equivalent direct
//! library call in this process — proving the wire format preserves
//! results exactly. Keep `--connections` at or below the server's
//! worker count: the server is one-thread-per-connection.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use serde::Value;
use swcc_core::batch::{BatchPatelSolver, Stages};
use swcc_core::bus::analyze_bus;
use swcc_core::demand::scheme_demand;
use swcc_core::network::NetworkPerformance;
use swcc_core::scheme::Scheme;
use swcc_core::system::{BusSystemModel, NetworkSystemModel};
use swcc_core::workload::{Level, WorkloadParams};

struct Args {
    addr: String,
    connections: usize,
    duration: Duration,
    sweep_points: u32,
    processors: u32,
    compact: bool,
    min_qps: f64,
    min_hit_rate: f64,
    verify: bool,
    out: Option<String>,
    shutdown: bool,
}

fn usage() -> &'static str {
    "usage: swcc-loadgen --addr HOST:PORT [--connections N] [--duration-ms MS] \
     [--sweep-points K] [--processors P] [--full] [--min-qps Q] \
     [--min-hit-rate R] [--verify] [--out PATH] [--shutdown]"
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        addr: String::new(),
        connections: 4,
        duration: Duration::from_millis(2000),
        sweep_points: 2048,
        processors: 16,
        compact: true,
        min_qps: 0.0,
        min_hit_rate: 0.0,
        verify: false,
        out: None,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--addr" => parsed.addr = value("--addr")?,
            "--connections" => {
                parsed.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
                if parsed.connections == 0 {
                    return Err("--connections must be at least 1".to_string());
                }
            }
            "--duration-ms" => {
                let ms: u64 = value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("--duration-ms: {e}"))?;
                parsed.duration = Duration::from_millis(ms.max(1));
            }
            "--sweep-points" => {
                parsed.sweep_points = value("--sweep-points")?
                    .parse()
                    .map_err(|e| format!("--sweep-points: {e}"))?;
                if parsed.sweep_points == 0 {
                    return Err("--sweep-points must be at least 1".to_string());
                }
            }
            "--processors" => {
                parsed.processors = value("--processors")?
                    .parse()
                    .map_err(|e| format!("--processors: {e}"))?;
            }
            "--full" => parsed.compact = false,
            "--min-qps" => {
                parsed.min_qps = value("--min-qps")?
                    .parse()
                    .map_err(|e| format!("--min-qps: {e}"))?;
            }
            "--min-hit-rate" => {
                parsed.min_hit_rate = value("--min-hit-rate")?
                    .parse()
                    .map_err(|e| format!("--min-hit-rate: {e}"))?;
            }
            "--verify" => parsed.verify = true,
            "--out" => parsed.out = Some(value("--out")?),
            "--shutdown" => parsed.shutdown = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    if parsed.addr.is_empty() {
        return Err(format!("--addr is required\n{}", usage()));
    }
    Ok(parsed)
}

/// One request line: every scheme swept over `shd`, bus machine.
fn build_request(args: &Args) -> String {
    use std::fmt::Write as _;
    let mut line = format!("{{\"compact\":{},\"queries\":[", args.compact);
    for (i, scheme) in ["base", "no-cache", "software-flush", "dragon"]
        .iter()
        .enumerate()
    {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(
            line,
            "{{\"scheme\":\"{scheme}\",\"machine\":{{\"interconnect\":\"bus\",\
             \"processors\":{}}},\"sweep\":{{\"param\":\"shd\",\"from\":0.02,\
             \"to\":0.2,\"points\":{}}}}}",
            args.processors, args.sweep_points
        );
    }
    line.push_str("]}");
    line
}

struct WorkerReport {
    requests: u64,
    queries: u64,
    errors: u64,
    latencies_us: Vec<f64>,
}

fn connect(addr: &str) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    Ok((reader, BufWriter::new(stream)))
}

fn round_trip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    line: &str,
    response: &mut String,
) -> Result<(), String> {
    writer
        .write_all(line.as_bytes())
        .map_err(|e| e.to_string())?;
    writer.write_all(b"\n").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    response.clear();
    let n = reader.read_line(response).map_err(|e| e.to_string())?;
    if n == 0 {
        return Err("server closed the connection".to_string());
    }
    Ok(())
}

fn worker(addr: String, line: String, queries_per_request: u64, deadline: Instant) -> WorkerReport {
    let mut report = WorkerReport {
        requests: 0,
        queries: 0,
        errors: 0,
        latencies_us: Vec::new(),
    };
    let (mut reader, mut writer) = match connect(&addr) {
        Ok(pair) => pair,
        Err(_) => {
            report.errors += 1;
            return report;
        }
    };
    let mut response = String::new();
    // Warmup round: populates the cache, untimed.
    if round_trip(&mut reader, &mut writer, &line, &mut response).is_err()
        || !response.starts_with("{\"ok\":true")
    {
        report.errors += 1;
        return report;
    }
    while Instant::now() < deadline {
        let started = Instant::now();
        if round_trip(&mut reader, &mut writer, &line, &mut response).is_err() {
            report.errors += 1;
            break;
        }
        report
            .latencies_us
            .push(started.elapsed().as_secs_f64() * 1e6);
        report.requests += 1;
        if response.starts_with("{\"ok\":true") {
            report.queries += queries_per_request;
        } else {
            report.errors += 1;
        }
    }
    report
}

fn server_stat(stats: &Value, path: &[&str]) -> u64 {
    let mut node = stats;
    for key in path {
        node = match node.get_field(key) {
            Some(v) => v,
            None => return 0,
        };
    }
    node.as_u64().unwrap_or(0)
}

fn fetch_stats(addr: &str) -> Result<Value, String> {
    let (mut reader, mut writer) = connect(addr)?;
    let mut response = String::new();
    round_trip(
        &mut reader,
        &mut writer,
        r#"{"cmd":"stats"}"#,
        &mut response,
    )?;
    serde_json::from_str(response.trim()).map_err(|e| format!("stats response: {e}"))
}

fn field_f64(value: &Value, name: &str) -> Result<f64, String> {
    value
        .get_field(name)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("response missing numeric \"{name}\""))
}

/// Bit-compares full-mode served results against direct library calls.
fn verify(addr: &str, processors: u32) -> Result<u64, String> {
    let (mut reader, mut writer) = connect(addr)?;
    let mut response = String::new();
    let workload = WorkloadParams::at_level(Level::Middle);
    let bus_system = BusSystemModel::new();
    let mut checked = 0u64;

    for scheme in Scheme::ALL {
        let line = format!(
            "{{\"queries\":[{{\"scheme\":\"{scheme}\",\"machine\":{{\
             \"interconnect\":\"bus\",\"processors\":{processors}}}}}]}}"
        );
        round_trip(&mut reader, &mut writer, &line, &mut response)?;
        let parsed: Value =
            serde_json::from_str(response.trim()).map_err(|e| format!("verify parse: {e}"))?;
        let point = parsed
            .get_field("results")
            .and_then(|r| r.get_index(0))
            .and_then(|q| q.get_field("points"))
            .and_then(|p| p.get_index(0))
            .ok_or_else(|| format!("verify: malformed response for {scheme}: {response}"))?;
        let direct =
            analyze_bus(scheme, &workload, &bus_system, processors).map_err(|e| e.to_string())?;
        for (name, want) in [
            ("power", direct.power()),
            ("utilization", direct.utilization()),
            ("cpi", direct.cycles_per_instruction()),
            ("waiting", direct.waiting()),
            ("bus_utilization", direct.bus_utilization()),
        ] {
            let got = field_f64(point, name)?;
            if got.to_bits() != want.to_bits() {
                return Err(format!(
                    "verify: bus {scheme} {name} mismatch: served {got:?} vs direct {want:?}"
                ));
            }
            checked += 1;
        }
    }

    for scheme in [Scheme::Base, Scheme::NoCache, Scheme::SoftwareFlush] {
        let stages = 6u32;
        let line = format!(
            "{{\"queries\":[{{\"scheme\":\"{scheme}\",\"machine\":{{\
             \"interconnect\":\"network\",\"stages\":{stages}}}}}]}}"
        );
        round_trip(&mut reader, &mut writer, &line, &mut response)?;
        let parsed: Value =
            serde_json::from_str(response.trim()).map_err(|e| format!("verify parse: {e}"))?;
        let point = parsed
            .get_field("results")
            .and_then(|r| r.get_index(0))
            .and_then(|q| q.get_field("points"))
            .and_then(|p| p.get_index(0))
            .ok_or_else(|| format!("verify: malformed response for {scheme}: {response}"))?;
        let demand = scheme_demand(scheme, &workload, &NetworkSystemModel::new(stages))
            .map_err(|e| e.to_string())?;
        let solved = BatchPatelSolver::new()
            .solve_grid(
                &[demand.transaction_rate()],
                &[demand.transaction_size()],
                &Stages::Uniform(stages),
                None,
            )
            .map_err(|e| e.to_string())?;
        let direct =
            NetworkPerformance::from_operating_point(scheme, stages, demand, solved.points()[0]);
        for (name, want) in [
            ("power", direct.power()),
            ("utilization", direct.utilization()),
        ] {
            let got = field_f64(point, name)?;
            if got.to_bits() != want.to_bits() {
                return Err(format!(
                    "verify: network {scheme} {name} mismatch: served {got:?} vs direct {want:?}"
                ));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let line = build_request(&args);
    let queries_per_request = 4 * u64::from(args.sweep_points);

    let before = fetch_stats(&args.addr)?;
    let deadline = Instant::now() + args.duration;
    let started = Instant::now();
    let (tx, rx) = mpsc::channel();
    let mut handles = Vec::new();
    for _ in 0..args.connections {
        let tx = tx.clone();
        let addr = args.addr.clone();
        let line = line.clone();
        handles.push(thread::spawn(move || {
            let report = worker(addr, line, queries_per_request, deadline);
            let _ = tx.send(report);
        }));
    }
    drop(tx);
    let mut requests = 0u64;
    let mut queries = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    for report in rx {
        requests += report.requests;
        queries += report.queries;
        errors += report.errors;
        latencies.extend(report.latencies_us);
    }
    for handle in handles {
        let _ = handle.join();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let after = fetch_stats(&args.addr)?;

    let verified_points = if args.verify {
        verify(&args.addr, args.processors)?
    } else {
        0
    };

    if args.shutdown {
        if let Ok((mut reader, mut writer)) = connect(&args.addr) {
            let mut response = String::new();
            let _ = round_trip(
                &mut reader,
                &mut writer,
                r#"{"cmd":"shutdown"}"#,
                &mut response,
            );
        }
    }

    let qps = if elapsed > 0.0 {
        queries as f64 / elapsed
    } else {
        0.0
    };
    let quantile_points = swcc_obs::quantile::quantiles(&latencies, &[0.5, 0.9, 0.99, 1.0]);
    let (p50, p90, p99, max) = match quantile_points {
        Some(qs) => (
            qs[0].unwrap_or(f64::NAN),
            qs[1].unwrap_or(f64::NAN),
            qs[2].unwrap_or(f64::NAN),
            qs[3].unwrap_or(f64::NAN),
        ),
        None => (f64::NAN, f64::NAN, f64::NAN, f64::NAN),
    };

    let hits = server_stat(&after, &["stats", "cache", "hits"])
        .saturating_sub(server_stat(&before, &["stats", "cache", "hits"]));
    let misses = server_stat(&after, &["stats", "cache", "misses"])
        .saturating_sub(server_stat(&before, &["stats", "cache", "misses"]));
    let coalesced = server_stat(&after, &["stats", "cache", "coalesced"])
        .saturating_sub(server_stat(&before, &["stats", "cache", "coalesced"]));
    let solves = server_stat(&after, &["stats", "solves"])
        .saturating_sub(server_stat(&before, &["stats", "solves"]));
    let admissions = hits + misses + coalesced;
    let hit_rate = if admissions > 0 {
        hits as f64 / admissions as f64
    } else {
        0.0
    };

    println!(
        "swcc-loadgen: {queries} queries in {elapsed:.3}s over {} connection(s) \
         => {qps:.0} queries/s ({requests} requests, {errors} errors)",
        args.connections
    );
    println!(
        "  latency_us: p50={p50:.0} p90={p90:.0} p99={p99:.0} max={max:.0}; \
         server cache over window: {hits} hits / {misses} misses / \
         {coalesced} coalesced (hit rate {hit_rate:.4}), {solves} solver calls"
    );
    if args.verify {
        println!("  verify: {verified_points} served floats bit-identical to direct library calls");
    }

    let mut gate_failures: Vec<String> = Vec::new();
    if errors > 0 {
        gate_failures.push(format!("{errors} request error(s)"));
    }
    if args.min_qps > 0.0 && qps < args.min_qps {
        gate_failures.push(format!(
            "throughput {qps:.0} queries/s below floor {:.0}",
            args.min_qps
        ));
    }
    if hits == 0 {
        gate_failures.push("server cache hit counter did not move".to_string());
    }
    if args.min_hit_rate > 0.0 && hit_rate < args.min_hit_rate {
        gate_failures.push(format!(
            "hit rate {hit_rate:.4} below floor {:.4}",
            args.min_hit_rate
        ));
    }

    if let Some(path) = &args.out {
        use std::fmt::Write as _;
        let mut report = String::from("{\"schema\":\"swcc-loadgen/v1\"");
        let _ = write!(
            report,
            ",\"addr\":\"{}\",\"connections\":{},\"duration_ms\":{},\
             \"sweep_points\":{},\"compact\":{},\"requests\":{requests},\
             \"queries\":{queries},\"errors\":{errors},\"elapsed_s\":{elapsed},\
             \"queries_per_second\":{qps}",
            args.addr,
            args.connections,
            args.duration.as_millis(),
            args.sweep_points,
            args.compact,
        );
        let quantile_json = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let _ = write!(
            report,
            ",\"latency_us\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            quantile_json(p50),
            quantile_json(p90),
            quantile_json(p99),
            quantile_json(max),
        );
        let _ = write!(
            report,
            ",\"server\":{{\"hits\":{hits},\"misses\":{misses},\
             \"coalesced\":{coalesced},\"solves\":{solves},\"hit_rate\":{}}}",
            quantile_json(hit_rate),
        );
        let _ = write!(
            report,
            ",\"verified_points\":{verified_points},\"gates\":{{\"min_qps\":{},\
             \"min_hit_rate\":{},\"passed\":{}}}}}",
            quantile_json(args.min_qps),
            quantile_json(args.min_hit_rate),
            gate_failures.is_empty(),
        );
        std::fs::write(path, report).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  report written to {path}");
    }

    if !gate_failures.is_empty() {
        return Err(format!("gate failure: {}", gate_failures.join("; ")));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("swcc-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
