//! Closed-loop load harness for `swcc-serve`.
//!
//! ```text
//! swcc-loadgen --addr HOST:PORT [--connections N] [--duration-ms MS]
//!              [--warmup-ms MS] [--sweep-points K] [--processors P]
//!              [--full] [--min-qps Q] [--min-hit-rate R]
//!              [--timeline] [--max-p99-us US] [--slo-windows K]
//!              [--telemetry-out PATH] [--verify] [--out PATH]
//!              [--shutdown]
//! ```
//!
//! Each connection replays one compact batch request — all four
//! schemes swept over `shd` at `K` points each — as fast as the server
//! answers, after one untimed warmup round that populates the cache.
//! The report (stdout, and `--out` as JSON, schema `swcc-loadgen/v2`)
//! gives served-query throughput, request latency quantiles
//! ([`swcc_obs::quantile`]), and the server's cache counter deltas.
//!
//! Requests inside the first `--warmup-ms` (default 250) of the timed
//! run are excluded from the gated quantiles, so short CI runs don't
//! gate on one-time cold-solve latency. (All samples still appear in
//! throughput and the server counters.)
//!
//! `--timeline` opens one extra connection that scrapes
//! `{"cmd":"telemetry"}` once per second, emitting a per-second
//! qps / hit-rate / latency-quantile timeline into the report. The
//! steady-state p99 is the median of the post-warmup per-second p99s;
//! the report also records how it agrees with the client-side measured
//! p99. `--telemetry-out` saves the last raw telemetry response.
//!
//! Gates (process exits nonzero on violation):
//!
//! * every request must succeed (`"ok":true`);
//! * `--min-qps` — served queries/second floor;
//! * `--min-hit-rate` — cache hits ÷ admissions floor over the timed
//!   window (the warmup makes the steady state all-hits);
//! * the server's hit counter must move at all (the cache is actually
//!   in the serving path);
//! * `--max-p99-us` — burn-style latency SLO: with `--timeline`, fail
//!   if more than `--slo-windows` (default 2) post-warmup per-second
//!   windows have p99 over the ceiling; without a timeline, fail if
//!   the post-warmup client p99 is over it.
//!
//! `--verify` additionally replays a set of full-mode single queries
//! and bit-compares every served float against the equivalent direct
//! library call in this process — proving the wire format preserves
//! results exactly. Keep `--connections` at or below the server's
//! worker count: the server is one-thread-per-connection.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use serde::Value;
use swcc_core::batch::{BatchPatelSolver, Stages};
use swcc_core::bus::analyze_bus;
use swcc_core::demand::scheme_demand;
use swcc_core::network::NetworkPerformance;
use swcc_core::scheme::Scheme;
use swcc_core::system::{BusSystemModel, NetworkSystemModel};
use swcc_core::workload::{Level, WorkloadParams};

struct Args {
    addr: String,
    connections: usize,
    duration: Duration,
    warmup: Duration,
    sweep_points: u32,
    processors: u32,
    compact: bool,
    min_qps: f64,
    min_hit_rate: f64,
    timeline: bool,
    max_p99_us: f64,
    slo_windows: u64,
    telemetry_out: Option<String>,
    verify: bool,
    out: Option<String>,
    shutdown: bool,
}

fn usage() -> &'static str {
    "usage: swcc-loadgen --addr HOST:PORT [--connections N] [--duration-ms MS] \
     [--warmup-ms MS (default 250; excluded from gated quantiles)] \
     [--sweep-points K] [--processors P] [--full] [--min-qps Q] \
     [--min-hit-rate R] [--timeline] [--max-p99-us US] \
     [--slo-windows K (default 2)] [--telemetry-out PATH] [--verify] \
     [--out PATH] [--shutdown]"
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        addr: String::new(),
        connections: 4,
        duration: Duration::from_millis(2000),
        warmup: Duration::from_millis(250),
        sweep_points: 2048,
        processors: 16,
        compact: true,
        min_qps: 0.0,
        min_hit_rate: 0.0,
        timeline: false,
        max_p99_us: 0.0,
        slo_windows: 2,
        telemetry_out: None,
        verify: false,
        out: None,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--addr" => parsed.addr = value("--addr")?,
            "--connections" => {
                parsed.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
                if parsed.connections == 0 {
                    return Err("--connections must be at least 1".to_string());
                }
            }
            "--duration-ms" => {
                let ms: u64 = value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("--duration-ms: {e}"))?;
                parsed.duration = Duration::from_millis(ms.max(1));
            }
            "--warmup-ms" => {
                let ms: u64 = value("--warmup-ms")?
                    .parse()
                    .map_err(|e| format!("--warmup-ms: {e}"))?;
                parsed.warmup = Duration::from_millis(ms);
            }
            "--sweep-points" => {
                parsed.sweep_points = value("--sweep-points")?
                    .parse()
                    .map_err(|e| format!("--sweep-points: {e}"))?;
                if parsed.sweep_points == 0 {
                    return Err("--sweep-points must be at least 1".to_string());
                }
            }
            "--processors" => {
                parsed.processors = value("--processors")?
                    .parse()
                    .map_err(|e| format!("--processors: {e}"))?;
            }
            "--full" => parsed.compact = false,
            "--min-qps" => {
                parsed.min_qps = value("--min-qps")?
                    .parse()
                    .map_err(|e| format!("--min-qps: {e}"))?;
            }
            "--min-hit-rate" => {
                parsed.min_hit_rate = value("--min-hit-rate")?
                    .parse()
                    .map_err(|e| format!("--min-hit-rate: {e}"))?;
            }
            "--timeline" => parsed.timeline = true,
            "--max-p99-us" => {
                parsed.max_p99_us = value("--max-p99-us")?
                    .parse()
                    .map_err(|e| format!("--max-p99-us: {e}"))?;
                if !parsed.max_p99_us.is_finite() || parsed.max_p99_us < 0.0 {
                    return Err("--max-p99-us must be a finite non-negative number".to_string());
                }
            }
            "--slo-windows" => {
                parsed.slo_windows = value("--slo-windows")?
                    .parse()
                    .map_err(|e| format!("--slo-windows: {e}"))?;
            }
            "--telemetry-out" => parsed.telemetry_out = Some(value("--telemetry-out")?),
            "--verify" => parsed.verify = true,
            "--out" => parsed.out = Some(value("--out")?),
            "--shutdown" => parsed.shutdown = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    if parsed.addr.is_empty() {
        return Err(format!("--addr is required\n{}", usage()));
    }
    Ok(parsed)
}

/// One request line: every scheme swept over `shd`, bus machine.
fn build_request(args: &Args) -> String {
    use std::fmt::Write as _;
    let mut line = format!("{{\"compact\":{},\"queries\":[", args.compact);
    for (i, scheme) in ["base", "no-cache", "software-flush", "dragon"]
        .iter()
        .enumerate()
    {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(
            line,
            "{{\"scheme\":\"{scheme}\",\"machine\":{{\"interconnect\":\"bus\",\
             \"processors\":{}}},\"sweep\":{{\"param\":\"shd\",\"from\":0.02,\
             \"to\":0.2,\"points\":{}}}}}",
            args.processors, args.sweep_points
        );
    }
    line.push_str("]}");
    line
}

struct WorkerReport {
    requests: u64,
    queries: u64,
    errors: u64,
    /// `(offset_ms from the timed-run start, latency_us)` per request.
    latencies_us: Vec<(f64, f64)>,
}

fn connect(addr: &str) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    Ok((reader, BufWriter::new(stream)))
}

fn round_trip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    line: &str,
    response: &mut String,
) -> Result<(), String> {
    writer
        .write_all(line.as_bytes())
        .map_err(|e| e.to_string())?;
    writer.write_all(b"\n").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    response.clear();
    let n = reader.read_line(response).map_err(|e| e.to_string())?;
    if n == 0 {
        return Err("server closed the connection".to_string());
    }
    Ok(())
}

fn worker(
    addr: String,
    line: String,
    queries_per_request: u64,
    run_started: Instant,
    deadline: Instant,
) -> WorkerReport {
    let mut report = WorkerReport {
        requests: 0,
        queries: 0,
        errors: 0,
        latencies_us: Vec::new(),
    };
    let (mut reader, mut writer) = match connect(&addr) {
        Ok(pair) => pair,
        Err(_) => {
            report.errors += 1;
            return report;
        }
    };
    let mut response = String::new();
    // Warmup round: populates the cache, untimed.
    if round_trip(&mut reader, &mut writer, &line, &mut response).is_err()
        || !response.starts_with("{\"ok\":true")
    {
        report.errors += 1;
        return report;
    }
    while Instant::now() < deadline {
        let started = Instant::now();
        if round_trip(&mut reader, &mut writer, &line, &mut response).is_err() {
            report.errors += 1;
            break;
        }
        report.latencies_us.push((
            started.duration_since(run_started).as_secs_f64() * 1e3,
            started.elapsed().as_secs_f64() * 1e6,
        ));
        report.requests += 1;
        if response.starts_with("{\"ok\":true") {
            report.queries += queries_per_request;
        } else {
            report.errors += 1;
        }
    }
    report
}

/// One per-second telemetry scrape, reduced to the 1s window.
struct TimelinePoint {
    offset_ms: f64,
    qps: f64,
    hit_rate: Option<f64>,
    p50: Option<f64>,
    p90: Option<f64>,
    p99: Option<f64>,
}

struct TimelineReport {
    points: Vec<TimelinePoint>,
    scrape_errors: u64,
    last_raw: Option<String>,
}

/// Reduces one `telemetry` response to the 1-second window's numbers.
fn reduce_scrape(raw: &str, offset_ms: f64) -> Option<TimelinePoint> {
    let parsed: Value = serde_json::from_str(raw.trim()).ok()?;
    let windows = parsed
        .get_field("windows")
        .and_then(|w| w.get_field("windows"))
        .and_then(Value::as_array)?;
    let one_s = windows
        .iter()
        .find(|w| w.get_field("seconds").and_then(Value::as_u64) == Some(1))?;
    let counters = one_s.get_field("counters")?;
    let counter = |name: &str| {
        counters
            .get_field(name)
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let admissions = counter("hits") + counter("misses") + counter("coalesced");
    let hit_rate = if admissions > 0 {
        Some(counter("hits") as f64 / admissions as f64)
    } else {
        None
    };
    let qps = one_s
        .get_field("rates")
        .and_then(|r| r.get_field("queries"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let latency = one_s.get_field("latency");
    let q = |name: &str| {
        latency
            .and_then(|l| l.get_field(name))
            .and_then(Value::as_f64)
    };
    Some(TimelinePoint {
        offset_ms,
        qps,
        hit_rate,
        p50: q("p50"),
        p90: q("p90"),
        p99: q("p99"),
    })
}

/// The timeline thread: scrape `{"cmd":"telemetry"}` once per second on
/// its own connection until the deadline.
fn timeline_worker(addr: String, run_started: Instant, deadline: Instant) -> TimelineReport {
    let mut report = TimelineReport {
        points: Vec::new(),
        scrape_errors: 0,
        last_raw: None,
    };
    let Ok((mut reader, mut writer)) = connect(&addr) else {
        report.scrape_errors += 1;
        return report;
    };
    let mut response = String::new();
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        thread::sleep((deadline - now).min(Duration::from_secs(1)));
        let offset_ms = run_started.elapsed().as_secs_f64() * 1e3;
        if round_trip(
            &mut reader,
            &mut writer,
            r#"{"cmd":"telemetry"}"#,
            &mut response,
        )
        .is_err()
        {
            report.scrape_errors += 1;
            break;
        }
        match reduce_scrape(&response, offset_ms) {
            Some(point) => report.points.push(point),
            None => report.scrape_errors += 1,
        }
        report.last_raw = Some(response.trim().to_string());
    }
    report
}

fn server_stat(stats: &Value, path: &[&str]) -> u64 {
    let mut node = stats;
    for key in path {
        node = match node.get_field(key) {
            Some(v) => v,
            None => return 0,
        };
    }
    node.as_u64().unwrap_or(0)
}

fn fetch_stats(addr: &str) -> Result<Value, String> {
    let (mut reader, mut writer) = connect(addr)?;
    let mut response = String::new();
    round_trip(
        &mut reader,
        &mut writer,
        r#"{"cmd":"stats"}"#,
        &mut response,
    )?;
    serde_json::from_str(response.trim()).map_err(|e| format!("stats response: {e}"))
}

fn field_f64(value: &Value, name: &str) -> Result<f64, String> {
    value
        .get_field(name)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("response missing numeric \"{name}\""))
}

/// Bit-compares full-mode served results against direct library calls.
fn verify(addr: &str, processors: u32) -> Result<u64, String> {
    let (mut reader, mut writer) = connect(addr)?;
    let mut response = String::new();
    let workload = WorkloadParams::at_level(Level::Middle);
    let bus_system = BusSystemModel::new();
    let mut checked = 0u64;

    for scheme in Scheme::ALL {
        let line = format!(
            "{{\"queries\":[{{\"scheme\":\"{scheme}\",\"machine\":{{\
             \"interconnect\":\"bus\",\"processors\":{processors}}}}}]}}"
        );
        round_trip(&mut reader, &mut writer, &line, &mut response)?;
        let parsed: Value =
            serde_json::from_str(response.trim()).map_err(|e| format!("verify parse: {e}"))?;
        let point = parsed
            .get_field("results")
            .and_then(|r| r.get_index(0))
            .and_then(|q| q.get_field("points"))
            .and_then(|p| p.get_index(0))
            .ok_or_else(|| format!("verify: malformed response for {scheme}: {response}"))?;
        let direct =
            analyze_bus(scheme, &workload, &bus_system, processors).map_err(|e| e.to_string())?;
        for (name, want) in [
            ("power", direct.power()),
            ("utilization", direct.utilization()),
            ("cpi", direct.cycles_per_instruction()),
            ("waiting", direct.waiting()),
            ("bus_utilization", direct.bus_utilization()),
        ] {
            let got = field_f64(point, name)?;
            if got.to_bits() != want.to_bits() {
                return Err(format!(
                    "verify: bus {scheme} {name} mismatch: served {got:?} vs direct {want:?}"
                ));
            }
            checked += 1;
        }
    }

    for scheme in [Scheme::Base, Scheme::NoCache, Scheme::SoftwareFlush] {
        let stages = 6u32;
        let line = format!(
            "{{\"queries\":[{{\"scheme\":\"{scheme}\",\"machine\":{{\
             \"interconnect\":\"network\",\"stages\":{stages}}}}}]}}"
        );
        round_trip(&mut reader, &mut writer, &line, &mut response)?;
        let parsed: Value =
            serde_json::from_str(response.trim()).map_err(|e| format!("verify parse: {e}"))?;
        let point = parsed
            .get_field("results")
            .and_then(|r| r.get_index(0))
            .and_then(|q| q.get_field("points"))
            .and_then(|p| p.get_index(0))
            .ok_or_else(|| format!("verify: malformed response for {scheme}: {response}"))?;
        let demand = scheme_demand(scheme, &workload, &NetworkSystemModel::new(stages))
            .map_err(|e| e.to_string())?;
        let solved = BatchPatelSolver::new()
            .solve_grid(
                &[demand.transaction_rate()],
                &[demand.transaction_size()],
                &Stages::Uniform(stages),
                None,
            )
            .map_err(|e| e.to_string())?;
        let direct =
            NetworkPerformance::from_operating_point(scheme, stages, demand, solved.points()[0]);
        for (name, want) in [
            ("power", direct.power()),
            ("utilization", direct.utilization()),
        ] {
            let got = field_f64(point, name)?;
            if got.to_bits() != want.to_bits() {
                return Err(format!(
                    "verify: network {scheme} {name} mismatch: served {got:?} vs direct {want:?}"
                ));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

fn quantile_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn opt_json(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_string(),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let line = build_request(&args);
    let queries_per_request = 4 * u64::from(args.sweep_points);
    let warmup_ms = args.warmup.as_secs_f64() * 1e3;

    let before = fetch_stats(&args.addr)?;
    let started = Instant::now();
    let deadline = started + args.duration;
    let (tx, rx) = mpsc::channel();
    let mut handles = Vec::new();
    for _ in 0..args.connections {
        let tx = tx.clone();
        let addr = args.addr.clone();
        let line = line.clone();
        handles.push(thread::spawn(move || {
            let report = worker(addr, line, queries_per_request, started, deadline);
            let _ = tx.send(report);
        }));
    }
    drop(tx);
    let timeline_handle = args.timeline.then(|| {
        let addr = args.addr.clone();
        thread::spawn(move || timeline_worker(addr, started, deadline))
    });
    let mut requests = 0u64;
    let mut queries = 0u64;
    let mut errors = 0u64;
    let mut samples: Vec<(f64, f64)> = Vec::new();
    for report in rx {
        requests += report.requests;
        queries += report.queries;
        errors += report.errors;
        samples.extend(report.latencies_us);
    }
    for handle in handles {
        let _ = handle.join();
    }
    let timeline = timeline_handle.map(|h| {
        h.join().unwrap_or(TimelineReport {
            points: Vec::new(),
            scrape_errors: 1,
            last_raw: None,
        })
    });
    let elapsed = started.elapsed().as_secs_f64();
    let after = fetch_stats(&args.addr)?;

    let verified_points = if args.verify {
        verify(&args.addr, args.processors)?
    } else {
        0
    };

    if args.shutdown {
        if let Ok((mut reader, mut writer)) = connect(&args.addr) {
            let mut response = String::new();
            let _ = round_trip(
                &mut reader,
                &mut writer,
                r#"{"cmd":"shutdown"}"#,
                &mut response,
            );
        }
    }

    let qps = if elapsed > 0.0 {
        queries as f64 / elapsed
    } else {
        0.0
    };
    // Gated quantiles exclude the warmup ramp; if nothing survives the
    // cut (a run shorter than the warmup), fall back to all samples.
    let warm: Vec<f64> = {
        let post: Vec<f64> = samples
            .iter()
            .filter(|(offset_ms, _)| *offset_ms >= warmup_ms)
            .map(|(_, lat)| *lat)
            .collect();
        if post.is_empty() {
            samples.iter().map(|(_, lat)| *lat).collect()
        } else {
            post
        }
    };
    let quantile_points = swcc_obs::quantile::quantiles(&warm, &[0.5, 0.9, 0.99, 1.0]);
    let (p50, p90, p99, max) = match quantile_points {
        Some(qs) => (
            qs[0].unwrap_or(f64::NAN),
            qs[1].unwrap_or(f64::NAN),
            qs[2].unwrap_or(f64::NAN),
            qs[3].unwrap_or(f64::NAN),
        ),
        None => (f64::NAN, f64::NAN, f64::NAN, f64::NAN),
    };

    let hits = server_stat(&after, &["stats", "cache", "hits"])
        .saturating_sub(server_stat(&before, &["stats", "cache", "hits"]));
    let misses = server_stat(&after, &["stats", "cache", "misses"])
        .saturating_sub(server_stat(&before, &["stats", "cache", "misses"]));
    let coalesced = server_stat(&after, &["stats", "cache", "coalesced"])
        .saturating_sub(server_stat(&before, &["stats", "cache", "coalesced"]));
    let solves = server_stat(&after, &["stats", "solves"])
        .saturating_sub(server_stat(&before, &["stats", "solves"]));
    let server_errors = server_stat(&after, &["stats", "errors"])
        .saturating_sub(server_stat(&before, &["stats", "errors"]));
    let admissions = hits + misses + coalesced;
    let hit_rate = if admissions > 0 {
        hits as f64 / admissions as f64
    } else {
        0.0
    };

    // Steady state from the timeline: the median of the post-warmup
    // per-second p99s, compared against the client-side p99.
    let steady_p99s: Vec<f64> = timeline
        .as_ref()
        .map(|t| {
            t.points
                .iter()
                .filter(|p| p.offset_ms >= warmup_ms)
                .filter_map(|p| p.p99)
                .collect()
        })
        .unwrap_or_default();
    let steady_p99 = swcc_obs::quantile::median(&steady_p99s);
    let agreement_ratio = match steady_p99 {
        Some(server) if p99.is_finite() && p99 > 0.0 => Some(server / p99),
        _ => None,
    };

    println!(
        "swcc-loadgen: {queries} queries in {elapsed:.3}s over {} connection(s) \
         => {qps:.0} queries/s ({requests} requests, {errors} errors)",
        args.connections
    );
    println!(
        "  latency_us (post-warmup {warmup_ms:.0}ms): p50={p50:.0} p90={p90:.0} \
         p99={p99:.0} max={max:.0}; server cache over window: {hits} hits / \
         {misses} misses / {coalesced} coalesced (hit rate {hit_rate:.4}), \
         {solves} solver calls, {server_errors} server errors"
    );
    if let Some(t) = &timeline {
        println!(
            "  timeline: {} scrape(s), {} error(s); steady-state p99 {} \
             (server/client ratio {})",
            t.points.len(),
            t.scrape_errors,
            steady_p99.map_or("n/a".to_string(), |v| format!("{v:.0}us")),
            agreement_ratio.map_or("n/a".to_string(), |v| format!("{v:.3}")),
        );
    }
    if args.verify {
        println!("  verify: {verified_points} served floats bit-identical to direct library calls");
    }

    let mut gate_failures: Vec<String> = Vec::new();
    if errors > 0 {
        gate_failures.push(format!("{errors} request error(s)"));
    }
    if args.min_qps > 0.0 && qps < args.min_qps {
        gate_failures.push(format!(
            "throughput {qps:.0} queries/s below floor {:.0}",
            args.min_qps
        ));
    }
    if hits == 0 {
        gate_failures.push("server cache hit counter did not move".to_string());
    }
    if args.min_hit_rate > 0.0 && hit_rate < args.min_hit_rate {
        gate_failures.push(format!(
            "hit rate {hit_rate:.4} below floor {:.4}",
            args.min_hit_rate
        ));
    }
    // Burn-style SLO: tolerate up to --slo-windows breaching windows
    // before failing (one slow second in a long run is noise; a
    // sustained burn is not).
    let mut slo_breaches = 0u64;
    if args.max_p99_us > 0.0 {
        match &timeline {
            Some(t) => {
                slo_breaches = t
                    .points
                    .iter()
                    .filter(|p| p.offset_ms >= warmup_ms)
                    .filter_map(|p| p.p99)
                    .filter(|p99| *p99 > args.max_p99_us)
                    .count() as u64;
                if slo_breaches > args.slo_windows {
                    gate_failures.push(format!(
                        "p99 SLO burn: {slo_breaches} window(s) over {:.0}us \
                         (allowed {})",
                        args.max_p99_us, args.slo_windows
                    ));
                }
            }
            None => {
                if p99.is_finite() && p99 > args.max_p99_us {
                    slo_breaches = 1;
                    gate_failures.push(format!(
                        "p99 {p99:.0}us over SLO ceiling {:.0}us",
                        args.max_p99_us
                    ));
                }
            }
        }
    }

    if let Some(path) = &args.telemetry_out {
        let raw = timeline
            .as_ref()
            .and_then(|t| t.last_raw.clone())
            .map_or_else(
                || Err("no telemetry snapshot captured (is --timeline on?)".to_string()),
                Ok,
            )?;
        std::fs::write(path, raw + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        println!("  telemetry snapshot written to {path}");
    }

    if let Some(path) = &args.out {
        use std::fmt::Write as _;
        let mut report = String::from("{\"schema\":\"swcc-loadgen/v2\"");
        let _ = write!(
            report,
            ",\"addr\":\"{}\",\"connections\":{},\"duration_ms\":{},\
             \"warmup_ms\":{warmup_ms},\"sweep_points\":{},\"compact\":{},\
             \"requests\":{requests},\"queries\":{queries},\"errors\":{errors},\
             \"elapsed_s\":{elapsed},\"queries_per_second\":{qps}",
            args.addr,
            args.connections,
            args.duration.as_millis(),
            args.sweep_points,
            args.compact,
        );
        let _ = write!(
            report,
            ",\"latency_us\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            quantile_json(p50),
            quantile_json(p90),
            quantile_json(p99),
            quantile_json(max),
        );
        let _ = write!(
            report,
            ",\"server\":{{\"hits\":{hits},\"misses\":{misses},\
             \"coalesced\":{coalesced},\"solves\":{solves},\
             \"errors\":{server_errors},\"hit_rate\":{}}}",
            quantile_json(hit_rate),
        );
        match &timeline {
            None => report.push_str(",\"timeline\":null"),
            Some(t) => {
                report.push_str(",\"timeline\":[");
                for (i, p) in t.points.iter().enumerate() {
                    if i > 0 {
                        report.push(',');
                    }
                    let _ = write!(
                        report,
                        "{{\"offset_ms\":{},\"qps\":{},\"hit_rate\":{},\
                         \"p50_us\":{},\"p90_us\":{},\"p99_us\":{}}}",
                        quantile_json(p.offset_ms),
                        quantile_json(p.qps),
                        opt_json(p.hit_rate),
                        opt_json(p.p50),
                        opt_json(p.p90),
                        opt_json(p.p99),
                    );
                }
                let _ = write!(report, "],\"scrape_errors\":{}", t.scrape_errors);
            }
        }
        let _ = write!(
            report,
            ",\"steady_state\":{{\"windows\":{},\"p99_us\":{}}}",
            steady_p99s.len(),
            opt_json(steady_p99),
        );
        let _ = write!(
            report,
            ",\"agreement\":{{\"client_p99_us\":{},\"server_steady_p99_us\":{},\
             \"ratio\":{}}}",
            quantile_json(p99),
            opt_json(steady_p99),
            opt_json(agreement_ratio),
        );
        let _ = write!(
            report,
            ",\"slo\":{{\"max_p99_us\":{},\"allowed_windows\":{},\
             \"breaches\":{slo_breaches}}}",
            quantile_json(args.max_p99_us),
            args.slo_windows,
        );
        let _ = write!(
            report,
            ",\"verified_points\":{verified_points},\"gates\":{{\"min_qps\":{},\
             \"min_hit_rate\":{},\"passed\":{}}}}}",
            quantile_json(args.min_qps),
            quantile_json(args.min_hit_rate),
            gate_failures.is_empty(),
        );
        std::fs::write(path, report).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  report written to {path}");
    }

    if !gate_failures.is_empty() {
        return Err(format!("gate failure: {}", gate_failures.join("; ")));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("swcc-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
