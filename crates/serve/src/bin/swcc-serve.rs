//! The batch coherence-query server.
//!
//! ```text
//! swcc-serve [--addr HOST:PORT] [--workers N]
//!            [--read-timeout-ms MS] [--solve-timeout-ms MS]
//!            [--telemetry-addr HOST:PORT] [--access-log PATH]
//!            [--slow-threshold-us US] [--slow-capacity N]
//! ```
//!
//! Binds the listener, installs a process-wide metrics registry
//! covering the model and serve layers, prints one `listening on …`
//! line to stdout, and serves until a client sends
//! `{"cmd":"shutdown"}`. On exit it prints a final stats line.
//!
//! Live telemetry is always available in-band via
//! `{"cmd":"telemetry"}`. With `--telemetry-addr` a second listener
//! additionally serves scrapers over plain HTTP: `GET /metrics`
//! (Prometheus text), `/telemetry` (JSON), `/slow` (slow-request
//! captures). `--access-log` appends one JSONL line per request;
//! `--slow-threshold-us` (default 100000, `0` disables) captures any
//! slower request's phase spans into a ring of `--slow-capacity`
//! (default 32) entries.

use std::process::ExitCode;
use std::time::Duration;

use swcc_serve::{spawn, ServeConfig};

fn usage() -> &'static str {
    "usage: swcc-serve [--addr HOST:PORT] [--workers N] \
     [--read-timeout-ms MS] [--solve-timeout-ms MS] \
     [--telemetry-addr HOST:PORT] [--access-log PATH] \
     [--slow-threshold-us US (default 100000, 0 disables)] \
     [--slow-capacity N (default 32)]"
}

fn parse_args() -> Result<ServeConfig, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if config.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                config.read_timeout = Duration::from_millis(ms.max(1));
            }
            "--solve-timeout-ms" => {
                let ms: u64 = value("--solve-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--solve-timeout-ms: {e}"))?;
                config.solve_timeout = Duration::from_millis(ms.max(1));
            }
            "--telemetry-addr" => config.telemetry_addr = Some(value("--telemetry-addr")?),
            "--access-log" => config.access_log = Some(value("--access-log")?),
            "--slow-threshold-us" => {
                config.slow_threshold_us = value("--slow-threshold-us")?
                    .parse()
                    .map_err(|e| format!("--slow-threshold-us: {e}"))?;
                if !config.slow_threshold_us.is_finite() || config.slow_threshold_us < 0.0 {
                    return Err("--slow-threshold-us must be a finite non-negative number".into());
                }
            }
            "--slow-capacity" => {
                config.slow_capacity = value("--slow-capacity")?
                    .parse()
                    .map_err(|e| format!("--slow-capacity: {e}"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let mut config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("swcc-serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    let registry = swcc_serve::metrics::register(swcc_core::metrics::register(
        swcc_obs::RegistryBuilder::new(),
    ))
    .build();
    // The telemetry command needs the concrete registry for cumulative
    // snapshots; the install API only exposes the trait object.
    let registry: &'static swcc_obs::MetricsRegistry = Box::leak(Box::new(registry));
    let _ = swcc_obs::install(registry);
    config.registry = Some(registry);

    let workers = config.workers;
    let running = match spawn(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("swcc-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "swcc-serve listening on {} ({} workers)",
        running.addr(),
        workers
    );
    if let Some(addr) = running.telemetry_addr() {
        println!("swcc-serve telemetry on {addr}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let state = std::sync::Arc::clone(running.state());
    running.join();
    println!("swcc-serve stopped: {}", state.stats_response());
    ExitCode::SUCCESS
}
