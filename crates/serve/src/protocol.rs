//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request. A request is
//! either a control command — `{"cmd":"ping"}`, `{"cmd":"stats"}`,
//! `{"cmd":"shutdown"}` — or a query batch:
//!
//! ```json
//! {"id": 7, "compact": false, "queries": [
//!   {"kind": "power", "scheme": "software-flush",
//!    "machine": {"interconnect": "bus", "processors": 16},
//!    "workload": {"shd": 0.05},
//!    "sweep": {"param": "apl", "from": 1.0, "to": 25.0, "points": 64}}
//! ]}
//! ```
//!
//! * `kind` — `"power"` (default), `"penalty"` (bus contention detail),
//!   or `"sensitivity"` (parameter ranking; bus only, no sweep).
//! * `scheme` — `"base"`, `"no-cache"`, `"software-flush"`, `"dragon"`
//!   (case-insensitive; the dash is optional).
//! * `machine` — `{"interconnect":"bus","processors":N}` or
//!   `{"interconnect":"network","stages":S}` (`2^S` processors).
//! * `workload` — optional overrides of the Table 7 middle values,
//!   keyed by paper parameter name (`ls`, `msdat`, …, `nshd`).
//! * `sweep` — optional: vary one parameter over `points` evenly
//!   spaced values from `from` to `to`; each point is one query.
//!
//! Floats in responses are formatted with Rust's shortest round-trip
//! `Display`, so parsing them back with a correctly rounded `f64`
//! parser reproduces the served bits exactly — the golden tests and
//! `swcc-loadgen --verify` rely on this to prove served results
//! bit-identical to direct library calls.

use serde::Value;
use swcc_core::scheme::Scheme;
use swcc_core::workload::{Level, ParamId, WorkloadParams};

/// Protocol identifier reported by `{"cmd":"ping"}` responses.
pub const PROTOCOL_VERSION: &str = "swcc-serve/v1";

/// Most queries accepted in one batch request.
pub const MAX_QUERIES: usize = 1024;
/// Most sweep points accepted for one query.
pub const MAX_SWEEP_POINTS: u32 = 65_536;
/// Most query points (queries × sweep points) accepted in one request.
pub const MAX_POINTS: usize = 262_144;

/// The machine a query runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Machine {
    /// Shared bus with `processors` CPUs (Table 1 cost model).
    Bus {
        /// Number of processors on the bus.
        processors: u32,
    },
    /// Multistage network with `stages` stages (`2^stages` CPUs).
    Network {
        /// Number of network stages.
        stages: u32,
    },
}

/// What a query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Processing power / utilization at the operating point.
    Power,
    /// Bus contention detail (waiting time, bus utilization, CPI).
    Penalty,
    /// Parameter-sensitivity ranking (bus only; no sweep).
    Sensitivity,
}

/// One parsed query, sweep already expanded into per-point workloads.
#[derive(Debug, Clone)]
pub struct Query {
    /// What is asked for.
    pub kind: QueryKind,
    /// The coherence scheme.
    pub scheme: Scheme,
    /// The machine model.
    pub machine: Machine,
    /// One workload per sweep point (exactly one when no sweep).
    pub workloads: Vec<WorkloadParams>,
    /// The swept parameter values, parallel to `workloads` (empty when
    /// no sweep).
    pub sweep_values: Vec<f64>,
}

/// A parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server counter snapshot.
    Stats,
    /// Live telemetry: rolling windows, cumulative registry, uptime and
    /// build provenance (`{"cmd":"telemetry"}`), or the retained
    /// slow-request captures (`{"cmd":"telemetry","slow":true}`).
    Telemetry {
        /// Return the slow-request capture ring instead of the snapshot.
        slow: bool,
        /// Response rendering for the snapshot.
        format: TelemetryFormat,
    },
    /// Graceful shutdown.
    Shutdown,
    /// A query batch.
    Batch(Batch),
}

/// How a `telemetry` snapshot response is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryFormat {
    /// JSON snapshot only (the default).
    Json,
    /// JSON snapshot plus the Prometheus text exposition of the same
    /// snapshot in an `"exposition"` string field.
    Prometheus,
}

/// Longest accepted client-supplied request id.
pub const MAX_REQUEST_ID_LEN: usize = 64;

/// A query batch request.
#[derive(Debug)]
pub struct Batch {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Client-supplied request id for tracing and the access log (the
    /// server generates one when absent).
    pub request: Option<String>,
    /// Compact responses: per-query arrays of the primary metric only.
    pub compact: bool,
    /// The queries.
    pub queries: Vec<Query>,
}

fn parse_scheme(name: &str) -> Option<Scheme> {
    let folded: String = name
        .chars()
        .filter(|c| *c != '-' && *c != '_')
        .collect::<String>()
        .to_ascii_lowercase();
    match folded.as_str() {
        "base" => Some(Scheme::Base),
        "nocache" => Some(Scheme::NoCache),
        "softwareflush" => Some(Scheme::SoftwareFlush),
        "dragon" => Some(Scheme::Dragon),
        _ => None,
    }
}

fn parse_param(name: &str) -> Option<ParamId> {
    ParamId::ALL.iter().copied().find(|p| p.name() == name)
}

fn parse_kind(name: &str) -> Option<QueryKind> {
    match name {
        "power" => Some(QueryKind::Power),
        "penalty" => Some(QueryKind::Penalty),
        "sensitivity" => Some(QueryKind::Sensitivity),
        _ => None,
    }
}

fn parse_machine(value: &Value) -> Result<Machine, String> {
    let kind = value
        .get_field("interconnect")
        .and_then(Value::as_str)
        .ok_or("machine needs an \"interconnect\" of \"bus\" or \"network\"")?;
    match kind {
        "bus" => {
            let processors = value
                .get_field("processors")
                .and_then(Value::as_u64)
                .ok_or("bus machine needs an integer \"processors\"")?;
            if processors == 0 || processors > u64::from(u32::MAX) {
                return Err("\"processors\" must be between 1 and 2^32-1".into());
            }
            Ok(Machine::Bus {
                processors: processors as u32,
            })
        }
        "network" => {
            let stages = value
                .get_field("stages")
                .and_then(Value::as_u64)
                .ok_or("network machine needs an integer \"stages\"")?;
            if stages == 0 || stages > 30 {
                return Err("\"stages\" must be between 1 and 30".into());
            }
            Ok(Machine::Network {
                stages: stages as u32,
            })
        }
        other => Err(format!("unknown interconnect \"{other}\"")),
    }
}

fn parse_workload(value: Option<&Value>) -> Result<WorkloadParams, String> {
    let mut workload = WorkloadParams::at_level(Level::Middle);
    let Some(value) = value else {
        return Ok(workload);
    };
    let fields = value
        .as_object()
        .ok_or("\"workload\" must be an object of parameter overrides")?;
    for (name, raw) in fields {
        let param = parse_param(name).ok_or_else(|| format!("unknown parameter \"{name}\""))?;
        let v = raw
            .as_f64()
            .ok_or_else(|| format!("parameter \"{name}\" must be a number"))?;
        workload = workload
            .with_param(param, v)
            .map_err(|e| format!("parameter \"{name}\": {e}"))?;
    }
    Ok(workload)
}

fn parse_query(value: &Value) -> Result<Query, String> {
    let kind = match value.get_field("kind") {
        None => QueryKind::Power,
        Some(v) => {
            let name = v.as_str().ok_or("\"kind\" must be a string")?;
            parse_kind(name).ok_or_else(|| format!("unknown kind \"{name}\""))?
        }
    };
    let scheme_name = value
        .get_field("scheme")
        .and_then(Value::as_str)
        .ok_or("query needs a string \"scheme\"")?;
    let scheme =
        parse_scheme(scheme_name).ok_or_else(|| format!("unknown scheme \"{scheme_name}\""))?;
    let machine = parse_machine(
        value
            .get_field("machine")
            .ok_or("query needs a \"machine\" object")?,
    )?;
    if matches!(machine, Machine::Network { .. }) {
        if scheme.requires_bus() {
            return Err(format!("scheme \"{scheme}\" requires a bus interconnect"));
        }
        if kind != QueryKind::Power {
            return Err("only \"power\" queries are supported on a network machine".into());
        }
    }
    let base = parse_workload(value.get_field("workload"))?;

    let (workloads, sweep_values) = match value.get_field("sweep") {
        None => (vec![base], Vec::new()),
        Some(sweep) => {
            if kind == QueryKind::Sensitivity {
                return Err("\"sensitivity\" queries do not take a sweep".into());
            }
            let name = sweep
                .get_field("param")
                .and_then(Value::as_str)
                .ok_or("sweep needs a string \"param\"")?;
            let param =
                parse_param(name).ok_or_else(|| format!("unknown sweep parameter \"{name}\""))?;
            let from = sweep
                .get_field("from")
                .and_then(Value::as_f64)
                .ok_or("sweep needs a numeric \"from\"")?;
            let to = sweep
                .get_field("to")
                .and_then(Value::as_f64)
                .ok_or("sweep needs a numeric \"to\"")?;
            if !from.is_finite() || !to.is_finite() {
                return Err("sweep bounds must be finite".into());
            }
            let points = sweep
                .get_field("points")
                .and_then(Value::as_u64)
                .ok_or("sweep needs an integer \"points\"")?;
            if points == 0 || points > u64::from(MAX_SWEEP_POINTS) {
                return Err(format!(
                    "sweep \"points\" must be between 1 and {MAX_SWEEP_POINTS}"
                ));
            }
            let points = points as u32;
            let mut workloads = Vec::with_capacity(points as usize);
            let mut values = Vec::with_capacity(points as usize);
            for i in 0..points {
                let v = if points == 1 {
                    from
                } else {
                    from + (to - from) * f64::from(i) / f64::from(points - 1)
                };
                let w = base
                    .with_param(param, v)
                    .map_err(|e| format!("sweep point {i} ({name} = {v}): {e}"))?;
                workloads.push(w);
                values.push(v);
            }
            (workloads, values)
        }
    };

    Ok(Query {
        kind,
        scheme,
        machine,
        workloads,
        sweep_values,
    })
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message naming the offending query index
/// (`"query 3: …"`) for batch requests.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if !value.is_object() {
        return Err("request must be a JSON object".into());
    }
    if let Some(cmd) = value.get_field("cmd") {
        let name = cmd.as_str().ok_or("\"cmd\" must be a string")?;
        return match name {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "telemetry" => {
                let slow = value
                    .get_field("slow")
                    .and_then(Value::as_bool)
                    .unwrap_or(false);
                let format = match value.get_field("format") {
                    None => TelemetryFormat::Json,
                    Some(v) => match v.as_str() {
                        Some("json") => TelemetryFormat::Json,
                        Some("prometheus") => TelemetryFormat::Prometheus,
                        _ => {
                            return Err(
                                "telemetry \"format\" must be \"json\" or \"prometheus\"".into()
                            )
                        }
                    },
                };
                Ok(Request::Telemetry { slow, format })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown command \"{other}\"")),
        };
    }
    let queries = value
        .get_field("queries")
        .and_then(Value::as_array)
        .ok_or("request needs a \"queries\" array (or a \"cmd\")")?;
    if queries.is_empty() {
        return Err("\"queries\" must not be empty".into());
    }
    if queries.len() > MAX_QUERIES {
        return Err(format!(
            "too many queries: {} (limit {MAX_QUERIES})",
            queries.len()
        ));
    }
    let id = value.get_field("id").and_then(Value::as_u64);
    let request = match value.get_field("request") {
        None => None,
        Some(v) => {
            let rid = v.as_str().ok_or("\"request\" must be a string")?;
            if rid.is_empty() || rid.len() > MAX_REQUEST_ID_LEN {
                return Err(format!(
                    "\"request\" must be 1..={MAX_REQUEST_ID_LEN} bytes"
                ));
            }
            Some(rid.to_string())
        }
    };
    let compact = value
        .get_field("compact")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let mut parsed = Vec::with_capacity(queries.len());
    let mut total_points = 0usize;
    for (i, q) in queries.iter().enumerate() {
        let query = parse_query(q).map_err(|e| format!("query {i}: {e}"))?;
        total_points += query.workloads.len();
        parsed.push(query);
    }
    if total_points > MAX_POINTS {
        return Err(format!(
            "too many query points: {total_points} (limit {MAX_POINTS})"
        ));
    }
    Ok(Request::Batch(Batch {
        id,
        request,
        compact,
        queries: parsed,
    }))
}

/// Appends a float in shortest round-trip form (`null` if non-finite,
/// mirroring the vendored JSON serializer).
pub fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends a JSON string literal (the protocol never emits strings
/// needing more than quote/backslash/control escapes).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an error response line.
pub fn error_response(id: Option<u64>, message: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"ok\":false");
    if let Some(id) = id {
        let _ = write!(out, ",\"id\":{id}");
    }
    out.push_str(",\"error\":");
    push_json_str(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_parse_in_every_spelling() {
        for (name, scheme) in [
            ("base", Scheme::Base),
            ("Base", Scheme::Base),
            ("no-cache", Scheme::NoCache),
            ("No-Cache", Scheme::NoCache),
            ("nocache", Scheme::NoCache),
            ("software-flush", Scheme::SoftwareFlush),
            ("Software-Flush", Scheme::SoftwareFlush),
            ("software_flush", Scheme::SoftwareFlush),
            ("dragon", Scheme::Dragon),
        ] {
            assert_eq!(parse_scheme(name), Some(scheme), "{name}");
        }
        assert_eq!(parse_scheme("snoopy"), None);
    }

    #[test]
    fn display_names_round_trip() {
        for scheme in Scheme::ALL {
            assert_eq!(parse_scheme(&scheme.to_string()), Some(scheme));
        }
    }

    #[test]
    fn batch_parses_with_defaults_and_sweeps() {
        let line = r#"{"id":9,"queries":[
            {"scheme":"dragon","machine":{"interconnect":"bus","processors":16}},
            {"kind":"power","scheme":"base","machine":{"interconnect":"network","stages":6},
             "workload":{"shd":0.1},
             "sweep":{"param":"apl","from":1.0,"to":25.0,"points":5}}
        ]}"#
        .replace('\n', " ");
        let Request::Batch(batch) = parse_request(&line).unwrap() else {
            panic!("expected a batch");
        };
        assert_eq!(batch.id, Some(9));
        assert!(!batch.compact);
        assert_eq!(batch.queries.len(), 2);
        assert_eq!(batch.queries[0].kind, QueryKind::Power);
        assert_eq!(batch.queries[0].workloads.len(), 1);
        assert!(batch.queries[0].sweep_values.is_empty());
        let sweep = &batch.queries[1];
        assert_eq!(sweep.workloads.len(), 5);
        assert_eq!(sweep.sweep_values, vec![1.0, 7.0, 13.0, 19.0, 25.0]);
        assert_eq!(sweep.workloads[2].param(ParamId::Apl), 13.0);
        assert_eq!(sweep.workloads[2].param(ParamId::Shd), 0.1);
    }

    #[test]
    fn errors_name_the_offending_query() {
        let line = r#"{"queries":[
            {"scheme":"base","machine":{"interconnect":"bus","processors":4}},
            {"scheme":"snoopy","machine":{"interconnect":"bus","processors":4}}
        ]}"#
        .replace('\n', " ");
        let err = parse_request(&line).unwrap_err();
        assert!(err.contains("query 1"), "{err}");
        assert!(err.contains("snoopy"), "{err}");
    }

    #[test]
    fn network_rejects_bus_only_requests() {
        let dragon =
            r#"{"queries":[{"scheme":"dragon","machine":{"interconnect":"network","stages":4}}]}"#;
        let err = parse_request(dragon).unwrap_err();
        assert!(err.contains("requires a bus"), "{err}");

        let penalty = r#"{"queries":[{"kind":"penalty","scheme":"base","machine":{"interconnect":"network","stages":4}}]}"#;
        let err = parse_request(penalty).unwrap_err();
        assert!(err.contains("power"), "{err}");
    }

    #[test]
    fn sweep_bounds_are_validated() {
        let zero = r#"{"queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":4},"sweep":{"param":"shd","from":0.0,"to":0.1,"points":0}}]}"#;
        assert!(parse_request(zero).unwrap_err().contains("points"));

        let out_of_domain = r#"{"queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":4},"sweep":{"param":"shd","from":0.0,"to":2.0,"points":3}}]}"#;
        let err = parse_request(out_of_domain).unwrap_err();
        assert!(err.contains("sweep point"), "{err}");
    }

    #[test]
    fn control_commands_parse() {
        assert!(matches!(
            parse_request(r#"{"cmd":"ping"}"#).unwrap(),
            Request::Ping
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
        assert!(parse_request(r#"{"cmd":"reboot"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn telemetry_command_parses_with_options() {
        assert!(matches!(
            parse_request(r#"{"cmd":"telemetry"}"#).unwrap(),
            Request::Telemetry {
                slow: false,
                format: TelemetryFormat::Json
            }
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"telemetry","slow":true}"#).unwrap(),
            Request::Telemetry { slow: true, .. }
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"telemetry","format":"prometheus"}"#).unwrap(),
            Request::Telemetry {
                format: TelemetryFormat::Prometheus,
                ..
            }
        ));
        let err = parse_request(r#"{"cmd":"telemetry","format":"xml"}"#).unwrap_err();
        assert!(err.contains("prometheus"), "{err}");
    }

    #[test]
    fn batch_request_id_is_validated() {
        let ok = r#"{"request":"req-7","queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":4}}]}"#;
        let Request::Batch(batch) = parse_request(ok).unwrap() else {
            panic!("expected a batch");
        };
        assert_eq!(batch.request.as_deref(), Some("req-7"));

        let long = format!(
            r#"{{"request":"{}","queries":[{{"scheme":"base","machine":{{"interconnect":"bus","processors":4}}}}]}}"#,
            "x".repeat(MAX_REQUEST_ID_LEN + 1)
        );
        assert!(parse_request(&long).unwrap_err().contains("request"));
        let empty = r#"{"request":"","queries":[{"scheme":"base","machine":{"interconnect":"bus","processors":4}}]}"#;
        assert!(parse_request(empty).is_err());
    }

    #[test]
    fn floats_round_trip_through_the_response_format() {
        for v in [0.04992, 1.06912, f64::MIN_POSITIVE, 1.0 / 3.0, 16.0] {
            let mut s = String::new();
            push_f64(&mut s, v);
            let parsed: f64 = s.parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v}");
        }
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn error_response_escapes_the_message() {
        let resp = error_response(Some(3), "bad \"scheme\"");
        assert_eq!(resp, r#"{"ok":false,"id":3,"error":"bad \"scheme\""}"#);
    }
}
