//! # swcc-serve — the batch coherence-query service
//!
//! A std-only TCP service that answers batches of coherence-model
//! queries — `(scheme, workload, machine) → power / penalty /
//! sensitivity` — through the `swcc-core` batch solver engine, fronted
//! by the workspace's sharded single-flight solved-point cache
//! ([`swcc_core::cache::SolvedPointCache`]).
//!
//! The wire protocol (newline-delimited JSON) is documented in
//! [`protocol`]; the admission/solve pipeline and its bit-identity
//! guarantees in [`server`]; the emitted metrics in [`metrics`]. Two
//! binaries ship with the crate:
//!
//! * `swcc-serve` — the server.
//! * `swcc-loadgen` — a closed-loop load harness that measures
//!   throughput and latency quantiles against a running server, gates
//!   on conservative floors, and can bit-verify served results against
//!   direct library calls (`--verify`).
//!
//! Served results are **bit-identical** to direct library calls: bus
//! answers match [`swcc_core::bus::analyze_bus`], network answers match
//! the modern guarded-Newton solver path
//! ([`swcc_core::batch::BatchPatelSolver`], equivalently
//! `patel::solve_with` cold). The golden end-to-end tests and
//! `swcc-loadgen --verify` both check this across the wire.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use protocol::{
    parse_request, Batch, Machine, Query, QueryKind, Request, TelemetryFormat, PROTOCOL_VERSION,
};
pub use server::{
    handle_request, run_batch, run_batch_traced, spawn, BusPoint, RunningServer, ServeConfig,
    ServeState,
};
pub use telemetry::{PhaseSpan, RequestTrace, Telemetry, TelemetrySnapshot, TELEMETRY_SCHEMA};
