//! Live service telemetry: rolling windows, the structured access log,
//! and the slow-request capture ring behind `{"cmd":"telemetry"}`.
//!
//! Every request the server handles is folded into a
//! [`swcc_obs::window::WindowRing`] (per-second counters + latency
//! samples, snapshotted into 1s/10s/60s rates and p50/p90/p99), appended
//! as one JSONL line to the optional access log, and — when it exceeds
//! the slow threshold — captured with its full phase-span breakdown into
//! a bounded ring retrievable via `{"cmd":"telemetry","slow":true}`.
//!
//! The `telemetry` response renders the windowed snapshot, the
//! cumulative metrics registry, uptime, and build provenance as JSON;
//! with `"format":"prometheus"` the same snapshot is additionally
//! rendered in the Prometheus text exposition format — both renderings
//! come from one snapshot, so they are consistent by construction (and
//! test-asserted). The optional HTTP-ish exposition listener
//! (`--telemetry-addr`) serves the same three views to scrapers.
//!
//! This module is on the request path: like [`crate::server`] and
//! [`crate::protocol`] it is lint-enforced panic-free.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use swcc_obs::sync::Mutex;
use swcc_obs::window::{self, WindowRing, WindowedSnapshot};
use swcc_obs::{MetricsRegistry, MetricsSnapshot};

use crate::metrics;
use crate::protocol::push_json_str;

/// Schema identifier carried by `telemetry` responses.
pub const TELEMETRY_SCHEMA: &str = "swcc-telemetry/v1";

/// Window counter index: request lines handled.
pub const W_REQUESTS: usize = 0;
/// Window counter index: query points answered.
pub const W_QUERIES: usize = 1;
/// Window counter index: error responses.
pub const W_ERRORS: usize = 2;
/// Window counter index: cache hits.
pub const W_HITS: usize = 3;
/// Window counter index: cache misses.
pub const W_MISSES: usize = 4;
/// Window counter index: coalesced admissions.
pub const W_COALESCED: usize = 5;

/// Names of the windowed counters, in index order. These are window
/// labels, not registry metric names — the cumulative twins live in
/// [`crate::metrics`].
pub const WINDOW_COUNTERS: &[&str] = &[
    "requests",
    "queries",
    "errors",
    "hits",
    "misses",
    "coalesced",
];

/// Latency samples kept per second (beyond this, quantiles are computed
/// over the most recent samples and `observed > sampled` in snapshots).
const SAMPLES_PER_SECOND: usize = 1024;

/// Git commit the serving binary was built from (`"unknown"` outside a
/// git checkout).
pub fn build_commit() -> &'static str {
    env!("SWCC_GIT_COMMIT")
}

/// `rustc --version` of the building toolchain.
pub fn build_rustc() -> &'static str {
    env!("SWCC_RUSTC")
}

/// Cargo build profile (`"debug"` / `"release"`).
pub fn build_profile() -> &'static str {
    env!("SWCC_PROFILE")
}

/// Current wall-clock time as whole epoch seconds (window bucket key).
pub fn epoch_seconds() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Current wall-clock time as fractional epoch seconds (log timestamps).
fn epoch_seconds_f64() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// One timed phase inside a request, recorded for the slow-request
/// capture (offsets are microseconds from the start of the request).
#[derive(Debug, Clone)]
pub struct PhaseSpan {
    /// Phase name (`"plan"`, `"admit"`, `"solve.bus"`, …).
    pub name: &'static str,
    /// Start offset from the beginning of the request, microseconds.
    pub start_us: f64,
    /// Phase duration, microseconds.
    pub dur_us: f64,
    /// Solver lanes submitted during the phase (solve phases only).
    pub lanes: u64,
}

/// Per-request accounting accumulated while a batch executes, consumed
/// by [`Telemetry::record`] for windows, the access log, and slow
/// captures.
#[derive(Debug, Default)]
pub struct RequestTrace {
    /// Queries in the batch.
    pub queries: u64,
    /// Expanded query points.
    pub points: u64,
    /// Points answered from the cache.
    pub hits: u64,
    /// Points that claimed and solved a cold slot.
    pub misses: u64,
    /// Points coalesced onto another solve.
    pub coalesced: u64,
    /// Microseconds spent waiting on other requests' in-flight solves.
    pub flight_wait_us: f64,
    /// Distinct schemes named by the batch, in first-seen order.
    pub schemes: Vec<String>,
    /// Timed phases, in execution order.
    pub phases: Vec<PhaseSpan>,
}

impl RequestTrace {
    /// Notes a scheme (deduplicated, order-preserving).
    pub fn note_scheme(&mut self, scheme: &str) {
        if !self.schemes.iter().any(|s| s == scheme) {
            self.schemes.push(scheme.to_string());
        }
    }

    /// Appends one timed phase.
    pub fn phase(
        &mut self,
        name: &'static str,
        started: Instant,
        request_start: Instant,
        lanes: u64,
    ) {
        let now = Instant::now();
        self.phases.push(PhaseSpan {
            name,
            start_us: started.duration_since(request_start).as_secs_f64() * 1e6,
            dur_us: now.duration_since(started).as_secs_f64() * 1e6,
            lanes,
        });
    }
}

/// The serve-side telemetry hub owned by
/// [`crate::server::ServeState`]: windows, request-id generator, slow
/// ring, access log.
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    seq: AtomicU64,
    windows: WindowRing,
    slow_threshold_us: f64,
    slow_capacity: usize,
    slow: Mutex<VecDeque<String>>,
    access: Option<Mutex<BufWriter<File>>>,
}

impl Telemetry {
    /// Builds the hub. `access_log` is opened append-or-create; an open
    /// failure disables the log (reported on stderr) rather than
    /// failing the server. A non-positive `slow_threshold_us` disables
    /// slow capture.
    pub fn new(
        access_log: Option<&str>,
        slow_threshold_us: f64,
        slow_capacity: usize,
    ) -> Telemetry {
        let access = access_log.and_then(|path| {
            match OpenOptions::new().create(true).append(true).open(path) {
                Ok(file) => Some(Mutex::new(BufWriter::new(file))),
                Err(e) => {
                    eprintln!("swcc-serve: access log {path} disabled: {e}");
                    None
                }
            }
        });
        Telemetry {
            started: Instant::now(),
            seq: AtomicU64::new(0),
            windows: WindowRing::new(WINDOW_COUNTERS, SAMPLES_PER_SECOND),
            slow_threshold_us,
            slow_capacity: slow_capacity.max(1),
            slow: Mutex::new(VecDeque::new()),
            access,
        }
    }

    /// Seconds since the server started.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// A fresh server-generated request id (`"r1"`, `"r2"`, …), used
    /// when the client did not supply one.
    pub fn next_request_id(&self) -> String {
        format!("r{}", self.seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// The live window ring (the loadgen timeline reads its snapshot
    /// through the `telemetry` command).
    pub fn windows(&self) -> &WindowRing {
        &self.windows
    }

    /// Folds one finished request into the windows, the access log, and
    /// (when over the threshold) the slow-capture ring.
    pub fn record(
        &self,
        now_s: u64,
        request_id: &str,
        cmd: &'static str,
        ok: bool,
        duration_us: f64,
        trace: &RequestTrace,
    ) {
        self.windows.add(now_s, W_REQUESTS, 1);
        if trace.points > 0 {
            self.windows.add(now_s, W_QUERIES, trace.points);
        }
        if !ok {
            self.windows.add(now_s, W_ERRORS, 1);
        }
        if trace.hits > 0 {
            self.windows.add(now_s, W_HITS, trace.hits);
        }
        if trace.misses > 0 {
            self.windows.add(now_s, W_MISSES, trace.misses);
        }
        if trace.coalesced > 0 {
            self.windows.add(now_s, W_COALESCED, trace.coalesced);
        }
        self.windows.sample(now_s, duration_us);

        if let Some(access) = &self.access {
            let line = access_line(request_id, cmd, ok, duration_us, trace);
            let mut writer = access.lock();
            let written = writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush());
            if swcc_obs::enabled() {
                match written {
                    Ok(()) => swcc_obs::counter_add(metrics::SERVE_ACCESS_LOG_LINES, 1),
                    Err(_) => swcc_obs::counter_add(metrics::SERVE_ACCESS_LOG_ERRORS, 1),
                }
            }
        }

        if self.slow_threshold_us > 0.0 && duration_us > self.slow_threshold_us {
            let capture = slow_capture(
                request_id,
                cmd,
                ok,
                duration_us,
                self.slow_threshold_us,
                trace,
            );
            let mut ring = self.slow.lock();
            while ring.len() >= self.slow_capacity {
                ring.pop_front();
            }
            ring.push_back(capture);
            if swcc_obs::enabled() {
                swcc_obs::counter_add(metrics::SERVE_SLOW_CAPTURED, 1);
            }
        }
    }

    /// The currently retained slow captures, oldest first.
    pub fn slow_captures(&self) -> Vec<String> {
        self.slow.lock().iter().cloned().collect()
    }

    /// Takes one consistent snapshot of everything the `telemetry`
    /// command reports.
    pub fn capture(&self, now_s: u64, registry: Option<&MetricsRegistry>) -> TelemetrySnapshot {
        TelemetrySnapshot {
            uptime_s: self.uptime_s(),
            windows: self.windows.snapshot(now_s),
            cumulative: registry.map(MetricsRegistry::snapshot),
        }
    }
}

/// One consistent view of the live telemetry: the rolling windows, the
/// cumulative registry (when installed), and uptime. Both renderings
/// below read exactly these fields, so the JSON and Prometheus views of
/// one snapshot can never disagree.
#[derive(Debug)]
pub struct TelemetrySnapshot {
    /// Seconds since server start at snapshot time.
    pub uptime_s: f64,
    /// The rolling windows.
    pub windows: WindowedSnapshot,
    /// The cumulative registry, when one is installed.
    pub cumulative: Option<MetricsSnapshot>,
}

impl TelemetrySnapshot {
    /// Renders the protocol response line. With `include_exposition`
    /// the same snapshot's Prometheus text rides along in an
    /// `"exposition"` string field.
    pub fn to_response(&self, include_exposition: bool) -> String {
        let mut out = String::with_capacity(2048);
        let _ = write!(
            out,
            "{{\"ok\":true,\"schema\":\"{TELEMETRY_SCHEMA}\",\"uptime_s\":{},\
             \"build\":{{\"commit\":",
            self.uptime_s
        );
        push_json_str(&mut out, build_commit());
        out.push_str(",\"rustc\":");
        push_json_str(&mut out, build_rustc());
        out.push_str(",\"profile\":");
        push_json_str(&mut out, build_profile());
        out.push_str("},\"windows\":");
        out.push_str(&self.windows.to_json());
        out.push_str(",\"cumulative\":");
        match &self.cumulative {
            Some(snapshot) => out.push_str(&window::registry_to_json(snapshot)),
            None => out.push_str("null"),
        }
        if include_exposition {
            out.push_str(",\"exposition\":");
            push_json_str(&mut out, &self.to_prometheus());
        }
        out.push('}');
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (the raw body the `--telemetry-addr` listener serves under
    /// `/metrics`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# TYPE swcc_serve_uptime_seconds gauge");
        let _ = writeln!(out, "swcc_serve_uptime_seconds {}", self.uptime_s);
        out.push_str(&window::build_info_prometheus(
            "swcc_serve_",
            build_commit(),
            build_rustc(),
            build_profile(),
        ));
        out.push_str(&self.windows.to_prometheus("swcc_serve_window"));
        if let Some(snapshot) = &self.cumulative {
            out.push_str(&window::registry_to_prometheus(snapshot, "swcc_"));
        }
        out
    }
}

/// Renders one access-log JSONL line.
fn access_line(
    request_id: &str,
    cmd: &'static str,
    ok: bool,
    duration_us: f64,
    trace: &RequestTrace,
) -> String {
    let mut out = String::with_capacity(192);
    let _ = write!(out, "{{\"ts_s\":{},\"request\":", epoch_seconds_f64());
    push_json_str(&mut out, request_id);
    let _ = write!(out, ",\"cmd\":\"{cmd}\",\"ok\":{ok},\"schemes\":[");
    for (i, scheme) in trace.schemes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, scheme);
    }
    let _ = write!(
        out,
        "],\"queries\":{},\"points\":{},\"hits\":{},\"misses\":{},\
         \"coalesced\":{},\"flight_wait_us\":{},\"duration_us\":{}}}",
        trace.queries,
        trace.points,
        trace.hits,
        trace.misses,
        trace.coalesced,
        finite(trace.flight_wait_us),
        finite(duration_us),
    );
    out
}

/// Renders one slow-request capture: the request identity plus its full
/// phase-span tree (the request span at offset zero, phases nested
/// under it by construction).
fn slow_capture(
    request_id: &str,
    cmd: &'static str,
    ok: bool,
    duration_us: f64,
    threshold_us: f64,
    trace: &RequestTrace,
) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"request\":");
    push_json_str(&mut out, request_id);
    let _ = write!(
        out,
        ",\"cmd\":\"{cmd}\",\"ok\":{ok},\"captured_at_s\":{},\
         \"duration_us\":{},\"threshold_us\":{},\"queries\":{},\"points\":{},\
         \"hits\":{},\"misses\":{},\"coalesced\":{},\"flight_wait_us\":{},\
         \"spans\":[{{\"name\":\"serve.request\",\"start_us\":0,\"dur_us\":{}}}",
        epoch_seconds_f64(),
        finite(duration_us),
        finite(threshold_us),
        trace.queries,
        trace.points,
        trace.hits,
        trace.misses,
        trace.coalesced,
        finite(trace.flight_wait_us),
        finite(duration_us),
    );
    for phase in &trace.phases {
        let _ = write!(
            out,
            ",{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"lanes\":{}}}",
            phase.name,
            finite(phase.start_us),
            finite(phase.dur_us),
            phase.lanes,
        );
    }
    out.push_str("]}");
    out
}

/// Clamps non-finite telemetry floats to zero for rendering (they can
/// only arise from clock anomalies, never from served results).
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> RequestTrace {
        let mut t = RequestTrace {
            queries: 2,
            points: 64,
            hits: 60,
            misses: 4,
            coalesced: 0,
            flight_wait_us: 12.5,
            ..RequestTrace::default()
        };
        t.note_scheme("dragon");
        t.note_scheme("base");
        t.note_scheme("dragon");
        t
    }

    #[test]
    fn request_ids_are_unique_and_sequential() {
        let t = Telemetry::new(None, 0.0, 4);
        assert_eq!(t.next_request_id(), "r1");
        assert_eq!(t.next_request_id(), "r2");
    }

    #[test]
    fn record_folds_into_the_windows() {
        let t = Telemetry::new(None, 0.0, 4);
        let now = epoch_seconds();
        t.record(now, "r1", "batch", true, 800.0, &trace());
        t.record(now, "r2", "batch", false, 200.0, &RequestTrace::default());
        let snap = t.windows().snapshot(now + 1);
        assert_eq!(snap.total(10, "requests"), Some(2));
        assert_eq!(snap.total(10, "queries"), Some(64));
        assert_eq!(snap.total(10, "errors"), Some(1));
        assert_eq!(snap.total(10, "hits"), Some(60));
        assert_eq!(snap.window(10).map(|w| w.observed), Some(2));
    }

    #[test]
    fn slow_ring_is_bounded_and_keeps_the_newest() {
        let t = Telemetry::new(None, 100.0, 2);
        let now = epoch_seconds();
        for i in 0..5u64 {
            t.record(
                now,
                &format!("r{i}"),
                "batch",
                true,
                500.0 + i as f64,
                &trace(),
            );
        }
        t.record(now, "fast", "batch", true, 50.0, &trace());
        let captures = t.slow_captures();
        assert_eq!(captures.len(), 2);
        assert!(captures[0].contains("\"request\":\"r3\""));
        assert!(captures[1].contains("\"request\":\"r4\""));
        assert!(captures[1].contains("\"name\":\"serve.request\""));
    }

    #[test]
    fn schemes_deduplicate_in_first_seen_order() {
        let t = trace();
        assert_eq!(t.schemes, vec!["dragon".to_string(), "base".to_string()]);
    }

    #[test]
    fn json_and_prometheus_come_from_one_snapshot() {
        let t = Telemetry::new(None, 0.0, 4);
        let now = epoch_seconds();
        t.record(now, "r1", "batch", true, 123.0, &trace());
        let snap = t.capture(now + 1, None);
        let json = snap.to_response(true);
        let prom = snap.to_prometheus();
        // The uptime is sampled once and must appear identically
        // formatted in both renderings.
        let uptime = format!("{}", snap.uptime_s);
        assert!(json.contains(&format!("\"uptime_s\":{uptime}")));
        assert!(prom.contains(&format!("swcc_serve_uptime_seconds {uptime}")));
        // Window totals agree.
        assert!(json.contains("\"queries\":64"));
        assert!(prom.contains("swcc_serve_window_total{counter=\"queries\",window=\"10s\"} 64"));
        // The in-band exposition field is the same text.
        assert!(json.contains("\\\"queries\\\",window=\\\"10s\\\"} 64"));
        assert!(json.contains(&format!("\"commit\":\"{}\"", build_commit())));
    }

    #[test]
    fn access_line_is_one_json_object_with_the_contract_fields() {
        let line = access_line("r9", "batch", true, 42.5, &trace());
        for needle in [
            "\"request\":\"r9\"",
            "\"cmd\":\"batch\"",
            "\"ok\":true",
            "\"schemes\":[\"dragon\",\"base\"]",
            "\"points\":64",
            "\"hits\":60",
            "\"misses\":4",
            "\"coalesced\":0",
            "\"flight_wait_us\":12.5",
            "\"duration_us\":42.5",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
}
