//! Captures build provenance (git commit, toolchain versions, profile)
//! into compile-time env vars so `stats` and `telemetry` responses can
//! identify the binary that produced them — the same stamp the run
//! manifests carry. Every value degrades to `"unknown"` rather than
//! failing the build; provenance is best-effort by design.

use std::process::Command;

fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().next()?.trim().to_string();
    if line.is_empty() {
        None
    } else {
        Some(line)
    }
}

fn main() {
    let unknown = || "unknown".to_string();
    let git_commit =
        command_line("git", &["rev-parse", "--short=12", "HEAD"]).unwrap_or_else(unknown);
    let rustc = std::env::var("RUSTC")
        .ok()
        .and_then(|rc| command_line(&rc, &["--version"]))
        .unwrap_or_else(unknown);
    let profile = std::env::var("PROFILE").unwrap_or_else(|_| unknown());
    println!("cargo:rustc-env=SWCC_GIT_COMMIT={git_commit}");
    println!("cargo:rustc-env=SWCC_RUSTC={rustc}");
    println!("cargo:rustc-env=SWCC_PROFILE={profile}");
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
