//! Benchmarks for the extension experiments (packet switching,
//! directory hardware, network-simulator validation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swcc_bench::bench_options;
use swcc_experiments::registry::find;

fn extensions(c: &mut Criterion) {
    let opts = bench_options();
    // Model-only extensions: full sampling.
    for id in ["ext_packet", "ext_directory", "ext_invalidate"] {
        let exp = find(id).unwrap_or_else(|| panic!("{id} registered"));
        println!("{}", (exp.run)(&opts).render());
        c.bench_function(id, |b| b.iter(|| black_box((exp.run)(&opts))));
    }
    // Simulation-backed: reduced samples.
    let mut group = c.benchmark_group("extensions_sim");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    for id in ["ext_netsim", "ext_tracenet", "ext_service"] {
        let exp = find(id).unwrap_or_else(|| panic!("{id} registered"));
        println!("{}", (exp.run)(&opts).render());
        group.bench_function(id, |b| b.iter(|| black_box((exp.run)(&opts))));
    }
    group.finish();
}

criterion_group!(benches, extensions);
criterion_main!(benches);
