//! One benchmark per paper table: regenerates the artifact and times it.
//!
//! The table experiments are pure model evaluation; their benchmarks
//! double as regression guards on the cost of the analytical pipeline
//! (mix construction, demand, MVA, sensitivity sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swcc_bench::bench_options;
use swcc_experiments::registry::find;

fn bench_table(c: &mut Criterion, id: &'static str) {
    let exp = find(id).unwrap_or_else(|| panic!("{id} registered"));
    let opts = bench_options();
    // Render once so `cargo bench` output doubles as a reproduction log.
    println!("{}", (exp.run)(&opts).render());
    c.bench_function(id, |b| b.iter(|| black_box((exp.run)(&opts))));
}

fn tables(c: &mut Criterion) {
    for n in 1..=9 {
        // table8 is the only heavy one (44 MVA solves); all are cheap.
        bench_table(c, Box::leak(format!("table{n}").into_boxed_str()));
    }
}

criterion_group!(benches, tables);
criterion_main!(benches);
