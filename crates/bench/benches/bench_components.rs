//! Component microbenchmarks: the individual solvers and substrates the
//! experiments are built from.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use swcc_core::bus::{analyze_bus, analyze_bus_sweep};
use swcc_core::network::{analyze_network, solve};
use swcc_core::queue::{machine_repairman, machine_repairman_sweep};
use swcc_core::scheme::Scheme;
use swcc_core::system::BusSystemModel;
use swcc_core::workload::WorkloadParams;
use swcc_sim::measure::measure_workload;
use swcc_sim::{simulate, ProtocolKind, SimConfig};
use swcc_trace::synth::Preset;

fn model_solvers(c: &mut Criterion) {
    let w = WorkloadParams::default();
    let sys = BusSystemModel::new();
    c.bench_function("scheme_mix_dragon", |b| {
        b.iter(|| black_box(Scheme::Dragon.mix(&w)))
    });
    c.bench_function("mva_16_customers", |b| {
        b.iter(|| machine_repairman(black_box(16), 0.37, 1.2).unwrap())
    });
    c.bench_function("mva_1024_customers", |b| {
        b.iter(|| machine_repairman(black_box(1024), 0.37, 1.2).unwrap())
    });
    c.bench_function("mva_sweep_1024_customers", |b| {
        b.iter(|| machine_repairman_sweep(black_box(1024), 0.37, 1.2).unwrap())
    });
    c.bench_function("patel_fixed_point_8_stages", |b| {
        b.iter(|| solve(black_box(0.03), 20.0, 8).unwrap())
    });
    c.bench_function("analyze_bus_dragon_16", |b| {
        b.iter(|| analyze_bus(Scheme::Dragon, &w, &sys, black_box(16)).unwrap())
    });
    c.bench_function("analyze_bus_sweep_dragon_64", |b| {
        b.iter(|| analyze_bus_sweep(Scheme::Dragon, &w, &sys, black_box(64)).unwrap())
    });
    c.bench_function("analyze_network_sf_256cpu", |b| {
        b.iter(|| analyze_network(Scheme::SoftwareFlush, &w, black_box(8)).unwrap())
    });
}

fn substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(15));
    let instructions = 20_000usize;
    let trace = Preset::Pops.config(4, instructions, 7).generate();
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("trace_generation_4cpu", |b| {
        b.iter(|| black_box(Preset::Pops.config(4, instructions, 7).generate()))
    });
    for protocol in ProtocolKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("simulate", protocol.to_string()),
            &protocol,
            |b, &p| {
                let cfg = SimConfig::new(p);
                b.iter(|| black_box(simulate(&trace, &cfg)))
            },
        );
    }
    group.bench_function("measure_workload_4cpu", |b| {
        let cfg = SimConfig::new(ProtocolKind::Dragon);
        b.iter(|| black_box(measure_workload(&trace, &cfg)))
    });
    // The two network fabrics at 16 processors.
    let w = WorkloadParams::default();
    let net_cfg = swcc_sim::NetworkSimConfig {
        stages: 4,
        instructions_per_cpu: 5_000,
        seed: 7,
    };
    group.bench_function("netsim_circuit_16cpu", |b| {
        b.iter(|| swcc_sim::simulate_network(Scheme::SoftwareFlush, &w, &net_cfg).unwrap())
    });
    group.bench_function("netsim_packet_16cpu", |b| {
        b.iter(|| swcc_sim::simulate_network_packet(Scheme::SoftwareFlush, &w, &net_cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, model_solvers, substrates);
criterion_main!(benches);
