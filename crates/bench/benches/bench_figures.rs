//! One benchmark per model-driven figure (Figures 4–11): regenerates
//! the artifact (printed once, so bench logs double as reproduction
//! logs) and times the full experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swcc_bench::bench_options;
use swcc_experiments::registry::find;

fn figures(c: &mut Criterion) {
    let opts = bench_options();
    for n in 4..=11 {
        let id: &'static str = Box::leak(format!("fig{n}").into_boxed_str());
        let exp = find(id).unwrap_or_else(|| panic!("{id} registered"));
        println!("{}", (exp.run)(&opts).render());
        c.bench_function(id, |b| b.iter(|| black_box((exp.run)(&opts))));
    }
}

criterion_group!(benches, figures);
criterion_main!(benches);
