//! Benchmarks for the simulation-backed validation figures (1–3).
//!
//! These dominate `cargo bench` wall time: each iteration generates
//! synthetic traces and replays them through the multiprocessor
//! simulator, so sample counts are reduced.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swcc_bench::bench_options;
use swcc_experiments::registry::find;

fn validation(c: &mut Criterion) {
    let opts = bench_options();
    let mut group = c.benchmark_group("validation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20))
        .warm_up_time(Duration::from_secs(3));
    for id in ["fig1", "fig2", "fig3"] {
        let exp = find(id).unwrap_or_else(|| panic!("{id} registered"));
        println!("{}", (exp.run)(&opts).render());
        group.bench_function(id, |b| b.iter(|| black_box((exp.run)(&opts))));
    }
    group.finish();
}

criterion_group!(benches, validation);
criterion_main!(benches);
