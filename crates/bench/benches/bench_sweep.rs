//! Sweep-engine benchmarks: the batched MVA/bus sweep against the
//! pointwise API it replaces, and warm-started Patel solves against
//! cold ones.
//!
//! The headline comparison is the 1..=64-processor bus power curve:
//! `pointwise` recomputes the MVA recurrence from population 1 for
//! every point (O(N²) total work), while `swept` extends one
//! recurrence across all populations (O(N)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use swcc_core::bus::{analyze_bus, analyze_bus_sweep};
use swcc_core::network::{network_power_curve, solve, WarmSolver};
use swcc_core::queue::{machine_repairman, machine_repairman_sweep};
use swcc_core::scheme::Scheme;
use swcc_core::system::BusSystemModel;
use swcc_core::workload::WorkloadParams;

const CURVE_POINTS: u32 = 64;

fn bus_curve(c: &mut Criterion) {
    let w = WorkloadParams::default();
    let sys = BusSystemModel::new();
    let mut group = c.benchmark_group("bus_curve_64");
    group.throughput(Throughput::Elements(u64::from(CURVE_POINTS)));
    for scheme in [Scheme::Base, Scheme::Dragon] {
        group.bench_with_input(
            BenchmarkId::new("pointwise", scheme.to_string()),
            &scheme,
            |b, &s| {
                b.iter(|| {
                    (1..=CURVE_POINTS)
                        .map(|n| analyze_bus(s, &w, &sys, black_box(n)).unwrap())
                        .collect::<Vec<_>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("swept", scheme.to_string()),
            &scheme,
            |b, &s| b.iter(|| analyze_bus_sweep(s, &w, &sys, black_box(CURVE_POINTS)).unwrap()),
        );
    }
    group.finish();
}

fn mva_curve(c: &mut Criterion) {
    let mut group = c.benchmark_group("mva_curve_64");
    group.throughput(Throughput::Elements(u64::from(CURVE_POINTS)));
    group.bench_function("pointwise", |b| {
        b.iter(|| {
            (1..=CURVE_POINTS)
                .map(|n| machine_repairman(black_box(n), 0.37, 1.2).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("swept", |b| {
        b.iter(|| machine_repairman_sweep(black_box(CURVE_POINTS), 0.37, 1.2).unwrap())
    });
    group.finish();
}

fn patel_warm_start(c: &mut Criterion) {
    const SOLVES: u32 = 50;
    let mut group = c.benchmark_group("patel_rate_sweep_50");
    group.throughput(Throughput::Elements(u64::from(SOLVES)));
    // Legacy fixed-iteration bisection, 200 halvings per solve.
    group.bench_function("legacy_bisection", |b| {
        b.iter(|| {
            (1..=SOLVES)
                .map(|i| solve(f64::from(i) * 0.002, 20.0, 8).unwrap())
                .collect::<Vec<_>>()
        })
    });
    // Newton from the light-load guess every time.
    group.bench_function("cold_newton", |b| {
        b.iter(|| {
            let mut solver = WarmSolver::new();
            (1..=SOLVES)
                .map(|i| {
                    solver.reset();
                    solver.solve(f64::from(i) * 0.002, 20.0, 8).unwrap()
                })
                .collect::<Vec<_>>()
        })
    });
    // Newton seeded with the previous sweep point's root.
    group.bench_function("warm_newton", |b| {
        b.iter(|| {
            let mut solver = WarmSolver::new();
            (1..=SOLVES)
                .map(|i| solver.solve(f64::from(i) * 0.002, 20.0, 8).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.finish();

    let w = WorkloadParams::default();
    c.bench_function("network_power_curve_10_stages", |b| {
        b.iter(|| network_power_curve(Scheme::SoftwareFlush, &w, black_box(10)).unwrap())
    });
}

criterion_group!(benches, bus_curve, mva_curve, patel_warm_start);
criterion_main!(benches);
