//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each ablation prints the quantitative comparison once (so the bench
//! log records the finding) and then times the cheaper/faster variant
//! pair:
//!
//! 1. **Dragon second-order terms.** The paper claims cache-to-cache
//!    supply and cycle stealing "could have been omitted ... without
//!    significantly affecting our results" — we print the power delta
//!    with the terms ablated.
//! 2. **Exponential vs fixed bus service.** The analytic model assumes
//!    exponential service and overestimates contention versus the
//!    fixed-service simulator; we print both `w` values.
//! 3. **Request rate vs message size on the network.** Circuit
//!    switching makes the rate dominate; we print utilization at equal
//!    `m·t` with opposite rate/size splits.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use swcc_core::bus::analyze_bus;
use swcc_core::demand::demand;
use swcc_core::network::solve;
use swcc_core::scheme::dragon::{mix_with_terms, DragonTerms};
use swcc_core::scheme::Scheme;
use swcc_core::system::BusSystemModel;
use swcc_core::workload::{Level, WorkloadParams};
use swcc_sim::measure::measure_workload;
use swcc_sim::{simulate, ProtocolKind, SimConfig};
use swcc_trace::synth::Preset;

fn dragon_terms(c: &mut Criterion) {
    let sys = BusSystemModel::new();
    for level in Level::ALL {
        let w = WorkloadParams::at_level(level);
        let full = demand(&mix_with_terms(&w, DragonTerms::default()), &sys).unwrap();
        let ablated = demand(
            &mix_with_terms(
                &w,
                DragonTerms {
                    cache_to_cache: false,
                    cycle_stealing: false,
                },
            ),
            &sys,
        )
        .unwrap();
        println!(
            "dragon_terms[{level}]: c {:.5} -> {:.5} ({:+.3}%), b {:.5} -> {:.5} ({:+.3}%)",
            full.cpu(),
            ablated.cpu(),
            (ablated.cpu() - full.cpu()) / full.cpu() * 100.0,
            full.interconnect(),
            ablated.interconnect(),
            (ablated.interconnect() - full.interconnect()) / full.interconnect() * 100.0,
        );
    }
    let w = WorkloadParams::default();
    c.bench_function("dragon_mix_full_terms", |b| {
        b.iter(|| black_box(mix_with_terms(&w, DragonTerms::default())))
    });
    c.bench_function("dragon_mix_ablated_terms", |b| {
        b.iter(|| {
            black_box(mix_with_terms(
                &w,
                DragonTerms {
                    cache_to_cache: false,
                    cycle_stealing: false,
                },
            ))
        })
    });
}

fn service_time_assumption(c: &mut Criterion) {
    // Same trace, same workload parameters: compare the model's
    // (exponential-service) contention against the simulator's
    // (fixed-service) contention.
    let trace = Preset::Pops.config(4, 15_000, 7).generate();
    let cfg = SimConfig::new(ProtocolKind::Dragon);
    let workload = measure_workload(&trace, &cfg);
    let report = simulate(&trace, &cfg);
    let model = analyze_bus(Scheme::Dragon, &workload, cfg.system(), 4).unwrap();
    println!(
        "service_time: model w = {:.4} (exponential) vs sim w = {:.4} (fixed) — \
         model contention / sim contention = {:.2}",
        model.waiting(),
        report.contention_per_instruction(),
        model.waiting() / report.contention_per_instruction().max(1e-9),
    );
    c.bench_function("contention_model_vs_sim", |b| {
        b.iter(|| {
            let m = analyze_bus(Scheme::Dragon, &workload, cfg.system(), black_box(4)).unwrap();
            black_box(m.waiting())
        })
    });
}

fn rate_vs_size(c: &mut Criterion) {
    // Equal offered unit-load m·t = 0.4 on an 8-stage network, split as
    // (high rate, small message) vs (low rate, large message).
    let stages = 8;
    let fast_small = solve(0.4 / 17.0, 17.0, stages).unwrap(); // 1-word messages
    let slow_large = solve(0.4 / 32.0, 32.0, stages).unwrap(); // 16-word messages
    println!(
        "rate_vs_size at m*t=0.4: 1-word msgs U={:.4}, 16-word msgs U={:.4} \
         (equal unit demand: utilization is set by m*t, so circuit setup \
         cost must be charged in t — message size folds into the product)",
        fast_small.think_fraction(),
        slow_large.think_fraction(),
    );
    c.bench_function("patel_rate_size_pair", |b| {
        b.iter(|| {
            let a = solve(black_box(0.4 / 17.0), 17.0, stages).unwrap();
            let z = solve(black_box(0.4 / 32.0), 32.0, stages).unwrap();
            black_box((a, z))
        })
    });
}

criterion_group!(benches, dragon_terms, service_time_assumption, rate_vs_size);
criterion_main!(benches);
