//! Comparing two `BENCH_sweep.json` reports: the perf regression gate.
//!
//! Raw nanosecond timings do not transfer between machines, so the gate
//! only enforces **machine-independent** quantities:
//!
//! * *Speedup ratios* (batched-sweep vs pointwise, warm vs cold
//!   iteration counts) — each must stay within a percentage tolerance
//!   of the baseline. A batched sweep that stops being faster than the
//!   pointwise loop is a regression on any machine.
//! * *Solver iteration counts* — deterministic for a given sweep, so
//!   they must match the baseline **exactly**; a drifted count means the
//!   solver's convergence behaviour changed.
//!
//! Per-point nanosecond columns are rendered informationally but never
//! gated.
//!
//! Both `swcc-bench/v1` and `swcc-bench/v2` reports are accepted. The
//! v2-only batch-engine fields (`batch_patel.*`, `batch_grid.*`) are
//! gated only when the baseline records them: comparing against a v1
//! baseline skips them, while a v2 baseline makes them mandatory in
//! the fresh report.

use std::fmt::Write as _;

use serde_json::Value;

use crate::{BENCH_SCHEMA, BENCH_SCHEMA_V1};

/// A gated speedup-ratio comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioRow {
    /// Dotted field path (`"mva_curve.speedup"`).
    pub name: &'static str,
    /// Baseline value.
    pub old: f64,
    /// Fresh value.
    pub new: f64,
    /// Smallest acceptable fresh value, `old * (1 - tolerance)`.
    pub floor: f64,
}

impl RatioRow {
    /// `true` when the fresh ratio stayed above the floor.
    pub fn passed(&self) -> bool {
        self.new >= self.floor
    }
}

/// A gated exact-match comparison (solver iteration counts).
#[derive(Debug, Clone, PartialEq)]
pub struct ExactRow {
    /// Dotted field path (`"patel_rate_sweep.cold_iterations"`).
    pub name: &'static str,
    /// Baseline value.
    pub old: u64,
    /// Fresh value.
    pub new: u64,
}

impl ExactRow {
    /// `true` when the counts match exactly.
    pub fn passed(&self) -> bool {
        self.old == self.new
    }
}

/// An ungated informational timing comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct InfoRow {
    /// Dotted field path.
    pub name: &'static str,
    /// Baseline nanoseconds.
    pub old: f64,
    /// Fresh nanoseconds.
    pub new: f64,
}

/// The outcome of one `--compare` run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareOutcome {
    /// The tolerance applied to ratio rows, as a fraction (0.2 = 20%).
    pub tolerance: f64,
    /// Gated speedup ratios.
    pub ratios: Vec<RatioRow>,
    /// Gated exact counts.
    pub exacts: Vec<ExactRow>,
    /// Informational timings.
    pub info: Vec<InfoRow>,
}

impl CompareOutcome {
    /// `true` when every gated row passed.
    pub fn passed(&self) -> bool {
        self.ratios.iter().all(RatioRow::passed) && self.exacts.iter().all(ExactRow::passed)
    }

    /// Renders the verdict table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench compare (tolerance {:.1}% on speedup ratios)",
            self.tolerance * 100.0
        );
        let _ = writeln!(
            out,
            "  {:<36} {:>10} {:>10} {:>10}  verdict",
            "speedup ratio", "baseline", "fresh", "floor"
        );
        for r in &self.ratios {
            let _ = writeln!(
                out,
                "  {:<36} {:>10.3} {:>10.3} {:>10.3}  {}",
                r.name,
                r.old,
                r.new,
                r.floor,
                if r.passed() { "ok" } else { "FAIL" }
            );
        }
        let _ = writeln!(
            out,
            "  {:<36} {:>10} {:>10} {:>10}  verdict",
            "iteration count (exact)", "baseline", "fresh", ""
        );
        for e in &self.exacts {
            let _ = writeln!(
                out,
                "  {:<36} {:>10} {:>10} {:>10}  {}",
                e.name,
                e.old,
                e.new,
                "",
                if e.passed() { "ok" } else { "FAIL" }
            );
        }
        let _ = writeln!(
            out,
            "  {:<36} {:>10} {:>10} {:>10}  (informational)",
            "ns per unit", "baseline", "fresh", "change"
        );
        for i in &self.info {
            let change = if i.old > 0.0 {
                (i.new - i.old) / i.old * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<36} {:>10.1} {:>10.1} {:>+9.1}%",
                i.name, i.old, i.new, change
            );
        }
        out.push_str(if self.passed() {
            "bench compare: passed\n"
        } else {
            "bench compare: FAILED\n"
        });
        out
    }
}

fn parse_report(label: &str, json: &str) -> Result<Value, String> {
    let value: Value =
        serde_json::from_str(json).map_err(|e| format!("{label}: invalid JSON: {e}"))?;
    match value.get_field("schema").and_then(Value::as_str) {
        // Pre-schema reports are accepted as the v1 shape they were.
        None => Ok(value),
        Some(s) if s == BENCH_SCHEMA || s == BENCH_SCHEMA_V1 => Ok(value),
        Some(other) => Err(format!(
            "{label}: unsupported bench schema {other:?} (expected {BENCH_SCHEMA:?} or {BENCH_SCHEMA_V1:?})"
        )),
    }
}

fn lookup<'a>(v: &'a Value, path: &'static str) -> Result<&'a Value, String> {
    let mut cur = v;
    for key in path.split('.') {
        cur = cur
            .get_field(key)
            .ok_or_else(|| format!("missing field {path:?}"))?;
    }
    Ok(cur)
}

fn lookup_f64(label: &str, v: &Value, path: &'static str) -> Result<f64, String> {
    lookup(v, path)?
        .as_f64()
        .ok_or_else(|| format!("{label}: field {path:?} is not a number"))
}

fn lookup_u64(label: &str, v: &Value, path: &'static str) -> Result<u64, String> {
    lookup(v, path)?
        .as_u64()
        .ok_or_else(|| format!("{label}: field {path:?} is not an unsigned integer"))
}

/// Speedup-ratio fields gated with the percentage tolerance.
const RATIO_FIELDS: [&str; 3] = [
    "mva_curve.speedup",
    "bus_curve_dragon.speedup",
    "patel_rate_sweep.iteration_speedup",
];

/// Deterministic iteration counts gated exactly.
const EXACT_FIELDS: [&str; 2] = [
    "patel_rate_sweep.cold_iterations",
    "patel_rate_sweep.warm_iterations",
];

/// Machine-dependent timings, reported but never gated.
const INFO_FIELDS: [&str; 5] = [
    "mva_curve.swept_ns_per_point",
    "bus_curve_dragon.swept_ns_per_point",
    "patel_rate_sweep.legacy_bisection_ns_per_solve",
    "patel_rate_sweep.cold_ns_per_solve",
    "patel_rate_sweep.warm_ns_per_solve",
];

/// v2-only ratio fields (batch engine). Gated like [`RATIO_FIELDS`],
/// but only when the **baseline** carries them — a v1 baseline simply
/// has no batch expectations yet. Once a baseline records them, a
/// fresh report missing them is an error (the batch engine vanished).
const V2_RATIO_FIELDS: [&str; 2] = ["batch_patel.speedup_vs_warm", "batch_grid.speedup"];

/// v2-only deterministic counts, gated exactly when the baseline has
/// them.
const V2_EXACT_FIELDS: [&str; 1] = ["batch_patel.batch_iterations"];

/// v2-only informational timings.
const V2_INFO_FIELDS: [&str; 4] = [
    "patel_rate_sweep.setup_ns_per_solve",
    "patel_rate_sweep.iteration_ns",
    "batch_patel.batch_ns_per_solve",
    "batch_grid.batch_ns_per_lane",
];

/// Compares two `BENCH_sweep.json` documents with a fractional
/// `tolerance` (0.2 = 20%) on the speedup ratios.
///
/// # Errors
///
/// Returns a message if either document is malformed, declares a
/// foreign schema, or lacks a compared field, or if the tolerance is
/// not a finite fraction in `[0, 1)`.
pub fn compare_reports(
    old_json: &str,
    new_json: &str,
    tolerance: f64,
) -> Result<CompareOutcome, String> {
    if !tolerance.is_finite() || !(0.0..1.0).contains(&tolerance) {
        return Err(format!(
            "tolerance must be a fraction in [0, 1), got {tolerance}"
        ));
    }
    let old = parse_report("baseline", old_json)?;
    let new = parse_report("fresh", new_json)?;

    // v2-only fields are gated iff the baseline records them; a v1 (or
    // pre-schema) baseline has no batch expectations to enforce.
    let in_baseline = |name: &'static str| lookup(&old, name).is_ok();

    let mut ratios = Vec::with_capacity(RATIO_FIELDS.len() + V2_RATIO_FIELDS.len());
    for name in RATIO_FIELDS
        .iter()
        .copied()
        .chain(V2_RATIO_FIELDS.iter().copied().filter(|&n| in_baseline(n)))
    {
        let o = lookup_f64("baseline", &old, name)?;
        let n = lookup_f64("fresh", &new, name)?;
        ratios.push(RatioRow {
            name,
            old: o,
            new: n,
            floor: o * (1.0 - tolerance),
        });
    }
    let mut exacts = Vec::with_capacity(EXACT_FIELDS.len() + V2_EXACT_FIELDS.len());
    for name in EXACT_FIELDS
        .iter()
        .copied()
        .chain(V2_EXACT_FIELDS.iter().copied().filter(|&n| in_baseline(n)))
    {
        exacts.push(ExactRow {
            name,
            old: lookup_u64("baseline", &old, name)?,
            new: lookup_u64("fresh", &new, name)?,
        });
    }
    let mut info = Vec::with_capacity(INFO_FIELDS.len() + V2_INFO_FIELDS.len());
    for name in INFO_FIELDS
        .iter()
        .copied()
        .chain(V2_INFO_FIELDS.iter().copied().filter(|&n| in_baseline(n)))
    {
        info.push(InfoRow {
            name,
            old: lookup_f64("baseline", &old, name)?,
            new: lookup_f64("fresh", &new, name)?,
        });
    }
    Ok(CompareOutcome {
        tolerance,
        ratios,
        exacts,
        info,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(mva_speedup: f64, cold_iterations: u64) -> String {
        format!(
            r#"{{
              "schema": "swcc-bench/v1",
              "samples": 25,
              "generated_by": "test",
              "mva_curve": {{"points": 64, "pointwise_ns_per_point": 170.0,
                             "swept_ns_per_point": 9.2, "speedup": {mva_speedup}}},
              "bus_curve_dragon": {{"points": 64, "pointwise_ns_per_point": 340.0,
                                    "swept_ns_per_point": 12.4, "speedup": 27.7}},
              "patel_rate_sweep": {{"solves": 50, "stages": 8,
                                    "legacy_bisection_ns_per_solve": 7990.0,
                                    "cold_ns_per_solve": 175.0, "warm_ns_per_solve": 179.0,
                                    "cold_iterations": {cold_iterations},
                                    "warm_iterations": 199,
                                    "iteration_speedup": 1.19, "wall_speedup": 0.98}}
            }}"#
        )
    }

    /// A v2 report: the v1 sections plus the batch-engine additions.
    fn report_v2(batch_speedup: f64, batch_iterations: u64) -> String {
        let v1 = report(18.5, 238);
        let body = v1.trim_end().trim_end_matches('}');
        format!(
            r#"{body},
              "batch_patel": {{"lanes": 1000, "stages": 8,
                               "warm_scalar_ns_per_solve": 225.0,
                               "batch_ns_per_solve": 40.0,
                               "batch_iterations": {batch_iterations},
                               "speedup_vs_warm": {batch_speedup}}},
              "batch_grid": {{"lanes": 1000, "customers": 64,
                              "pointwise_ns_per_lane": 350.0,
                              "batch_ns_per_lane": 60.0, "speedup": 5.8}}
            }}"#
        )
        .replace("swcc-bench/v1", "swcc-bench/v2")
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(18.5, 238);
        let outcome = compare_reports(&r, &r, 0.2).unwrap();
        assert!(outcome.passed(), "{}", outcome.render());
        assert!(outcome.render().contains("bench compare: passed"));
    }

    #[test]
    fn identical_v2_reports_gate_the_batch_fields() {
        let r = report_v2(5.6, 4242);
        let outcome = compare_reports(&r, &r, 0.2).unwrap();
        assert!(outcome.passed(), "{}", outcome.render());
        assert!(outcome
            .ratios
            .iter()
            .any(|r| r.name == "batch_patel.speedup_vs_warm"));
        assert!(outcome
            .ratios
            .iter()
            .any(|r| r.name == "batch_grid.speedup"));
        assert!(outcome
            .exacts
            .iter()
            .any(|e| e.name == "batch_patel.batch_iterations"));
    }

    #[test]
    fn v1_baseline_skips_batch_fields_against_v2_fresh() {
        let outcome = compare_reports(&report(18.5, 238), &report_v2(5.6, 4242), 0.2).unwrap();
        assert!(outcome.passed(), "{}", outcome.render());
        assert!(!outcome.ratios.iter().any(|r| r.name.starts_with("batch_")));
        assert!(!outcome.exacts.iter().any(|e| e.name.starts_with("batch_")));
    }

    #[test]
    fn v2_baseline_requires_batch_fields_in_fresh() {
        let err = compare_reports(&report_v2(5.6, 4242), &report(18.5, 238), 0.2).unwrap_err();
        assert!(err.contains("batch_patel"), "{err}");
    }

    #[test]
    fn drifted_batch_speedup_fails_the_gate() {
        let outcome = compare_reports(&report_v2(5.6, 4242), &report_v2(2.0, 4242), 0.2).unwrap();
        assert!(!outcome.passed());
        assert!(outcome.render().contains("FAIL"));
    }

    #[test]
    fn drifted_batch_iteration_count_fails_the_gate() {
        let outcome = compare_reports(&report_v2(5.6, 4242), &report_v2(5.6, 4300), 0.2).unwrap();
        assert!(!outcome.passed());
    }

    #[test]
    fn small_ratio_wobble_inside_tolerance_passes() {
        let outcome = compare_reports(&report(18.5, 238), &report(16.0, 238), 0.2).unwrap();
        assert!(outcome.passed(), "{}", outcome.render());
    }

    #[test]
    fn drifted_speedup_fails_the_gate() {
        // A fresh sweep that lost most of its batching advantage: the
        // synthetic slowdown the gate exists to catch.
        let outcome = compare_reports(&report(18.5, 238), &report(9.0, 238), 0.2).unwrap();
        assert!(!outcome.passed());
        assert!(outcome.render().contains("FAIL"));
    }

    #[test]
    fn drifted_iteration_count_fails_the_gate() {
        let outcome = compare_reports(&report(18.5, 238), &report(18.5, 260), 0.2).unwrap();
        assert!(!outcome.passed());
        assert!(outcome.render().contains("FAIL"));
    }

    #[test]
    fn schemaless_baselines_are_accepted() {
        let legacy = report(18.5, 238).replace(r#""schema": "swcc-bench/v1","#, "");
        let outcome = compare_reports(&legacy, &report(18.5, 238), 0.2).unwrap();
        assert!(outcome.passed());
    }

    #[test]
    fn foreign_schema_is_rejected() {
        let foreign = report(18.5, 238).replace("swcc-bench/v1", "swcc-bench/v9");
        let err = compare_reports(&foreign, &report(18.5, 238), 0.2).unwrap_err();
        assert!(err.contains("unsupported bench schema"), "{err}");
    }

    #[test]
    fn missing_fields_and_bad_tolerance_are_rejected() {
        assert!(compare_reports("{}", &report(18.5, 238), 0.2).is_err());
        let r = report(18.5, 238);
        assert!(compare_reports(&r, &r, 1.0).is_err());
        assert!(compare_reports(&r, &r, -0.1).is_err());
        assert!(compare_reports(&r, &r, f64::NAN).is_err());
    }
}
