//! `swcc-bench` — machine-readable sweep-engine benchmark.
//!
//! Times the batched MVA/bus sweep against the pointwise API,
//! warm-started Patel solves against cold ones, and the lockstep batch
//! engine against the warm scalar path on 1k-point grids, then writes
//! the results as JSON (default `BENCH_sweep.json`, or the path given
//! as the first argument; `-` writes to stdout only).
//!
//! ```text
//! cargo run --release -p swcc-bench --bin swcc-bench
//! swcc-bench --compare old.json new.json [--tolerance <pct>]
//! ```
//!
//! Unlike the Criterion benches this is a single fast pass (median of
//! a few dozen batched samples), intended for regression tracking and
//! for the README's performance table. `--compare` diffs two reports
//! and exits nonzero when a machine-independent quantity (speedup
//! ratio, solver iteration count) regressed — the perf half of CI's
//! regression gate (the tolerance applies to the ratios; counts must
//! match exactly).

use std::process::ExitCode;
use std::time::Instant;

use serde::Serialize;
use swcc_bench::compare::compare_reports;
use swcc_bench::BENCH_SCHEMA;
use swcc_core::batch::{machine_repairman_grid, BatchPatelSolver};
use swcc_core::bus::{analyze_bus, analyze_bus_sweep};
use swcc_core::network::WarmSolver;
use swcc_core::queue::{machine_repairman, machine_repairman_sweep};
use swcc_core::scheme::Scheme;
use swcc_core::system::BusSystemModel;
use swcc_core::workload::WorkloadParams;

/// Populations in the benchmark curve (matches the paper's bus plots).
const CURVE_POINTS: u32 = 64;
/// Solves in the Patel rate sweep.
const PATEL_SOLVES: u32 = 50;
/// Lanes in the batch-engine grids (the ISSUE's 1k-point target).
const BATCH_LANES: usize = 1000;
/// Timed samples per measurement; the median is reported.
const SAMPLES: usize = 25;
/// Iterations batched inside each timed sample.
const ITERS: usize = 40;

/// Median wall-clock nanoseconds of one `f()` call, measured over
/// [`SAMPLES`] batches of [`ITERS`] calls each.
fn median_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..ITERS {
        f(); // warm-up
    }
    let samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..ITERS {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / ITERS as f64
        })
        .collect();
    swcc_obs::quantile::median(&samples).expect("SAMPLES > 0 and Instant yields finite ns")
}

/// One pointwise-versus-swept comparison over a 1..=n curve.
#[derive(Debug, Serialize)]
struct CurveBench {
    points: u32,
    pointwise_ns_per_point: f64,
    swept_ns_per_point: f64,
    speedup: f64,
}

impl CurveBench {
    fn new(points: u32, pointwise_ns: f64, swept_ns: f64) -> Self {
        let per = f64::from(points);
        CurveBench {
            points,
            pointwise_ns_per_point: pointwise_ns / per,
            swept_ns_per_point: swept_ns / per,
            speedup: pointwise_ns / swept_ns,
        }
    }
}

/// Cold-versus-warm Patel comparison over a demand sweep. Iteration
/// counts are residual evaluations, deterministic for a given sweep.
#[derive(Debug, Serialize)]
struct PatelBench {
    solves: u32,
    stages: u32,
    /// The pre-sweep-engine solver: 200 bisection steps per solve.
    legacy_bisection_ns_per_solve: f64,
    cold_ns_per_solve: f64,
    warm_ns_per_solve: f64,
    cold_iterations: u32,
    warm_iterations: u32,
    /// Residual evaluations saved by warm starting: `cold / warm`.
    /// Deterministic for a given sweep, unlike the wall-clock ratio,
    /// which at ~200 ns/solve sits inside timer noise.
    iteration_speedup: f64,
    wall_speedup: f64,
    /// Per-solve overhead outside the Newton loop (validation, warm
    /// hint bookkeeping, result assembly), from the two-point
    /// decomposition of warm sweeps at fine and coarse tolerance.
    /// Setup dominating per-solve cost is why a 1.20x iteration saving
    /// shows up as only ~1.03x wall time.
    setup_ns_per_solve: f64,
    /// Marginal cost of one residual evaluation, from the same
    /// decomposition: `(fine - coarse wall) / (fine - coarse
    /// iterations)`.
    iteration_ns: f64,
}

impl PatelBench {
    /// Splits per-solve wall time into setup and iteration components
    /// by treating two sweeps with different (deterministic) iteration
    /// counts as two samples of
    /// `wall = setup * solves + iteration_ns * iterations`.
    fn split_overhead(
        fine_ns: f64,
        coarse_ns: f64,
        fine_iterations: u32,
        coarse_iterations: u32,
        solves: u32,
    ) -> (f64, f64) {
        let extra_iterations = f64::from(fine_iterations) - f64::from(coarse_iterations);
        if extra_iterations <= 0.0 {
            // Degenerate sweep (both tolerances converged alike): the
            // split is unidentifiable; attribute everything to setup.
            return (fine_ns / f64::from(solves), 0.0);
        }
        let iteration_ns = ((fine_ns - coarse_ns) / extra_iterations).max(0.0);
        let setup_ns = (fine_ns - iteration_ns * f64::from(fine_iterations)) / f64::from(solves);
        (setup_ns.max(0.0), iteration_ns)
    }
}

/// Batched Patel fixed-point solving versus the warm scalar sweep on
/// the same grid — the batch engine's headline comparison.
#[derive(Debug, Serialize)]
struct BatchPatelBench {
    lanes: usize,
    stages: u32,
    /// Warm scalar path: one `WarmSolver` chained across the grid.
    warm_scalar_ns_per_solve: f64,
    batch_ns_per_solve: f64,
    /// Total residual evaluations across the batch; deterministic for
    /// a given grid, so `--compare` gates it exactly.
    batch_iterations: u64,
    /// Warm scalar wall / batch wall on the same grid — the gated
    /// batch-engine speedup.
    speedup_vs_warm: f64,
}

/// Batched MVA grid versus a pointwise `machine_repairman` loop over
/// the same lanes (distinct service/think per lane, fixed population).
#[derive(Debug, Serialize)]
struct BatchGridBench {
    lanes: usize,
    customers: u32,
    pointwise_ns_per_lane: f64,
    batch_ns_per_lane: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    /// Always [`BENCH_SCHEMA`]; `--compare` rejects foreign revisions.
    schema: String,
    /// Timed samples per measurement (the median is reported).
    samples: usize,
    generated_by: String,
    mva_curve: CurveBench,
    bus_curve_dragon: CurveBench,
    patel_rate_sweep: PatelBench,
    batch_patel: BatchPatelBench,
    batch_grid: BatchGridBench,
}

fn run() -> Report {
    let w = WorkloadParams::default();
    let sys = BusSystemModel::new();

    let mva_pointwise = median_ns(|| {
        for n in 1..=CURVE_POINTS {
            std::hint::black_box(machine_repairman(n, 0.37, 1.2).unwrap());
        }
    });
    let mva_swept = median_ns(|| {
        std::hint::black_box(machine_repairman_sweep(CURVE_POINTS, 0.37, 1.2).unwrap());
    });

    let bus_pointwise = median_ns(|| {
        for n in 1..=CURVE_POINTS {
            std::hint::black_box(analyze_bus(Scheme::Dragon, &w, &sys, n).unwrap());
        }
    });
    let bus_swept = median_ns(|| {
        std::hint::black_box(analyze_bus_sweep(Scheme::Dragon, &w, &sys, CURVE_POINTS).unwrap());
    });

    let stages = 8u32;
    let sweep_rates = |solver: &mut WarmSolver, reset: bool| -> u32 {
        let mut iterations = 0;
        for i in 1..=PATEL_SOLVES {
            if reset {
                solver.reset();
            }
            std::hint::black_box(solver.solve(f64::from(i) * 0.002, 20.0, stages).unwrap());
            iterations += solver.last_iterations();
        }
        iterations
    };
    let legacy_ns = median_ns(|| {
        for i in 1..=PATEL_SOLVES {
            std::hint::black_box(
                swcc_core::network::solve(f64::from(i) * 0.002, 20.0, stages).unwrap(),
            );
        }
    });
    let cold_ns = median_ns(|| {
        let mut solver = WarmSolver::new();
        sweep_rates(&mut solver, true);
    });
    let warm_ns = median_ns(|| {
        let mut solver = WarmSolver::new();
        sweep_rates(&mut solver, false);
    });
    let mut solver = WarmSolver::new();
    let cold_iterations = sweep_rates(&mut solver, true);
    solver.reset();
    let warm_iterations = sweep_rates(&mut solver, false);

    // Setup/iteration split: re-run the warm sweep at a coarse
    // tolerance. The iteration-count delta is large and deterministic,
    // so the two-point fit stays out of timer noise (unlike cold vs
    // warm, whose ~40-iteration gap is invisible at ~200 ns/solve).
    const COARSE_TOLERANCE: f64 = 1e-2;
    let coarse_ns = median_ns(|| {
        let mut solver = WarmSolver::with_tolerance(COARSE_TOLERANCE);
        sweep_rates(&mut solver, false);
    });
    let mut coarse_solver = WarmSolver::with_tolerance(COARSE_TOLERANCE);
    let coarse_iterations = sweep_rates(&mut coarse_solver, false);
    let (setup_ns_per_solve, iteration_ns) = PatelBench::split_overhead(
        warm_ns,
        coarse_ns,
        warm_iterations,
        coarse_iterations,
        PATEL_SOLVES,
    );

    // Batch engine vs the warm scalar path over the same 1k-point grid.
    let batch_rates: Vec<f64> = (1..=BATCH_LANES).map(|i| i as f64 * 1.0e-4).collect();
    let batch_sizes = vec![20.0; BATCH_LANES];
    let batch_solver = BatchPatelSolver::new();
    let warm_grid_ns = median_ns(|| {
        let mut solver = WarmSolver::new();
        for &rate in &batch_rates {
            std::hint::black_box(solver.solve(rate, 20.0, stages).unwrap());
        }
    });
    let batch_ns = median_ns(|| {
        std::hint::black_box(
            batch_solver
                .solve(&batch_rates, &batch_sizes, stages)
                .unwrap(),
        );
    });
    let batch_iterations = batch_solver
        .solve(&batch_rates, &batch_sizes, stages)
        .unwrap()
        .total_iterations();

    // Batched MVA grid vs a pointwise loop: 1k lanes with distinct
    // service times at a fixed paper-scale population.
    let grid_customers = CURVE_POINTS;
    let grid_services: Vec<f64> = (0..BATCH_LANES).map(|i| 0.1 + i as f64 * 5.0e-4).collect();
    let grid_thinks = vec![1.2; BATCH_LANES];
    let grid_pointwise_ns = median_ns(|| {
        for (&s, &z) in grid_services.iter().zip(&grid_thinks) {
            std::hint::black_box(machine_repairman(grid_customers, s, z).unwrap());
        }
    });
    let grid_batch_ns = median_ns(|| {
        std::hint::black_box(
            machine_repairman_grid(grid_customers, &grid_services, &grid_thinks).unwrap(),
        );
    });

    Report {
        schema: BENCH_SCHEMA.to_string(),
        samples: SAMPLES,
        generated_by: format!(
            "swcc-bench {} (median of {SAMPLES} samples x {ITERS} iterations)",
            env!("CARGO_PKG_VERSION")
        ),
        mva_curve: CurveBench::new(CURVE_POINTS, mva_pointwise, mva_swept),
        bus_curve_dragon: CurveBench::new(CURVE_POINTS, bus_pointwise, bus_swept),
        patel_rate_sweep: PatelBench {
            solves: PATEL_SOLVES,
            stages,
            legacy_bisection_ns_per_solve: legacy_ns / f64::from(PATEL_SOLVES),
            cold_ns_per_solve: cold_ns / f64::from(PATEL_SOLVES),
            warm_ns_per_solve: warm_ns / f64::from(PATEL_SOLVES),
            cold_iterations,
            warm_iterations,
            iteration_speedup: f64::from(cold_iterations) / f64::from(warm_iterations),
            wall_speedup: cold_ns / warm_ns,
            setup_ns_per_solve,
            iteration_ns,
        },
        batch_patel: BatchPatelBench {
            lanes: BATCH_LANES,
            stages,
            warm_scalar_ns_per_solve: warm_grid_ns / BATCH_LANES as f64,
            batch_ns_per_solve: batch_ns / BATCH_LANES as f64,
            batch_iterations,
            speedup_vs_warm: warm_grid_ns / batch_ns,
        },
        batch_grid: BatchGridBench {
            lanes: BATCH_LANES,
            customers: grid_customers,
            pointwise_ns_per_lane: grid_pointwise_ns / BATCH_LANES as f64,
            batch_ns_per_lane: grid_batch_ns / BATCH_LANES as f64,
            speedup: grid_pointwise_ns / grid_batch_ns,
        },
    }
}

/// Default `--compare` tolerance on speedup ratios, in percent.
const DEFAULT_TOLERANCE_PCT: f64 = 20.0;

fn compare_cmd(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tolerance_pct = DEFAULT_TOLERANCE_PCT;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            let Some(value) = args.get(i + 1) else {
                eprintln!("--tolerance needs a value (percent)");
                return ExitCode::FAILURE;
            };
            match value.parse::<f64>() {
                Ok(p) => tolerance_pct = p,
                Err(_) => {
                    eprintln!("--tolerance: not a number: {value}");
                    return ExitCode::FAILURE;
                }
            }
            i += 2;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("usage: swcc-bench --compare old.json new.json [--tolerance <pct>]");
        return ExitCode::FAILURE;
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let outcome = read(old_path)
        .and_then(|old| read(new_path).map(|new| (old, new)))
        .and_then(|(old, new)| compare_reports(&old, &new, tolerance_pct / 100.0));
    match outcome {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if outcome.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--compare") {
        return compare_cmd(&args[1..]);
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let report = run();
    let json = match serde_json::to_string_pretty(&report) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot serialize benchmark report: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{json}");
    if path != "-" {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
