//! # swcc-bench — benchmark harness
//!
//! Criterion benchmarks for the software-cache-coherence reproduction.
//! Each of the paper's tables and figures has a benchmark that runs the
//! corresponding experiment from `swcc-experiments` (`bench_tables`,
//! `bench_figures`, `bench_validation`); `bench_components` times the
//! individual solvers and the simulator; `bench_ablations` times the
//! design-choice variants called out in DESIGN.md (Dragon second-order
//! terms, hardware cost-table derivation, network message-size trade).
//!
//! Run with `cargo bench --workspace`. The simulation-backed benchmarks
//! use the `quick` experiment profile and reduced sample counts so a
//! full `cargo bench` completes in minutes.
//!
//! The [`compare`] module backs `swcc-bench --compare old.json
//! new.json`, the perf half of CI's regression gate.

pub mod compare;

/// Schema identifier written into every `BENCH_sweep.json` report.
/// v2 adds the batch-engine sections (`batch_patel`, `batch_grid`) and
/// the warm-solver setup/iteration time split.
pub const BENCH_SCHEMA: &str = "swcc-bench/v2";

/// The previous schema revision; `--compare` still accepts v1 (and
/// pre-schema) baselines, skipping the v2-only fields.
pub const BENCH_SCHEMA_V1: &str = "swcc-bench/v1";

/// Returns the quick run options shared by all benches, so every bench
/// times the same workload an experiment smoke test runs.
pub fn bench_options() -> swcc_experiments::RunOptions {
    swcc_experiments::RunOptions::quick()
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_options_are_quick() {
        let o = super::bench_options();
        assert!(o.validation.instructions_per_cpu <= 20_000);
    }
}
