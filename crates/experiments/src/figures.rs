//! Reproduction of the paper's model-driven figures (4–11).
//!
//! Figures 1–3 (model-vs-simulation validation) live in
//! [`crate::validation`]; everything here is pure analytical model and
//! runs in microseconds.

use swcc_core::batch::{machine_repairman_grid, BatchPatelSolver};
use swcc_core::bus::{bus_power_curve_set, bus_power_curves};
use swcc_core::network::{analyze_network, network_power_curves};
use swcc_core::prelude::*;

use crate::artifact::{Figure, Series};

/// Maximum processor count on the bus figures (matches the paper's
/// plots, which run to 16).
pub const BUS_MAX_PROCESSORS: u32 = 16;

fn power_points(curve: &[BusPerformance]) -> Vec<(f64, f64)> {
    curve
        .iter()
        .map(|p| (f64::from(p.processors()), p.power()))
        .collect()
}

fn bus_figure(title: &str, workload: &WorkloadParams) -> Figure {
    let system = BusSystemModel::new();
    let mut fig = Figure::new(title, "processors", "processing power");
    let ideal: Vec<(f64, f64)> = (1..=BUS_MAX_PROCESSORS)
        .map(|n| (f64::from(n), f64::from(n)))
        .collect();
    fig.push_series(Series::new("ideal", ideal));
    // All four scheme curves come from one lockstep batch grid pass.
    let curves = bus_power_curves(&Scheme::ALL, workload, &system, BUS_MAX_PROCESSORS)
        .expect("all schemes are defined on a bus");
    for (scheme, curve) in Scheme::ALL.into_iter().zip(&curves) {
        fig.push_series(Series::new(scheme.to_string(), power_points(curve)));
    }
    fig
}

/// Figure 4: processing power of the four schemes with **low** `shd`
/// and `ls`, all other parameters at middle values.
pub fn fig4() -> Figure {
    let w = low_sharing_workload();
    let mut f = bus_figure(
        "Figure 4: cache-coherence schemes with low shd and ls (bus)",
        &w,
    );
    f.notes
        .push("shd and ls at Table 7 low; all other parameters middle".into());
    f
}

/// Figure 5: the same with **middle** `shd` and `ls`.
pub fn fig5() -> Figure {
    let w = WorkloadParams::default();
    let mut f = bus_figure(
        "Figure 5: cache-coherence schemes with medium shd and ls (bus)",
        &w,
    );
    f.notes.push("all parameters at Table 7 middle".into());
    f
}

/// Figure 6: the same with **high** `shd` and `ls`.
pub fn fig6() -> Figure {
    let w = high_sharing_workload();
    let mut f = bus_figure(
        "Figure 6: cache-coherence schemes with high shd and ls (bus)",
        &w,
    );
    f.notes
        .push("shd and ls at Table 7 high; all other parameters middle".into());
    f
}

/// The workload with `shd`/`ls` low and everything else middle.
pub fn low_sharing_workload() -> WorkloadParams {
    WorkloadParams::default()
        .with_param(ParamId::Shd, 0.08)
        .and_then(|w| w.with_param(ParamId::Ls, 0.2))
        .expect("Table 7 values are in-domain")
}

/// The workload with `shd`/`ls` high and everything else middle.
pub fn high_sharing_workload() -> WorkloadParams {
    WorkloadParams::default()
        .with_param(ParamId::Shd, 0.42)
        .and_then(|w| w.with_param(ParamId::Ls, 0.4))
        .expect("Table 7 values are in-domain")
}

/// Figure 7: effect of varying `apl` on Software-Flush, with Dragon and
/// No-Cache as reference curves; other parameters at middle values.
pub fn fig7() -> Figure {
    let system = BusSystemModel::new();
    let w = WorkloadParams::default();
    let mut fig = Figure::new(
        "Figure 7: effect of varying apl (bus, middle parameters)",
        "processors",
        "processing power",
    );
    // Six apl variants plus two reference schemes: eight curve lanes,
    // one lockstep batch grid pass.
    const APLS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 25.0, 100.0];
    let mut cases: Vec<(Scheme, WorkloadParams)> = APLS
        .iter()
        .map(|&apl| {
            (
                Scheme::SoftwareFlush,
                w.with_param(ParamId::Apl, apl).expect("apl >= 1"),
            )
        })
        .collect();
    cases.push((Scheme::Dragon, w));
    cases.push((Scheme::NoCache, w));
    let curves = bus_power_curve_set(&cases, &system, BUS_MAX_PROCESSORS)
        .expect("all cases are defined on a bus");
    for (apl, curve) in APLS.iter().zip(&curves) {
        fig.push_series(Series::new(
            format!("Software-Flush apl={apl}"),
            power_points(curve),
        ));
    }
    for (scheme, curve) in [Scheme::Dragon, Scheme::NoCache]
        .into_iter()
        .zip(&curves[6..])
    {
        fig.push_series(Series::new(scheme.to_string(), power_points(curve)));
    }
    fig
}

fn apl_sweep_figure(title: &str, shd: f64) -> Figure {
    let system = BusSystemModel::new();
    let base = WorkloadParams::default()
        .with_param(ParamId::Shd, shd)
        .expect("shd is a probability");
    // The 50 apl operating points share one demand computation and one
    // batch MVA grid per processor count; each lane is bit-identical to
    // the pointwise analyze_bus call it replaces.
    let demands: Vec<Demand> = (1..=50u32)
        .map(|apl_i| {
            let w = base
                .with_param(ParamId::Apl, f64::from(apl_i))
                .expect("apl >= 1");
            scheme_demand(Scheme::SoftwareFlush, &w, &system).expect("software-flush runs on a bus")
        })
        .collect();
    let services: Vec<f64> = demands.iter().map(Demand::interconnect).collect();
    let thinks: Vec<f64> = demands.iter().map(Demand::think_time).collect();
    let mut fig = Figure::new(title, "apl", "processing power");
    for n in [4u32, 8, 16] {
        let grid = machine_repairman_grid(n, &services, &thinks).expect("valid queueing inputs");
        let points = demands
            .iter()
            .zip(&grid)
            .enumerate()
            .map(|(i, (demand, mva))| {
                let power = f64::from(n) / (demand.cpu() + mva.waiting());
                (f64::from(i as u32 + 1), power)
            })
            .collect();
        fig.push_series(Series::new(format!("{n} processors"), points));
    }
    fig
}

/// Figure 8: Software-Flush power versus `apl` with **low** sharing.
pub fn fig8() -> Figure {
    let mut f = apl_sweep_figure("Figure 8: effect of apl with low sharing (bus)", 0.08);
    f.notes
        .push("performance saturates quickly in apl when sharing is low".into());
    f
}

/// Figure 9: Software-Flush power versus `apl` with **medium** sharing.
pub fn fig9() -> Figure {
    let mut f = apl_sweep_figure("Figure 9: effect of apl with medium sharing (bus)", 0.25);
    f.notes
        .push("with medium sharing, power is sensitive to apl even at high apl".into());
    f
}

/// Figure 10: buses versus networks in the small scale (middle
/// parameters): bus curves for all four schemes, network curves for the
/// three schemes that work without a snoopy bus.
pub fn fig10() -> Figure {
    let system = BusSystemModel::new();
    let w = WorkloadParams::default();
    let mut fig = Figure::new(
        "Figure 10: buses versus networks in the small scale (middle parameters)",
        "processors",
        "processing power",
    );
    let bus_curves =
        bus_power_curves(&Scheme::ALL, &w, &system, 64).expect("all schemes are defined on a bus");
    for (scheme, curve) in Scheme::ALL.into_iter().zip(&bus_curves) {
        fig.push_series(Series::new(format!("{scheme} (bus)"), power_points(curve)));
    }
    let net_schemes = [Scheme::Base, Scheme::SoftwareFlush, Scheme::NoCache];
    let net_curves =
        network_power_curves(&net_schemes, &w, 6).expect("software schemes run on networks");
    for (scheme, curve) in net_schemes.into_iter().zip(&net_curves) {
        fig.push_series(Series::new(
            format!("{scheme} (network)"),
            curve
                .iter()
                .map(|p| (f64::from(p.processors()), p.power()))
                .collect(),
        ));
    }
    fig.notes
        .push("network points at power-of-two processor counts (1..64)".into());
    fig
}

/// The message sizes (in words) of Figure 11's curves.
pub const FIG11_MESSAGE_WORDS: [u32; 5] = [1, 2, 4, 8, 16];

/// Figure 11: processor utilization versus request rate on a
/// 256-processor (8-stage) network, one curve per message size, with
/// the nine scheme/range operating points (B/S/N × l/m/h) marked.
pub fn fig11() -> Figure {
    let stages = 8;
    let round_trip = f64::from(2 * stages);
    let mut fig = Figure::new(
        "Figure 11: network utilization vs request rate (256 processors)",
        "request rate (transactions/cycle)",
        "processor utilization",
    );
    // All five curves (5 message sizes × 60 rates) solve as one
    // 300-lane lockstep batch.
    let mut rates = Vec::with_capacity(FIG11_MESSAGE_WORDS.len() * 60);
    let mut sizes = Vec::with_capacity(FIG11_MESSAGE_WORDS.len() * 60);
    for words in FIG11_MESSAGE_WORDS {
        let t = f64::from(words) + round_trip;
        for i in 1..=60u32 {
            rates.push(f64::from(i) / 60.0);
            sizes.push(t);
        }
    }
    let batch = BatchPatelSolver::new()
        .solve(&rates, &sizes, stages)
        .expect("valid rates and sizes");
    for (w, words) in FIG11_MESSAGE_WORDS.iter().enumerate() {
        let points = (0..60)
            .map(|i| {
                let lane = w * 60 + i;
                (rates[lane], batch.points()[lane].think_fraction())
            })
            .collect();
        fig.push_series(Series::new(format!("{words}-word messages"), points));
    }
    // The nine marked points.
    for scheme in [Scheme::Base, Scheme::SoftwareFlush, Scheme::NoCache] {
        for level in Level::ALL {
            let w = WorkloadParams::at_level(level);
            let perf =
                analyze_network(scheme, &w, stages).expect("software schemes run on networks");
            let op = perf.operating_point();
            let code = scheme.code().expect("network schemes have codes");
            fig.push_series(Series::new(
                format!("{code}{}", level.code()),
                vec![(op.rate(), op.think_fraction())],
            ));
        }
    }
    fig.notes.push(
        "curve y-values are the Patel think fraction U; scheme points use (m, t) = (1/(c-b), b) \
         from the Table 9 demand"
            .into(),
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_figures_have_five_series() {
        for f in [fig4(), fig5(), fig6()] {
            assert_eq!(f.series.len(), 5); // ideal + 4 schemes
            for s in &f.series {
                assert_eq!(s.points.len(), BUS_MAX_PROCESSORS as usize);
            }
        }
    }

    #[test]
    fn fig4_low_sharing_keeps_schemes_close() {
        // §5.2: at low ls/shd there is "not much difference" between
        // Base, Dragon, and Software-Flush.
        let f = fig4();
        let base = f.series_named("Base").unwrap().final_y().unwrap();
        let sf = f.series_named("Software-Flush").unwrap().final_y().unwrap();
        assert!(sf > 0.75 * base, "sf {sf:.2} vs base {base:.2}");
    }

    #[test]
    fn fig6_no_cache_saturates_below_two() {
        let f = fig6();
        let nc = f.series_named("No-Cache").unwrap().final_y().unwrap();
        assert!(nc < 2.0, "no-cache power {nc}");
        let dragon = f.series_named("Dragon").unwrap().final_y().unwrap();
        assert!(dragon > 8.0, "dragon still performs well: {dragon}");
    }

    #[test]
    fn fig7_apl_one_is_worse_than_no_cache() {
        let f = fig7();
        let apl1 = f
            .series_named("Software-Flush apl=1")
            .unwrap()
            .final_y()
            .unwrap();
        let nc = f.series_named("No-Cache").unwrap().final_y().unwrap();
        assert!(
            apl1 < nc,
            "apl=1 ({apl1:.2}) must underperform No-Cache ({nc:.2})"
        );
    }

    #[test]
    fn fig7_high_apl_approaches_dragon() {
        let f = fig7();
        let apl100 = f
            .series_named("Software-Flush apl=100")
            .unwrap()
            .final_y()
            .unwrap();
        let dragon = f.series_named("Dragon").unwrap().final_y().unwrap();
        assert!(
            apl100 > 0.9 * dragon,
            "apl=100 {apl100:.2} vs dragon {dragon:.2}"
        );
    }

    #[test]
    fn fig8_low_sharing_saturates_quickly_in_apl() {
        let f = fig8();
        let s = f.series_named("16 processors").unwrap();
        let at = |apl: f64| s.points.iter().find(|p| p.0 == apl).unwrap().1;
        // By apl = 10 we are within 10% of the apl = 50 plateau.
        assert!(at(10.0) > 0.9 * at(50.0));
    }

    #[test]
    fn fig9_medium_sharing_stays_sensitive() {
        let f = fig9();
        let s = f.series_named("16 processors").unwrap();
        let at = |apl: f64| s.points.iter().find(|p| p.0 == apl).unwrap().1;
        // Still gaining noticeably between apl = 10 and 50.
        assert!(at(50.0) > 1.1 * at(10.0));
    }

    #[test]
    fn fig10_network_overtakes_bus_for_software_schemes() {
        let f = fig10();
        let bus = f
            .series_named("Software-Flush (bus)")
            .unwrap()
            .final_y()
            .unwrap();
        let net = f
            .series_named("Software-Flush (network)")
            .unwrap()
            .final_y()
            .unwrap();
        assert!(
            net > bus,
            "network {net:.2} must beat saturated bus {bus:.2} at 64 cpus"
        );
    }

    #[test]
    fn fig11_has_curves_and_nine_points() {
        let f = fig11();
        assert_eq!(f.series.len(), 5 + 9);
        for code in ["Bl", "Bm", "Bh", "Sl", "Sm", "Sh", "Nl", "Nm", "Nh"] {
            let s = f
                .series_named(code)
                .unwrap_or_else(|| panic!("missing {code}"));
            assert_eq!(s.points.len(), 1);
        }
    }

    #[test]
    fn fig11_base_low_beats_no_cache_high() {
        let f = fig11();
        let bl = f.series_named("Bl").unwrap().points[0].1;
        let nh = f.series_named("Nh").unwrap().points[0].1;
        assert!(bl > 2.0 * nh, "Bl {bl:.2} vs Nh {nh:.2}");
    }

    #[test]
    fn fig11_larger_messages_lower_utilization() {
        let f = fig11();
        let u_at = |name: &str| {
            let s = f.series_named(name).unwrap();
            s.points
                .iter()
                .find(|p| (p.0 - 0.05).abs() < 1e-9)
                .map(|p| p.1)
        };
        // At the same rate, bigger messages mean lower utilization.
        let u1 = u_at("1-word messages");
        let u16 = u_at("16-word messages");
        if let (Some(u1), Some(u16)) = (u1, u16) {
            assert!(u1 > u16);
        }
    }
}
