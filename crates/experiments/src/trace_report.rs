//! Rendering of `repro --trace` JSONL files: the `trace-report`
//! subcommand.
//!
//! A trace file is a stream of span/point events (see
//! [`swcc_obs::trace`]) emitted by the instrumented solvers, sweeps,
//! simulator, runner, and validation harness. This module folds one
//! back into the three summaries the paper's diagnostics need:
//!
//! * **Per-phase timing** — wall-clock totals *and self time* per span
//!   name (via the reconstructed [`swcc_obs::tree::SpanTree`]), plus a
//!   per-experiment breakdown from the runner's spans.
//! * **Convergence diagnostics** — the distribution of Patel solver
//!   iterations to tolerance (p50/p90/p99 via
//!   [`swcc_obs::quantile`]), warm-start provenance, bracket
//!   fallbacks, and *divergences*: solves that hit the iteration cap
//!   with the root bracket still wider than the tolerance.
//! * **Model-vs-simulation accuracy** — per validation curve, the
//!   worst relative gap between the analytic model and the trace-driven
//!   simulation (the Fig 1 envelope, paper §3).
//!
//! Ingestion is lenient: truncated or corrupt JSONL lines are counted
//! in [`TraceReport::skipped`] and surfaced as a warning, never fatal —
//! a trace cut off by sink capacity or a killed process is still
//! mostly useful. [`TraceReport::is_clean`] is the gate the
//! `trace-report` subcommand exposes through its exit code: a report
//! with divergences fails.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use swcc_obs::quantile;
use swcc_obs::tree::{parse_trace, ParsedEvent, Scalar, SpanTree};
use swcc_obs::EventKind;

/// Aggregate timing for one span name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTiming {
    /// Spans of this name that closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across them (children included).
    pub total_ns: u64,
    /// Self nanoseconds across them (children excluded).
    pub self_ns: u64,
}

/// One experiment's timing, from its `runner.experiment` span.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTiming {
    /// Experiment id (`"fig1"`, `"table8"`, ...).
    pub id: String,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Worker thread that ran it.
    pub worker: u64,
}

/// Patel solver convergence summary, from `patel.solve` spans and
/// `patel.result` events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceSummary {
    /// Guarded-Newton solves seen (legacy bisections excluded).
    pub solves: u64,
    /// Of those, solves that started from a warm-start hint.
    pub warm: u64,
    /// Legacy fixed-200-step bisection solves.
    pub legacy: u64,
    /// Iterations-to-tolerance of every non-legacy solve, sorted.
    pub iterations: Vec<u64>,
    /// Newton steps that fell back to the bisection midpoint.
    pub fallbacks: u64,
    /// Solves that hit the iteration cap unconverged.
    pub divergences: u64,
}

impl ConvergenceSummary {
    /// The `q`-quantile of the iteration distribution, rounded to the
    /// nearest count; 0 with no solves.
    fn iteration_quantile(&self, q: f64) -> u64 {
        let values: Vec<f64> = self.iterations.iter().map(|&v| v as f64).collect();
        quantile::quantile(&values, q)
            .map(|v| v.round() as u64)
            .unwrap_or(0)
    }

    /// Smallest iteration count, or 0 with no solves.
    pub fn min_iterations(&self) -> u64 {
        self.iterations.first().copied().unwrap_or(0)
    }

    /// Median iteration count, or 0 with no solves.
    pub fn median_iterations(&self) -> u64 {
        self.iteration_quantile(0.5)
    }

    /// 90th-percentile iteration count, or 0 with no solves.
    pub fn p90_iterations(&self) -> u64 {
        self.iteration_quantile(0.9)
    }

    /// 99th-percentile iteration count, or 0 with no solves.
    pub fn p99_iterations(&self) -> u64 {
        self.iteration_quantile(0.99)
    }

    /// Largest iteration count, or 0 with no solves.
    pub fn max_iterations(&self) -> u64 {
        self.iterations.last().copied().unwrap_or(0)
    }
}

/// Model-vs-simulation accuracy for one validation curve.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Trace preset name (`"POPS"`, `"PERO"`, ...).
    pub preset: String,
    /// Protocol name (`"Base"`, `"Dragon"`, ...).
    pub protocol: String,
    /// Cache size in bytes.
    pub cache_bytes: u64,
    /// Comparison points on the curve.
    pub points: u64,
    /// Worst `|model − sim| / sim` across the curve.
    pub max_rel_error: f64,
}

/// One traced model-vs-sim comparison, from a `validation.point` event.
///
/// Where [`AccuracyRow`] folds a curve down to its worst gap, this
/// keeps every point — the raw material for the dashboard's divergence
/// section and for spotting *where* on a curve the model drifts.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergencePoint {
    /// Trace preset name (`"POPS"`, `"PERO"`, ...).
    pub preset: String,
    /// Protocol name (`"Base"`, `"Dragon"`, ...).
    pub protocol: String,
    /// Cache size in bytes.
    pub cache_bytes: u64,
    /// Processor count at this point.
    pub n: u64,
    /// Processing power reported by the simulator.
    pub sim_power: f64,
    /// Processing power predicted by the analytical model.
    pub model_power: f64,
    /// `|model − sim| / sim`.
    pub rel_error: f64,
}

/// Aggregate coherence-event mix for one protocol, summed over every
/// `sim.events` point in the trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventMixRow {
    /// Protocol name (`"Base"`, `"Dragon"`, ...).
    pub protocol: String,
    /// Simulator runs folded into this row.
    pub runs: u64,
    /// Trace accesses replayed.
    pub accesses: u64,
    /// Lines invalidated in remote caches.
    pub invalidations: u64,
    /// Remote lines refreshed by update broadcasts.
    pub updates: u64,
    /// Broadcast bus operations issued.
    pub broadcasts: u64,
    /// Dirty lines written back to memory.
    pub write_backs: u64,
    /// Cache line fills.
    pub fills: u64,
    /// Bus transactions arbitrated.
    pub bus_transactions: u64,
    /// Software flush operations (clean + dirty).
    pub flushes: u64,
}

/// Everything `trace-report` extracts from one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Total JSONL records parsed cleanly.
    pub events: u64,
    /// Span-start records among them.
    pub spans: u64,
    /// Truncated/corrupt lines skipped during parsing.
    pub skipped: u64,
    /// Spans that never saw their end record.
    pub unclosed: u64,
    /// Per-span-name wall-clock aggregates, sorted by name.
    pub phases: BTreeMap<String, PhaseTiming>,
    /// Per-experiment timings, in span start order.
    pub experiments: Vec<ExperimentTiming>,
    /// Patel solver convergence summary.
    pub convergence: ConvergenceSummary,
    /// Model-vs-sim accuracy rows, sorted by (preset, protocol, cache).
    pub accuracy: Vec<AccuracyRow>,
    /// Every traced validation point, sorted by
    /// (preset, protocol, cache, n).
    pub divergence: Vec<DivergencePoint>,
    /// Per-protocol coherence-event sums, sorted by protocol.
    pub event_mix: Vec<EventMixRow>,
}

impl TraceReport {
    /// `true` when the trace shows no solver divergences — the
    /// condition the `trace-report` subcommand turns into its exit
    /// code. Skipped lines are a warning, not a failure.
    pub fn is_clean(&self) -> bool {
        self.convergence.divergences == 0
    }

    /// Experiment ids that have a span in this trace.
    pub fn experiment_ids(&self) -> BTreeSet<&str> {
        self.experiments.iter().map(|e| e.id.as_str()).collect()
    }

    /// Worst accuracy gap across every validation curve, if any
    /// validation points were traced.
    pub fn worst_rel_error(&self) -> Option<f64> {
        self.accuracy
            .iter()
            .map(|r| r.max_rel_error)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.events == 0 {
            out.push_str("trace report: empty trace (no events)\n");
            if self.skipped > 0 {
                let _ = writeln!(out, "warning: skipped {} corrupt line(s)", self.skipped);
            }
            return out;
        }
        let _ = writeln!(
            out,
            "trace report: {} events, {} spans",
            self.events, self.spans
        );
        if self.skipped > 0 {
            let _ = writeln!(out, "warning: skipped {} corrupt line(s)", self.skipped);
        }
        if self.unclosed > 0 {
            let _ = writeln!(
                out,
                "warning: {} span(s) never closed (truncated trace?)",
                self.unclosed
            );
        }

        out.push_str("\nper-phase timing\n");
        let _ = writeln!(
            out,
            "  {:<24} {:>8} {:>12} {:>12} {:>12}",
            "span", "count", "total ms", "self ms", "mean ms"
        );
        for (name, t) in &self.phases {
            let total_ms = t.total_ns as f64 / 1e6;
            let mean_ms = if t.count > 0 {
                total_ms / t.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>12.3} {:>12.3} {:>12.4}",
                name,
                t.count,
                total_ms,
                t.self_ns as f64 / 1e6,
                mean_ms
            );
        }

        if !self.experiments.is_empty() {
            out.push_str("\nexperiment phases\n");
            let _ = writeln!(out, "  {:<16} {:>12} {:>8}", "id", "ms", "worker");
            let mut by_duration = self.experiments.clone();
            by_duration.sort_by(|a, b| b.duration_ns.cmp(&a.duration_ns).then(a.id.cmp(&b.id)));
            for e in &by_duration {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>12.3} {:>8}",
                    e.id,
                    e.duration_ns as f64 / 1e6,
                    e.worker
                );
            }
        }

        out.push_str("\nsolver convergence\n");
        let c = &self.convergence;
        let _ = writeln!(
            out,
            "  solves: {} ({} guarded-Newton of which {} warm-started, {} legacy bisections)",
            c.solves + c.legacy,
            c.solves,
            c.warm,
            c.legacy
        );
        let _ = writeln!(
            out,
            "  iterations to tolerance: min {} / p50 {} / p90 {} / p99 {} / max {}",
            c.min_iterations(),
            c.median_iterations(),
            c.p90_iterations(),
            c.p99_iterations(),
            c.max_iterations()
        );
        let _ = writeln!(out, "  bracket fallbacks: {}", c.fallbacks);
        let _ = writeln!(out, "  divergences (iteration cap hit): {}", c.divergences);

        if !self.accuracy.is_empty() {
            out.push_str("\nmodel-vs-sim accuracy\n");
            let _ = writeln!(
                out,
                "  {:<8} {:<10} {:>10} {:>8} {:>16}",
                "preset", "protocol", "cache KiB", "points", "max rel error"
            );
            for r in &self.accuracy {
                let _ = writeln!(
                    out,
                    "  {:<8} {:<10} {:>10} {:>8} {:>15.1}%",
                    r.preset,
                    r.protocol,
                    r.cache_bytes / 1024,
                    r.points,
                    r.max_rel_error * 100.0
                );
            }
        }

        if !self.event_mix.is_empty() {
            out.push_str("\ncoherence event mix\n");
            let _ = writeln!(
                out,
                "  {:<12} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "protocol",
                "runs",
                "accesses",
                "inval",
                "update",
                "bcast",
                "wb",
                "fill",
                "bus",
                "flush"
            );
            for r in &self.event_mix {
                let _ = writeln!(
                    out,
                    "  {:<12} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    r.protocol,
                    r.runs,
                    r.accesses,
                    r.invalidations,
                    r.updates,
                    r.broadcasts,
                    r.write_backs,
                    r.fills,
                    r.bus_transactions,
                    r.flushes
                );
            }
        }

        if self.is_clean() {
            out.push_str("\nstatus: clean (no solver divergences)\n");
        } else {
            let _ = writeln!(
                out,
                "\nstatus: FAILED ({} solver divergence(s))",
                self.convergence.divergences
            );
        }
        out
    }
}

fn field_str<'a>(event: &'a ParsedEvent, key: &str) -> Option<&'a str> {
    event.field(key).and_then(Scalar::as_str)
}

fn field_u64(event: &ParsedEvent, key: &str) -> Option<u64> {
    event.field(key).and_then(Scalar::as_u64)
}

fn field_f64(event: &ParsedEvent, key: &str) -> Option<f64> {
    event.field(key).and_then(Scalar::as_f64)
}

fn field_bool(event: &ParsedEvent, key: &str) -> Option<bool> {
    event.field(key).and_then(Scalar::as_bool)
}

/// Parses a `repro --trace` JSONL file into a [`TraceReport`].
///
/// Never fails: corrupt lines are counted in [`TraceReport::skipped`]
/// and an empty file yields an empty (clean) report.
pub fn analyze(jsonl: &str) -> TraceReport {
    let parsed = parse_trace(jsonl);
    let tree = SpanTree::build(&parsed.events);

    let mut report = TraceReport {
        events: parsed.events.len() as u64,
        skipped: parsed.skipped as u64,
        unclosed: tree.unclosed() as u64,
        ..TraceReport::default()
    };

    // Phase timing (with self time) straight off the span tree.
    report.phases = tree
        .name_timings()
        .into_iter()
        .map(|(name, t)| {
            (
                name,
                PhaseTiming {
                    count: t.count,
                    total_ns: t.total_ns,
                    self_ns: t.self_ns,
                },
            )
        })
        .collect();

    // Experiment breakdown from the runner's spans.
    for node in tree.nodes() {
        if node.name == "runner.experiment" && node.closed {
            let id = node
                .fields
                .iter()
                .find(|(k, _)| k == "id")
                .and_then(|(_, v)| v.as_str())
                .unwrap_or("?");
            let worker = node
                .fields
                .iter()
                .find(|(k, _)| k == "worker")
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or(0);
            report.experiments.push(ExperimentTiming {
                id: id.to_string(),
                duration_ns: node.dur_ns.unwrap_or(0),
                worker,
            });
        }
    }

    // (preset, protocol, cache) → (points, worst error).
    let mut accuracy: BTreeMap<(String, String, u64), (u64, f64)> = BTreeMap::new();
    // protocol → summed coherence events.
    let mut event_mix: BTreeMap<String, EventMixRow> = BTreeMap::new();
    for event in &parsed.events {
        match event.kind {
            EventKind::SpanStart => {
                report.spans += 1;
                if event.name == "patel.solve" {
                    if field_bool(event, "legacy") == Some(true) {
                        report.convergence.legacy += 1;
                    } else {
                        report.convergence.solves += 1;
                        if field_bool(event, "warm") == Some(true) {
                            report.convergence.warm += 1;
                        }
                    }
                }
            }
            EventKind::Point => match event.name.as_str() {
                "patel.result" => {
                    if let Some(iters) = field_u64(event, "iterations") {
                        report.convergence.iterations.push(iters);
                    }
                    report.convergence.fallbacks += field_u64(event, "fallbacks").unwrap_or(0);
                    if field_bool(event, "converged") == Some(false) {
                        report.convergence.divergences += 1;
                    }
                }
                "validation.point" => {
                    let key = (
                        field_str(event, "preset").unwrap_or("?").to_string(),
                        field_str(event, "protocol").unwrap_or("?").to_string(),
                        field_u64(event, "cache_bytes").unwrap_or(0),
                    );
                    let err = field_f64(event, "rel_error").unwrap_or(0.0);
                    let entry = accuracy.entry(key.clone()).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 = entry.1.max(err);
                    report.divergence.push(DivergencePoint {
                        preset: key.0,
                        protocol: key.1,
                        cache_bytes: key.2,
                        n: field_u64(event, "n").unwrap_or(0),
                        sim_power: field_f64(event, "sim_power").unwrap_or(0.0),
                        model_power: field_f64(event, "model_power").unwrap_or(0.0),
                        rel_error: err,
                    });
                }
                "sim.events" => {
                    let protocol = field_str(event, "protocol").unwrap_or("?").to_string();
                    let row = event_mix.entry(protocol.clone()).or_insert(EventMixRow {
                        protocol,
                        ..EventMixRow::default()
                    });
                    row.runs += 1;
                    row.accesses += field_u64(event, "accesses").unwrap_or(0);
                    row.invalidations += field_u64(event, "invalidations").unwrap_or(0);
                    row.updates += field_u64(event, "updates").unwrap_or(0);
                    row.broadcasts += field_u64(event, "broadcasts").unwrap_or(0);
                    row.write_backs += field_u64(event, "write_backs").unwrap_or(0);
                    row.fills += field_u64(event, "fills").unwrap_or(0);
                    row.bus_transactions += field_u64(event, "bus_transactions").unwrap_or(0);
                    row.flushes += field_u64(event, "flushes").unwrap_or(0);
                }
                _ => {}
            },
            EventKind::SpanEnd => {}
        }
    }

    report.convergence.iterations.sort_unstable();
    report.divergence.sort_by(|a, b| {
        (&a.preset, &a.protocol, a.cache_bytes, a.n).cmp(&(
            &b.preset,
            &b.protocol,
            b.cache_bytes,
            b.n,
        ))
    });
    report.event_mix = event_mix.into_values().collect();
    report.accuracy = accuracy
        .into_iter()
        .map(
            |((preset, protocol, cache_bytes), (points, max_rel_error))| AccuracyRow {
                preset,
                protocol,
                cache_bytes,
                points,
                max_rel_error,
            },
        )
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        [
            r#"{"ev":"start","name":"runner.batch","span":1,"parent":0,"seq":0,"thread":1,"fields":{"experiments":2,"workers":2,"observe":true}}"#,
            r#"{"ev":"start","name":"runner.experiment","span":2,"parent":1,"seq":1,"thread":2,"fields":{"id":"fig1","worker":0,"queue_wait_ms":0.1}}"#,
            r#"{"ev":"start","name":"patel.solve","span":3,"parent":2,"seq":2,"thread":2,"fields":{"rate":0.03,"size":20,"stages":8,"warm":false,"legacy":false}}"#,
            r#"{"ev":"point","name":"patel.iteration","span":3,"parent":3,"seq":3,"thread":2,"fields":{"iter":1,"x":0.6,"residual":0.01,"lo":0,"hi":1}}"#,
            r#"{"ev":"point","name":"patel.result","span":3,"parent":3,"seq":4,"thread":2,"fields":{"iterations":5,"fallbacks":1,"root":0.52,"converged":true}}"#,
            r#"{"ev":"end","name":"patel.solve","span":3,"parent":2,"seq":5,"thread":2,"dur_ns":4200}"#,
            r#"{"ev":"start","name":"patel.solve","span":4,"parent":2,"seq":6,"thread":2,"fields":{"rate":0.04,"size":20,"stages":8,"warm":true,"legacy":false}}"#,
            r#"{"ev":"point","name":"patel.result","span":4,"parent":4,"seq":7,"thread":2,"fields":{"iterations":3,"fallbacks":0,"root":0.5,"converged":true}}"#,
            r#"{"ev":"end","name":"patel.solve","span":4,"parent":2,"seq":8,"thread":2,"dur_ns":2100}"#,
            r#"{"ev":"point","name":"validation.point","span":2,"parent":2,"seq":9,"thread":2,"fields":{"preset":"POPS","protocol":"Base","cache_bytes":65536,"n":2,"sim_power":1.8,"model_power":1.7,"rel_error":0.055}}"#,
            r#"{"ev":"point","name":"sim.events","span":2,"parent":2,"seq":14,"thread":2,"fields":{"protocol":"Dragon","accesses":5000,"invalidations":0,"updates":40,"broadcasts":41,"write_backs":7,"fills":120,"bus_transactions":170,"flushes":0,"cycle_steals":80}}"#,
            r#"{"ev":"end","name":"runner.experiment","span":2,"parent":1,"seq":10,"thread":2,"dur_ns":9000000}"#,
            r#"{"ev":"start","name":"runner.experiment","span":5,"parent":1,"seq":11,"thread":3,"fields":{"id":"table1","worker":1,"queue_wait_ms":0.2}}"#,
            r#"{"ev":"end","name":"runner.experiment","span":5,"parent":1,"seq":12,"thread":3,"dur_ns":1000000}"#,
            r#"{"ev":"end","name":"runner.batch","span":1,"parent":0,"seq":13,"thread":1,"dur_ns":11000000}"#,
        ]
        .join("\n")
    }

    #[test]
    fn parses_phase_timing_and_experiments() {
        let report = analyze(&sample_trace());
        assert_eq!(report.events, 15);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.phases["patel.solve"].count, 2);
        assert_eq!(report.phases["patel.solve"].total_ns, 6300);
        assert_eq!(report.phases["runner.experiment"].count, 2);
        assert_eq!(report.experiments.len(), 2);
        assert!(report.experiment_ids().contains("fig1"));
        assert!(report.experiment_ids().contains("table1"));
    }

    #[test]
    fn phase_self_time_excludes_children() {
        let report = analyze(&sample_trace());
        // fig1's experiment span is 9 ms with 6300 ns of solves inside;
        // table1's is 1 ms with nothing inside.
        assert_eq!(
            report.phases["runner.experiment"].self_ns,
            10_000_000 - 6300
        );
        // The solves are leaves: self == total.
        assert_eq!(report.phases["patel.solve"].self_ns, 6300);
        // The batch excludes both experiments.
        assert_eq!(report.phases["runner.batch"].self_ns, 1_000_000);
    }

    #[test]
    fn summarizes_convergence() {
        let report = analyze(&sample_trace());
        let c = &report.convergence;
        assert_eq!(c.solves, 2);
        assert_eq!(c.warm, 1);
        assert_eq!(c.legacy, 0);
        assert_eq!(c.iterations, vec![3, 5]);
        assert_eq!(c.fallbacks, 1);
        assert_eq!(c.divergences, 0);
        assert_eq!(c.median_iterations(), 4, "interpolated midpoint of 3 and 5");
        assert_eq!(c.max_iterations(), 5);
        assert!(report.is_clean());
    }

    #[test]
    fn flags_divergences() {
        let trace = sample_trace()
            + "\n"
            + r#"{"ev":"point","name":"patel.result","span":0,"parent":0,"seq":14,"thread":2,"fields":{"iterations":200,"fallbacks":12,"root":0.5,"converged":false}}"#;
        let report = analyze(&trace);
        assert_eq!(report.convergence.divergences, 1);
        assert!(!report.is_clean());
        assert!(report.render().contains("FAILED"));
    }

    #[test]
    fn accumulates_accuracy_rows() {
        let report = analyze(&sample_trace());
        assert_eq!(report.accuracy.len(), 1);
        let row = &report.accuracy[0];
        assert_eq!(row.preset, "POPS");
        assert_eq!(row.protocol, "Base");
        assert_eq!(row.cache_bytes, 65536);
        assert_eq!(row.points, 1);
        assert!((row.max_rel_error - 0.055).abs() < 1e-12);
        assert_eq!(report.worst_rel_error(), Some(0.055));
    }

    #[test]
    fn keeps_every_divergence_point() {
        let report = analyze(&sample_trace());
        assert_eq!(report.divergence.len(), 1);
        let p = &report.divergence[0];
        assert_eq!(p.preset, "POPS");
        assert_eq!(p.protocol, "Base");
        assert_eq!(p.cache_bytes, 65536);
        assert_eq!(p.n, 2);
        assert!((p.sim_power - 1.8).abs() < 1e-12);
        assert!((p.model_power - 1.7).abs() < 1e-12);
        assert!((p.rel_error - 0.055).abs() < 1e-12);
    }

    #[test]
    fn sums_sim_events_per_protocol() {
        let extra = r#"{"ev":"point","name":"sim.events","span":0,"parent":0,"seq":15,"thread":2,"fields":{"protocol":"Dragon","accesses":1000,"invalidations":0,"updates":10,"broadcasts":9,"write_backs":3,"fills":30,"bus_transactions":40,"flushes":0,"cycle_steals":20}}"#;
        let report = analyze(&format!("{}\n{extra}", sample_trace()));
        assert_eq!(report.event_mix.len(), 1);
        let r = &report.event_mix[0];
        assert_eq!(r.protocol, "Dragon");
        assert_eq!(r.runs, 2);
        assert_eq!(r.accesses, 6000);
        assert_eq!(r.updates, 50);
        assert_eq!(r.broadcasts, 50);
        assert_eq!(r.write_backs, 10);
        assert_eq!(r.fills, 150);
        assert_eq!(r.bus_transactions, 210);
        assert_eq!(r.invalidations, 0);
        assert_eq!(r.flushes, 0);
    }

    #[test]
    fn render_includes_every_section() {
        let report = analyze(&sample_trace());
        let text = report.render();
        for needle in [
            "per-phase timing",
            "self ms",
            "experiment phases",
            "solver convergence",
            "model-vs-sim accuracy",
            "coherence event mix",
            "status: clean",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn skips_malformed_lines_with_a_warning() {
        let trace = format!("not json\n{}\n{{\"ev\":\"trunc", sample_trace());
        let report = analyze(&trace);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.events, 15, "good lines still parse");
        assert!(report.is_clean(), "skips warn, they do not fail");
        assert!(report.render().contains("skipped 2 corrupt line(s)"));
    }

    #[test]
    fn unknown_event_kinds_are_skipped_not_fatal() {
        let report = analyze(r#"{"ev":"wat","name":"x","span":1,"parent":0,"seq":0,"thread":1}"#);
        assert_eq!(report.events, 0);
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn empty_trace_is_clean_with_a_message() {
        let report = analyze("");
        assert_eq!(report.events, 0);
        assert_eq!(report.skipped, 0);
        assert!(report.is_clean());
        assert!(report.worst_rel_error().is_none());
        assert!(report.render().contains("empty trace"));
    }

    #[test]
    fn truncated_trace_reports_unclosed_spans() {
        let trace =
            r#"{"ev":"start","name":"runner.batch","span":1,"parent":0,"seq":0,"thread":1}"#;
        let report = analyze(trace);
        assert_eq!(report.unclosed, 1);
        assert!(report.render().contains("never closed"));
    }
}
