//! Rendering of `repro --trace` JSONL files: the `trace-report`
//! subcommand.
//!
//! A trace file is a stream of span/point events (see
//! [`swcc_obs::trace`]) emitted by the instrumented solvers, sweeps,
//! simulator, runner, and validation harness. This module folds one
//! back into the three summaries the paper's diagnostics need:
//!
//! * **Per-phase timing** — wall-clock totals per span name plus a
//!   per-experiment breakdown from the runner's spans.
//! * **Convergence diagnostics** — the distribution of Patel solver
//!   iterations to tolerance, warm-start provenance, bracket
//!   fallbacks, and *divergences*: solves that hit the iteration cap
//!   with the root bracket still wider than the tolerance.
//! * **Model-vs-simulation accuracy** — per validation curve, the
//!   worst relative gap between the analytic model and the trace-driven
//!   simulation (the Fig 1 envelope, paper §3).
//!
//! [`TraceReport::is_clean`] is the gate the `trace-report` subcommand
//! exposes through its exit code: a report with divergences fails.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use serde_json::Value;

/// One open span's start-record fields, held until its end record.
#[derive(Debug, Clone, Default)]
struct SpanInfo {
    fields: Vec<(String, Value)>,
}

impl SpanInfo {
    fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Aggregate timing for one span name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTiming {
    /// Spans of this name that closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub total_ns: u64,
}

/// One experiment's timing, from its `runner.experiment` span.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTiming {
    /// Experiment id (`"fig1"`, `"table8"`, ...).
    pub id: String,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Worker thread that ran it.
    pub worker: u64,
}

/// Patel solver convergence summary, from `patel.solve` spans and
/// `patel.result` events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceSummary {
    /// Guarded-Newton solves seen (legacy bisections excluded).
    pub solves: u64,
    /// Of those, solves that started from a warm-start hint.
    pub warm: u64,
    /// Legacy fixed-200-step bisection solves.
    pub legacy: u64,
    /// Iterations-to-tolerance of every non-legacy solve, sorted.
    pub iterations: Vec<u64>,
    /// Newton steps that fell back to the bisection midpoint.
    pub fallbacks: u64,
    /// Solves that hit the iteration cap unconverged.
    pub divergences: u64,
}

impl ConvergenceSummary {
    /// Smallest iteration count, or 0 with no solves.
    pub fn min_iterations(&self) -> u64 {
        self.iterations.first().copied().unwrap_or(0)
    }

    /// Median iteration count, or 0 with no solves.
    pub fn median_iterations(&self) -> u64 {
        if self.iterations.is_empty() {
            0
        } else {
            self.iterations[self.iterations.len() / 2]
        }
    }

    /// Largest iteration count, or 0 with no solves.
    pub fn max_iterations(&self) -> u64 {
        self.iterations.last().copied().unwrap_or(0)
    }
}

/// Model-vs-simulation accuracy for one validation curve.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Trace preset name (`"POPS"`, `"PERO"`, ...).
    pub preset: String,
    /// Protocol name (`"Base"`, `"Dragon"`, ...).
    pub protocol: String,
    /// Cache size in bytes.
    pub cache_bytes: u64,
    /// Comparison points on the curve.
    pub points: u64,
    /// Worst `|model − sim| / sim` across the curve.
    pub max_rel_error: f64,
}

/// Everything `trace-report` extracts from one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Total JSONL records parsed.
    pub events: u64,
    /// Point events that were marked sampled at the source (the sink
    /// may have kept only a fraction of what the source emitted).
    pub spans: u64,
    /// Per-span-name wall-clock aggregates, sorted by name.
    pub phases: BTreeMap<String, PhaseTiming>,
    /// Per-experiment timings, in the order the spans closed.
    pub experiments: Vec<ExperimentTiming>,
    /// Patel solver convergence summary.
    pub convergence: ConvergenceSummary,
    /// Model-vs-sim accuracy rows, sorted by (preset, protocol, cache).
    pub accuracy: Vec<AccuracyRow>,
}

impl TraceReport {
    /// `true` when the trace shows no solver divergences — the
    /// condition the `trace-report` subcommand turns into its exit
    /// code.
    pub fn is_clean(&self) -> bool {
        self.convergence.divergences == 0
    }

    /// Experiment ids that have a span in this trace.
    pub fn experiment_ids(&self) -> BTreeSet<&str> {
        self.experiments.iter().map(|e| e.id.as_str()).collect()
    }

    /// Worst accuracy gap across every validation curve, if any
    /// validation points were traced.
    pub fn worst_rel_error(&self) -> Option<f64> {
        self.accuracy
            .iter()
            .map(|r| r.max_rel_error)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace report: {} events, {} spans",
            self.events, self.spans
        );

        out.push_str("\nper-phase timing\n");
        let _ = writeln!(
            out,
            "  {:<24} {:>8} {:>12} {:>12}",
            "span", "count", "total ms", "mean ms"
        );
        for (name, t) in &self.phases {
            let total_ms = t.total_ns as f64 / 1e6;
            let mean_ms = if t.count > 0 {
                total_ms / t.count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>12.3} {:>12.4}",
                name, t.count, total_ms, mean_ms
            );
        }

        if !self.experiments.is_empty() {
            out.push_str("\nexperiment phases\n");
            let _ = writeln!(out, "  {:<16} {:>12} {:>8}", "id", "ms", "worker");
            let mut by_duration = self.experiments.clone();
            by_duration.sort_by(|a, b| b.duration_ns.cmp(&a.duration_ns).then(a.id.cmp(&b.id)));
            for e in &by_duration {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>12.3} {:>8}",
                    e.id,
                    e.duration_ns as f64 / 1e6,
                    e.worker
                );
            }
        }

        out.push_str("\nsolver convergence\n");
        let c = &self.convergence;
        let _ = writeln!(
            out,
            "  solves: {} ({} guarded-Newton of which {} warm-started, {} legacy bisections)",
            c.solves + c.legacy,
            c.solves,
            c.warm,
            c.legacy
        );
        let _ = writeln!(
            out,
            "  iterations to tolerance: min {} / median {} / max {}",
            c.min_iterations(),
            c.median_iterations(),
            c.max_iterations()
        );
        let _ = writeln!(out, "  bracket fallbacks: {}", c.fallbacks);
        let _ = writeln!(out, "  divergences (iteration cap hit): {}", c.divergences);

        if !self.accuracy.is_empty() {
            out.push_str("\nmodel-vs-sim accuracy\n");
            let _ = writeln!(
                out,
                "  {:<8} {:<10} {:>10} {:>8} {:>16}",
                "preset", "protocol", "cache KiB", "points", "max rel error"
            );
            for r in &self.accuracy {
                let _ = writeln!(
                    out,
                    "  {:<8} {:<10} {:>10} {:>8} {:>15.1}%",
                    r.preset,
                    r.protocol,
                    r.cache_bytes / 1024,
                    r.points,
                    r.max_rel_error * 100.0
                );
            }
        }

        if self.is_clean() {
            out.push_str("\nstatus: clean (no solver divergences)\n");
        } else {
            let _ = writeln!(
                out,
                "\nstatus: FAILED ({} solver divergence(s))",
                self.convergence.divergences
            );
        }
        out
    }
}

fn field_str<'a>(fields: Option<&'a Value>, key: &str) -> Option<&'a str> {
    fields?.get_field(key)?.as_str()
}

fn field_u64(fields: Option<&Value>, key: &str) -> Option<u64> {
    fields?.get_field(key)?.as_u64()
}

fn field_f64(fields: Option<&Value>, key: &str) -> Option<f64> {
    fields?.get_field(key)?.as_f64()
}

fn field_bool(fields: Option<&Value>, key: &str) -> Option<bool> {
    fields?.get_field(key)?.as_bool()
}

/// Parses a `repro --trace` JSONL file into a [`TraceReport`].
///
/// # Errors
///
/// Returns a line-numbered message for the first record that is not a
/// valid trace event object.
pub fn analyze(jsonl: &str) -> Result<TraceReport, String> {
    let mut report = TraceReport::default();
    // span id → info, filled by start records, closed by end records.
    let mut open: BTreeMap<u64, SpanInfo> = BTreeMap::new();
    // (preset, protocol, cache) → (points, worst error).
    let mut accuracy: BTreeMap<(String, String, u64), (u64, f64)> = BTreeMap::new();

    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: invalid JSON: {e}", lineno + 1))?;
        let kind = value
            .get_field("ev")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing \"ev\"", lineno + 1))?
            .to_string();
        let name = value
            .get_field("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing \"name\"", lineno + 1))?
            .to_string();
        let span_id = value.get_field("span").and_then(Value::as_u64).unwrap_or(0);
        let fields = value.get_field("fields");
        report.events += 1;

        match kind.as_str() {
            "start" => {
                report.spans += 1;
                open.insert(
                    span_id,
                    SpanInfo {
                        fields: fields
                            .and_then(Value::as_object)
                            .map(|o| o.to_vec())
                            .unwrap_or_default(),
                    },
                );
                if name == "patel.solve" {
                    report.convergence.solves += 1;
                    let start = open.get(&span_id).expect("just inserted");
                    if start.field("warm").and_then(Value::as_bool) == Some(true) {
                        report.convergence.warm += 1;
                    }
                    if start.field("legacy").and_then(Value::as_bool) == Some(true) {
                        report.convergence.legacy += 1;
                        report.convergence.solves -= 1;
                    }
                }
            }
            "end" => {
                let dur = value
                    .get_field("dur_ns")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                let info = open.remove(&span_id);
                let phase = report.phases.entry(name.clone()).or_insert(PhaseTiming {
                    count: 0,
                    total_ns: 0,
                });
                phase.count += 1;
                phase.total_ns += dur;
                if name == "runner.experiment" {
                    if let Some(info) = &info {
                        report.experiments.push(ExperimentTiming {
                            id: info
                                .field("id")
                                .and_then(Value::as_str)
                                .unwrap_or("?")
                                .to_string(),
                            duration_ns: dur,
                            worker: info.field("worker").and_then(Value::as_u64).unwrap_or(0),
                        });
                    }
                }
            }
            "point" => match name.as_str() {
                "patel.result" => {
                    if let Some(iters) = field_u64(fields, "iterations") {
                        report.convergence.iterations.push(iters);
                    }
                    report.convergence.fallbacks += field_u64(fields, "fallbacks").unwrap_or(0);
                    if field_bool(fields, "converged") == Some(false) {
                        report.convergence.divergences += 1;
                    }
                }
                "validation.point" => {
                    let key = (
                        field_str(fields, "preset").unwrap_or("?").to_string(),
                        field_str(fields, "protocol").unwrap_or("?").to_string(),
                        field_u64(fields, "cache_bytes").unwrap_or(0),
                    );
                    let err = field_f64(fields, "rel_error").unwrap_or(0.0);
                    let entry = accuracy.entry(key).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 = entry.1.max(err);
                }
                _ => {}
            },
            other => {
                return Err(format!("line {}: unknown event kind {other:?}", lineno + 1));
            }
        }
    }

    report.convergence.iterations.sort_unstable();
    report.accuracy = accuracy
        .into_iter()
        .map(
            |((preset, protocol, cache_bytes), (points, max_rel_error))| AccuracyRow {
                preset,
                protocol,
                cache_bytes,
                points,
                max_rel_error,
            },
        )
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        [
            r#"{"ev":"start","name":"runner.batch","span":1,"parent":0,"seq":0,"thread":1,"fields":{"experiments":2,"workers":2,"observe":true}}"#,
            r#"{"ev":"start","name":"runner.experiment","span":2,"parent":1,"seq":1,"thread":2,"fields":{"id":"fig1","worker":0,"queue_wait_ms":0.1}}"#,
            r#"{"ev":"start","name":"patel.solve","span":3,"parent":2,"seq":2,"thread":2,"fields":{"rate":0.03,"size":20,"stages":8,"warm":false,"legacy":false}}"#,
            r#"{"ev":"point","name":"patel.iteration","span":3,"parent":3,"seq":3,"thread":2,"fields":{"iter":1,"x":0.6,"residual":0.01,"lo":0,"hi":1}}"#,
            r#"{"ev":"point","name":"patel.result","span":3,"parent":3,"seq":4,"thread":2,"fields":{"iterations":5,"fallbacks":1,"root":0.52,"converged":true}}"#,
            r#"{"ev":"end","name":"patel.solve","span":3,"parent":2,"seq":5,"thread":2,"dur_ns":4200}"#,
            r#"{"ev":"start","name":"patel.solve","span":4,"parent":2,"seq":6,"thread":2,"fields":{"rate":0.04,"size":20,"stages":8,"warm":true,"legacy":false}}"#,
            r#"{"ev":"point","name":"patel.result","span":4,"parent":4,"seq":7,"thread":2,"fields":{"iterations":3,"fallbacks":0,"root":0.5,"converged":true}}"#,
            r#"{"ev":"end","name":"patel.solve","span":4,"parent":2,"seq":8,"thread":2,"dur_ns":2100}"#,
            r#"{"ev":"point","name":"validation.point","span":2,"parent":2,"seq":9,"thread":2,"fields":{"preset":"POPS","protocol":"Base","cache_bytes":65536,"n":2,"sim_power":1.8,"model_power":1.7,"rel_error":0.055}}"#,
            r#"{"ev":"end","name":"runner.experiment","span":2,"parent":1,"seq":10,"thread":2,"dur_ns":9000000}"#,
            r#"{"ev":"start","name":"runner.experiment","span":5,"parent":1,"seq":11,"thread":3,"fields":{"id":"table1","worker":1,"queue_wait_ms":0.2}}"#,
            r#"{"ev":"end","name":"runner.experiment","span":5,"parent":1,"seq":12,"thread":3,"dur_ns":1000000}"#,
            r#"{"ev":"end","name":"runner.batch","span":1,"parent":0,"seq":13,"thread":1,"dur_ns":11000000}"#,
        ]
        .join("\n")
    }

    #[test]
    fn parses_phase_timing_and_experiments() {
        let report = analyze(&sample_trace()).unwrap();
        assert_eq!(report.events, 14);
        assert_eq!(report.phases["patel.solve"].count, 2);
        assert_eq!(report.phases["patel.solve"].total_ns, 6300);
        assert_eq!(report.phases["runner.experiment"].count, 2);
        assert_eq!(report.experiments.len(), 2);
        assert!(report.experiment_ids().contains("fig1"));
        assert!(report.experiment_ids().contains("table1"));
    }

    #[test]
    fn summarizes_convergence() {
        let report = analyze(&sample_trace()).unwrap();
        let c = &report.convergence;
        assert_eq!(c.solves, 2);
        assert_eq!(c.warm, 1);
        assert_eq!(c.legacy, 0);
        assert_eq!(c.iterations, vec![3, 5]);
        assert_eq!(c.fallbacks, 1);
        assert_eq!(c.divergences, 0);
        assert!(report.is_clean());
    }

    #[test]
    fn flags_divergences() {
        let trace = sample_trace()
            + "\n"
            + r#"{"ev":"point","name":"patel.result","span":0,"parent":0,"seq":14,"thread":2,"fields":{"iterations":200,"fallbacks":12,"root":0.5,"converged":false}}"#;
        let report = analyze(&trace).unwrap();
        assert_eq!(report.convergence.divergences, 1);
        assert!(!report.is_clean());
        assert!(report.render().contains("FAILED"));
    }

    #[test]
    fn accumulates_accuracy_rows() {
        let report = analyze(&sample_trace()).unwrap();
        assert_eq!(report.accuracy.len(), 1);
        let row = &report.accuracy[0];
        assert_eq!(row.preset, "POPS");
        assert_eq!(row.protocol, "Base");
        assert_eq!(row.cache_bytes, 65536);
        assert_eq!(row.points, 1);
        assert!((row.max_rel_error - 0.055).abs() < 1e-12);
        assert_eq!(report.worst_rel_error(), Some(0.055));
    }

    #[test]
    fn render_includes_every_section() {
        let report = analyze(&sample_trace()).unwrap();
        let text = report.render();
        for needle in [
            "per-phase timing",
            "experiment phases",
            "solver convergence",
            "model-vs-sim accuracy",
            "status: clean",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(analyze("not json").is_err());
        assert!(analyze(r#"{"name":"x"}"#).is_err());
        assert!(analyze(r#"{"ev":"wat","name":"x"}"#).is_err());
    }

    #[test]
    fn empty_trace_is_clean() {
        let report = analyze("").unwrap();
        assert_eq!(report.events, 0);
        assert!(report.is_clean());
        assert!(report.worst_rel_error().is_none());
    }
}
