//! A small ASCII scatter/line plotter for figure artifacts.
//!
//! Renders all series of a figure onto one character grid, each series
//! with its own glyph, with min/max axis annotations. Good enough to
//! eyeball the *shape* of a reproduced figure in a terminal or a text
//! log, which is the point of the reproduction.

use crate::artifact::Series;

const WIDTH: usize = 64;
const HEIGHT: usize = 20;
const GLYPHS: &[u8] = b"*o+x#@%&$~";

/// Plots the series onto an ASCII grid.
///
/// Returns an empty string if no series has any points (nothing to
/// scale the axes by).
pub fn ascii_plot(series: &[Series], x_label: &str, y_label: &str) -> String {
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if points.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Avoid a degenerate scale when all points share a coordinate.
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![b' '; WIDTH]; HEIGHT];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x_min) / (x_max - x_min) * (WIDTH - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (HEIGHT - 1) as f64).round() as usize;
            let row = HEIGHT - 1 - cy;
            grid[row][cx] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_label} ({y_max:.3} top, {y_min:.3} bottom)\n"));
    for row in &grid {
        out.push('|');
        out.push_str(std::str::from_utf8(row).expect("grid is ASCII"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(WIDTH));
    out.push('\n');
    out.push_str(&format!(
        " {x_label}: {x_min:.3} .. {x_max:.3}   legend: {}\n",
        series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}={}", GLYPHS[i % GLYPHS.len()] as char, s.name))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_render_empty() {
        assert_eq!(ascii_plot(&[], "x", "y"), "");
        assert_eq!(ascii_plot(&[Series::new("s", vec![])], "x", "y"), "");
    }

    #[test]
    fn plot_contains_glyphs_and_legend() {
        let s = vec![
            Series::new("up", vec![(0.0, 0.0), (1.0, 1.0)]),
            Series::new("down", vec![(0.0, 1.0), (1.0, 0.0)]),
        ];
        let p = ascii_plot(&s, "n", "power");
        assert!(p.contains('*'));
        assert!(p.contains('o'));
        assert!(p.contains("*=up"));
        assert!(p.contains("o=down"));
        assert!(p.contains("n: 0.000 .. 1.000"));
    }

    #[test]
    fn degenerate_single_point_does_not_panic() {
        let s = vec![Series::new("pt", vec![(2.0, 5.0)])];
        let p = ascii_plot(&s, "x", "y");
        assert!(p.contains('*'));
    }

    #[test]
    fn corners_are_plotted_in_bounds() {
        let s = vec![Series::new(
            "c",
            vec![(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)],
        )];
        // Must not panic on boundary indexing.
        let p = ascii_plot(&s, "x", "y");
        assert!(p.matches('*').count() >= 4);
    }
}
