//! # swcc-experiments — reproduction harness
//!
//! Regenerates every table and figure of Owicki & Agarwal, *Evaluating
//! the Performance of Software Cache Coherence* (ASPLOS 1989), from the
//! `swcc-core` analytical model and the `swcc-sim`/`swcc-trace`
//! validation substrate.
//!
//! * [`tables`] — Tables 1–9 (cost tables, frequencies, ranges, and the
//!   Table 8 sensitivity analysis).
//! * [`figures`] — Figures 4–11 (bus scheme comparisons, `apl` studies,
//!   bus-versus-network, and the 256-processor network study).
//! * [`validation`] — Figures 1–3 (model versus trace-driven
//!   simulation).
//! * [`registry`] — id-indexed access to all twenty experiments, used by
//!   the `repro` binary and the benchmark suite.
//! * [`runner`] — a scoped-thread pool that runs batches of experiments
//!   concurrently (`repro --jobs N`) and records per-experiment
//!   wall-clock durations into the artifacts.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p swcc-experiments --bin repro -- all
//! ```
//!
//! or a single artifact:
//!
//! ```
//! use swcc_experiments::registry::{find, RunOptions};
//!
//! let exp = find("fig5").expect("fig5 is registered");
//! let artifact = (exp.run)(&RunOptions::quick());
//! println!("{}", artifact.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod extensions;
pub mod figures;
pub mod gate;
pub mod history;
pub mod html_report;
pub mod manifest;
pub mod plot;
pub mod registry;
pub mod runner;
pub mod sim_report;
pub mod tables;
pub mod trace_export;
pub mod trace_report;
pub mod validation;

pub use artifact::{Artifact, Figure, Series, Table};
pub use manifest::{BuildProvenance, RunManifest, MANIFEST_SCHEMA, MANIFEST_SCHEMA_V1};
pub use registry::{find, Experiment, RunOptions, EXPERIMENTS};
pub use runner::{default_jobs, run_all, run_selected, run_selected_observed, RunRecord};
