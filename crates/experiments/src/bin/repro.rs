//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                                  list experiment ids and titles
//! repro all [--quick] [--json] [--jobs N]     run every experiment
//! repro <id>... [--quick] [--json] [--jobs N] run selected experiments
//! ```
//!
//! `--all` is accepted as a flag alias for the `all` subcommand.
//! `--quick` shortens the synthetic traces used by the
//! simulation-backed experiments. `--json` emits the artifacts as one
//! JSON array (for plotting scripts and regression tooling) instead of
//! rendered text. `--jobs N` runs up to `N` experiments concurrently
//! (`0` = one per available core); output order always matches request
//! order, and every artifact carries a `runner:` footnote with its
//! wall-clock duration.

use std::io::Write;
use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::time::Instant;

use swcc_experiments::registry::{find, RunOptions, EXPERIMENTS};
use swcc_experiments::runner::{default_jobs, run_selected};

/// Prints to stdout, exiting quietly if the reader closed the pipe
/// (e.g. `repro all | head`).
fn emit(text: std::fmt::Arguments<'_>) {
    let mut out = std::io::stdout();
    if writeln!(out, "{text}").is_err() {
        std::process::exit(0);
    }
}

macro_rules! say {
    ($($arg:tt)*) => { emit(format_args!($($arg)*)) };
}

fn usage() {
    eprintln!(
        "usage: repro list | all [--quick] [--json] [--jobs N] | <id>... [--quick] [--json] [--jobs N]"
    );
    eprintln!("ids:");
    for e in EXPERIMENTS {
        eprintln!("  {:<8} {}", e.id, e.title);
    }
}

/// Parses `--jobs N` / `--jobs=N` out of `args`. `Ok(None)` if absent;
/// `0` means "one job per available core".
fn take_jobs(args: &mut Vec<String>) -> Result<Option<NonZeroUsize>, String> {
    let value = if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        if pos + 1 >= args.len() {
            return Err("--jobs needs a value".into());
        }
        let v = args.remove(pos + 1);
        args.remove(pos);
        v
    } else if let Some(pos) = args.iter().position(|a| a.starts_with("--jobs=")) {
        let v = args.remove(pos);
        v["--jobs=".len()..].to_string()
    } else {
        return Ok(None);
    };
    let n: usize = value
        .parse()
        .map_err(|_| format!("--jobs: not a number: {value}"))?;
    Ok(Some(NonZeroUsize::new(n).unwrap_or_else(default_jobs)))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_flag = |name: &str| -> bool {
        if let Some(pos) = args.iter().position(|a| a == name) {
            args.remove(pos);
            true
        } else {
            false
        }
    };
    let quick = take_flag("--quick");
    let json = take_flag("--json");
    let all_flag = take_flag("--all");
    let jobs = match take_jobs(&mut args) {
        Ok(j) => j,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    if args.is_empty() && !all_flag {
        usage();
        return ExitCode::FAILURE;
    }
    let opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::default()
    };
    if !all_flag && args[0] == "list" {
        for e in EXPERIMENTS {
            say!("{:<8} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&'static swcc_experiments::Experiment> = if all_flag || args[0] == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        let mut v = Vec::new();
        for id in &args {
            match find(id) {
                Some(e) => v.push(e),
                None => {
                    eprintln!("unknown experiment id: {id}");
                    usage();
                    return ExitCode::FAILURE;
                }
            }
        }
        v
    };
    let jobs = jobs.unwrap_or_else(|| NonZeroUsize::new(1).expect("1 is non-zero"));
    let count = selected.len();
    let wall = Instant::now();
    let records = run_selected(&selected, &opts, jobs);
    let wall = wall.elapsed();
    if json {
        let artifacts: Vec<(&str, swcc_experiments::Artifact)> =
            records.into_iter().map(|r| (r.id, r.artifact)).collect();
        match serde_json::to_string_pretty(&artifacts) {
            Ok(s) => say!("{s}"),
            Err(e) => {
                eprintln!("cannot serialize artifacts: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for r in &records {
            say!("=== {} — {} ===", r.id, r.title);
            say!("{}", r.artifact.render());
        }
    }
    eprintln!(
        "ran {count} experiment(s) with {jobs} job(s) in {:.1} ms",
        wall.as_secs_f64() * 1e3
    );
    ExitCode::SUCCESS
}
