//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                                  list experiment ids and titles
//! repro all [options]                         run every experiment
//! repro <id>... [options]                     run selected experiments
//! repro check-manifest <path>                 validate a run manifest
//! repro trace-report <path>                   summarize a --trace JSONL file
//! repro trace-export <path> --format F        convert a trace for other tools
//! repro history [--last K] [--tolerance PCT]  show run history + drift gate
//!               [--loadgen-report PATH ...]    …and trend loadgen steady p99
//! repro report --html PATH [trace.jsonl]      write the HTML run dashboard
//! repro sim-report [--quick] [--json]         model-vs-sim residuals + event mix
//!                  [--out PATH]                …with a JSON copy written to PATH
//! repro accuracy [--quick] [--baseline PATH]  run the model-accuracy gate
//! repro --version                             print version + build provenance
//!
//! options:
//!   --quick            shorten the synthetic traces of simulation-backed
//!                      experiments
//!   --json             emit artifacts as one JSON array instead of text
//!   --jobs N           run up to N experiments concurrently (0 = one per
//!                      available core)
//!   --metrics          print solver/runner metric totals to stderr after
//!                      the run
//!   --manifest PATH    write a schema-versioned JSON run manifest
//!   --trace PATH       record a structured span/event trace as JSONL
//!   --trace-sample N   keep 1 in N high-frequency (sampled-class) events
//!                      (default 16; 1 keeps everything)
//!   --record-history   append this run to the run-history log
//!   --history-file P   history log path (default history/runs.jsonl)
//!   --format F         trace-export output: chrome | folded
//!   --out PATH         trace-export destination (default stdout)
//! ```
//!
//! `trace-report` renders per-phase timings, solver convergence
//! diagnostics, and the model-vs-sim accuracy table from a trace file,
//! and exits nonzero if any solver diverged. `trace-export` converts a
//! trace into the Chrome trace-event JSON that `chrome://tracing` and
//! Perfetto load (`--format chrome`) or collapsed flamegraph stacks
//! with self-time weights (`--format folded`). `history` prints the
//! recorded-run trend table and exits nonzero when a machine-independent
//! quantity drifted beyond tolerance versus its trailing median; with
//! `--loadgen-report PATH` (repeatable, oldest first) it additionally
//! trends the `swcc-loadgen/v2` steady-state p99 under the same
//! trailing-median ceiling, printing one explicit skip line for any
//! report that lacks the quantity (a v1 report, or a run without
//! `--timeline`).
//! `report --html` writes a single-file dependency-free dashboard.
//! `sim-report` reruns the full validation matrix and prints, per
//! validation point, the model-vs-sim residuals (power, miss rates,
//! bus utilization), plus per-protocol coherence-event breakdowns and
//! the raw workload-measurement counters; `--out PATH` additionally
//! writes the machine-readable `swcc-sim-report/v1` JSON document.
//! `accuracy` re-runs the validation figures against the checked-in
//! tolerance baseline (`baselines/accuracy.json`) and exits nonzero on
//! a breach.
//!
//! `--all` is accepted as a flag alias for the `all` subcommand; it
//! cannot be combined with explicit ids. Repeated ids run once, repeated
//! flags apply once (for value flags, the last value wins). Output
//! order always matches request order, and every artifact carries a
//! `runner:` footnote with its wall-clock duration. Observation
//! (`--metrics`/`--manifest`/`--record-history`) never changes the
//! artifacts themselves.

use std::io::Write;
use std::num::NonZeroUsize;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use swcc_experiments::gate::{run_gate, AccuracyBaseline};
use swcc_experiments::history::{
    append_record, detect_drift, load_history, loadgen_p99_drift, loadgen_steady_p99,
    render_history, HistoryRecord, LoadgenP99, DEFAULT_DRIFT_TOLERANCE, DEFAULT_HISTORY_PATH,
};
use swcc_experiments::html_report::render_dashboard;
use swcc_experiments::manifest::{BuildProvenance, ManifestOptions, RunManifest};
use swcc_experiments::registry::{find, RunOptions, EXPERIMENTS};
use swcc_experiments::runner::{self, default_jobs, run_selected_observed};
use swcc_experiments::sim_report;
use swcc_experiments::trace_export::{export, ExportFormat};
use swcc_experiments::trace_report;

/// Default path of the accuracy-gate tolerance baseline.
const DEFAULT_ACCURACY_BASELINE: &str = "baselines/accuracy.json";

/// Trace lines the JSONL sink can hold before counting drops.
const TRACE_CAPACITY: usize = 1_000_000;

/// Default 1-in-N sampling of high-frequency trace events.
const TRACE_SAMPLE_DEFAULT: u64 = 16;

/// Prints to stdout, exiting quietly if the reader closed the pipe
/// (e.g. `repro all | head`).
fn emit(text: std::fmt::Arguments<'_>) {
    let mut out = std::io::stdout();
    if writeln!(out, "{text}").is_err() {
        std::process::exit(0);
    }
}

macro_rules! say {
    ($($arg:tt)*) => { emit(format_args!($($arg)*)) };
}

fn usage() {
    eprintln!(
        "usage: repro list | check-manifest <path> | trace-report <path> |\n\
         \x20      trace-export <path> --format chrome|folded [--out PATH] |\n\
         \x20      history [--last K] [--tolerance PCT] [--history-file PATH]\n\
         \x20              [--loadgen-report PATH ...] |\n\
         \x20      report --html PATH [trace.jsonl] [--history-file PATH] |\n\
         \x20      sim-report [--quick] [--json] [--out PATH] |\n\
         \x20      accuracy [--quick] [--baseline PATH] |\n\
         \x20      all [options] | <id>... [options] | --version\n\
         options: [--quick] [--json] [--jobs N] [--metrics] [--manifest PATH]\n\
         \x20        [--trace PATH] [--trace-sample N] [--record-history]\n\
         \x20        [--history-file PATH]"
    );
    eprintln!("ids:");
    for e in EXPERIMENTS {
        eprintln!("  {:<8} {}", e.id, e.title);
    }
}

/// Removes **every** occurrence of the flag; true if it appeared at all.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

/// Parses `--name V` / `--name=V` out of `args`, removing every
/// occurrence; the last value wins. `Ok(None)` if absent.
fn take_value_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let prefix = format!("{name}=");
    let mut value = None;
    loop {
        let Some(pos) = args
            .iter()
            .position(|a| a == name || a.starts_with(&prefix))
        else {
            return Ok(value);
        };
        if args[pos] == name {
            if pos + 1 >= args.len() {
                return Err(format!("{name} needs a value"));
            }
            value = Some(args.remove(pos + 1));
            args.remove(pos);
        } else {
            value = Some(args.remove(pos)[prefix.len()..].to_string());
        }
    }
}

/// Parses every `--name V` / `--name=V` occurrence out of `args`, in
/// order (unlike [`take_value_flag`], repeats accumulate rather than
/// last-wins — the order is the history order).
fn take_value_flags(args: &mut Vec<String>, name: &str) -> Result<Vec<String>, String> {
    let prefix = format!("{name}=");
    let mut values = Vec::new();
    loop {
        let Some(pos) = args
            .iter()
            .position(|a| a == name || a.starts_with(&prefix))
        else {
            return Ok(values);
        };
        if args[pos] == name {
            if pos + 1 >= args.len() {
                return Err(format!("{name} needs a value"));
            }
            values.push(args.remove(pos + 1));
            args.remove(pos);
        } else {
            values.push(args.remove(pos)[prefix.len()..].to_string());
        }
    }
}

/// Parses the `--jobs` value; `0` means "one job per available core".
fn parse_jobs(value: &str) -> Result<NonZeroUsize, String> {
    let n: usize = value
        .parse()
        .map_err(|_| format!("--jobs: not a number: {value}"))?;
    Ok(NonZeroUsize::new(n).unwrap_or_else(default_jobs))
}

fn check_manifest(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match RunManifest::from_json(&json) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let missing = manifest.missing_experiments();
    if !missing.is_empty() {
        eprintln!(
            "{path}: manifest covers {} of {} experiments; missing: {}",
            manifest.experiments.len(),
            EXPERIMENTS.len(),
            missing.join(", ")
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{path}: ok ({} experiments, schema {})",
        manifest.experiments.len(),
        manifest.schema
    );
    ExitCode::SUCCESS
}

fn trace_report_cmd(path: &str) -> ExitCode {
    let jsonl = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = trace_report::analyze(&jsonl);
    say!("{}", report.render().trim_end());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn trace_export_cmd(path: &str, format_name: &str, out: Option<&str>) -> ExitCode {
    let Some(format) = ExportFormat::from_name(format_name) else {
        eprintln!("--format must be 'chrome' or 'folded', not {format_name:?}");
        return ExitCode::FAILURE;
    };
    let jsonl = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let export = export(&jsonl, format);
    if export.skipped_lines > 0 {
        eprintln!("warning: skipped {} corrupt line(s)", export.skipped_lines);
    }
    if export.unclosed_spans > 0 {
        eprintln!(
            "warning: {} span(s) never closed (omitted from export)",
            export.unclosed_spans
        );
    }
    match out {
        Some(out_path) => {
            if let Err(e) = std::fs::write(out_path, &export.output) {
                eprintln!("cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} event(s) to {out_path}", export.events);
        }
        None => {
            let mut stdout = std::io::stdout();
            if stdout.write_all(export.output.as_bytes()).is_err() {
                return ExitCode::SUCCESS;
            }
        }
    }
    ExitCode::SUCCESS
}

fn history_cmd(
    history_file: &str,
    last: usize,
    tolerance: f64,
    loadgen_reports: &[String],
) -> ExitCode {
    let records = match load_history(Path::new(history_file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    say!("{}", render_history(&records, last).trim_end());
    let mut passed = true;
    if !records.is_empty() {
        let outcome = detect_drift(&records, tolerance);
        say!("{}", outcome.render().trim_end());
        passed &= outcome.passed();
    }
    if !loadgen_reports.is_empty() {
        let mut p99s: Vec<f64> = Vec::new();
        for path in loadgen_reports {
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match loadgen_steady_p99(&json) {
                Ok(LoadgenP99::Present(v)) => {
                    say!("loadgen p99: {path} steady-state p99 {v:.1}us");
                    p99s.push(v);
                }
                Ok(LoadgenP99::Absent(reason)) => {
                    say!("loadgen p99: SKIPPED {path} ({reason})");
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let outcome = loadgen_p99_drift(&p99s, tolerance);
        say!("{}", outcome.render().trim_end());
        passed &= outcome.passed();
    }
    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn report_cmd(html_out: &str, trace_path: Option<&str>, history_file: &str) -> ExitCode {
    let report = match trace_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(jsonl) => Some(trace_report::analyze(&jsonl)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let history = match load_history(Path::new(history_file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let html = render_dashboard(report.as_ref(), &history);
    if let Err(e) = std::fs::write(html_out, html) {
        eprintln!("cannot write {html_out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote dashboard to {html_out}");
    ExitCode::SUCCESS
}

fn sim_report_cmd(quick: bool, json: bool, out: Option<&str>) -> ExitCode {
    let opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::default()
    };
    let doc = sim_report::generate(quick, &opts.validation);
    if let Some(path) = out {
        let payload = match serde_json::to_string_pretty(&doc) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot serialize sim report: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, payload + "\n") {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote sim report to {path}");
    }
    if json {
        match serde_json::to_string_pretty(&doc) {
            Ok(s) => say!("{s}"),
            Err(e) => {
                eprintln!("cannot serialize sim report: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        say!("{}", sim_report::render(&doc).trim_end());
    }
    ExitCode::SUCCESS
}

fn accuracy_cmd(quick: bool, baseline_path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(baseline_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match AccuracyBaseline::from_json(&json) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::default()
    };
    let outcome = match run_gate(&baseline, &opts.validation) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    say!("{}", outcome.render().trim_end());
    if outcome.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version") {
        if args.len() != 1 {
            eprintln!("--version takes no other arguments");
            return ExitCode::FAILURE;
        }
        let build = BuildProvenance::current();
        say!("repro {}", env!("CARGO_PKG_VERSION"));
        say!("commit  {}", build.git_commit);
        say!("rustc   {}", build.rustc);
        say!("cargo   {}", build.cargo);
        say!("profile {}", build.profile);
        return ExitCode::SUCCESS;
    }
    let quick = take_flag(&mut args, "--quick");
    let json = take_flag(&mut args, "--json");
    let all_flag = take_flag(&mut args, "--all");
    let metrics = take_flag(&mut args, "--metrics");
    let record_history = take_flag(&mut args, "--record-history");
    macro_rules! value_flag {
        ($name:literal) => {
            match take_value_flag(&mut args, $name) {
                Ok(v) => v,
                Err(msg) => {
                    eprintln!("{msg}");
                    usage();
                    return ExitCode::FAILURE;
                }
            }
        };
    }
    let jobs = value_flag!("--jobs");
    let jobs = match jobs.as_deref().map(parse_jobs).transpose() {
        Ok(j) => j,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let manifest_path = value_flag!("--manifest");
    let trace_path = value_flag!("--trace");
    let trace_sample = value_flag!("--trace-sample");
    let trace_sample = match trace_sample
        .as_deref()
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--trace-sample: not a number: {v}"))
        })
        .transpose()
    {
        Ok(s) => s.unwrap_or(TRACE_SAMPLE_DEFAULT),
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let baseline_path = value_flag!("--baseline");
    let format = value_flag!("--format");
    let out = value_flag!("--out");
    let last = value_flag!("--last");
    let last = match last
        .as_deref()
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--last: not a number: {v}"))
        })
        .transpose()
    {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let tolerance = value_flag!("--tolerance");
    let tolerance = match tolerance
        .as_deref()
        .map(|v| match v.parse::<f64>() {
            Ok(pct) if pct.is_finite() && pct >= 0.0 => Ok(pct / 100.0),
            _ => Err(format!("--tolerance: not a percentage: {v}")),
        })
        .transpose()
    {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let history_file = value_flag!("--history-file");
    let loadgen_reports = match take_value_flags(&mut args, "--loadgen-report") {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let html = value_flag!("--html");
    if let Some(unknown) = args.iter().find(|a| a.starts_with('-')) {
        eprintln!("unknown option: {unknown}");
        usage();
        return ExitCode::FAILURE;
    }
    let export_option = format.is_some() || out.is_some();
    let history_option = last.is_some() || tolerance.is_some() || !loadgen_reports.is_empty();
    let report_option = html.is_some();
    let history_file_option = history_file.is_some();
    let run_option = json
        || all_flag
        || metrics
        || record_history
        || jobs.is_some()
        || manifest_path.is_some()
        || trace_path.is_some();
    let any_option = quick
        || run_option
        || baseline_path.is_some()
        || export_option
        || history_option
        || report_option
        || history_file_option;
    if args.first().map(String::as_str) == Some("list") {
        if any_option || args.len() > 1 {
            eprintln!("list takes no options or arguments");
            usage();
            return ExitCode::FAILURE;
        }
        for e in EXPERIMENTS {
            say!("{:<8} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("check-manifest") {
        if any_option || args.len() != 2 {
            eprintln!("usage: repro check-manifest <path>");
            return ExitCode::FAILURE;
        }
        return check_manifest(&args[1]);
    }
    if args.first().map(String::as_str) == Some("trace-report") {
        if any_option || args.len() != 2 {
            eprintln!("usage: repro trace-report <path>");
            return ExitCode::FAILURE;
        }
        return trace_report_cmd(&args[1]);
    }
    if args.first().map(String::as_str) == Some("trace-export") {
        let other = quick
            || run_option
            || baseline_path.is_some()
            || history_option
            || report_option
            || history_file_option;
        if other || args.len() != 2 || format.is_none() {
            eprintln!("usage: repro trace-export <path> --format chrome|folded [--out PATH]");
            return ExitCode::FAILURE;
        }
        return trace_export_cmd(
            &args[1],
            format.as_deref().unwrap_or_default(),
            out.as_deref(),
        );
    }
    if args.first().map(String::as_str) == Some("history") {
        let other =
            quick || run_option || baseline_path.is_some() || export_option || report_option;
        if other || args.len() != 1 {
            eprintln!(
                "usage: repro history [--last K] [--tolerance PCT] [--history-file PATH] \
                 [--loadgen-report PATH ...]"
            );
            return ExitCode::FAILURE;
        }
        return history_cmd(
            history_file.as_deref().unwrap_or(DEFAULT_HISTORY_PATH),
            last.unwrap_or(0),
            tolerance.unwrap_or(DEFAULT_DRIFT_TOLERANCE),
            &loadgen_reports,
        );
    }
    if args.first().map(String::as_str) == Some("report") {
        let other =
            quick || run_option || baseline_path.is_some() || export_option || history_option;
        if other || args.len() > 2 || html.is_none() {
            eprintln!("usage: repro report --html PATH [trace.jsonl] [--history-file PATH]");
            return ExitCode::FAILURE;
        }
        return report_cmd(
            html.as_deref().unwrap_or_default(),
            args.get(1).map(String::as_str),
            history_file.as_deref().unwrap_or(DEFAULT_HISTORY_PATH),
        );
    }
    if args.first().map(String::as_str) == Some("sim-report") {
        let other = all_flag
            || metrics
            || record_history
            || jobs.is_some()
            || manifest_path.is_some()
            || trace_path.is_some()
            || baseline_path.is_some()
            || format.is_some()
            || history_option
            || report_option
            || history_file_option;
        if other || args.len() > 1 {
            eprintln!("usage: repro sim-report [--quick] [--json] [--out PATH]");
            return ExitCode::FAILURE;
        }
        return sim_report_cmd(quick, json, out.as_deref());
    }
    if args.first().map(String::as_str) == Some("accuracy") {
        let other =
            run_option || export_option || history_option || report_option || history_file_option;
        if other || args.len() > 1 {
            eprintln!("usage: repro accuracy [--quick] [--baseline PATH]");
            return ExitCode::FAILURE;
        }
        return accuracy_cmd(
            quick,
            baseline_path
                .as_deref()
                .unwrap_or(DEFAULT_ACCURACY_BASELINE),
        );
    }
    if baseline_path.is_some() {
        eprintln!("--baseline only applies to the accuracy subcommand");
        usage();
        return ExitCode::FAILURE;
    }
    if export_option || history_option || report_option {
        eprintln!(
            "--format/--out, --last/--tolerance/--loadgen-report, and --html only apply \
             to the trace-export, sim-report, history, and report subcommands"
        );
        usage();
        return ExitCode::FAILURE;
    }
    if history_file_option && !record_history {
        eprintln!("--history-file on a run requires --record-history");
        usage();
        return ExitCode::FAILURE;
    }
    if args.is_empty() && !all_flag {
        usage();
        return ExitCode::FAILURE;
    }
    let wants_all = all_flag || args.iter().any(|a| a == "all");
    let selected: Vec<&'static swcc_experiments::Experiment> = if wants_all {
        if args.iter().any(|a| a != "all") {
            eprintln!("cannot combine 'all' with explicit experiment ids");
            usage();
            return ExitCode::FAILURE;
        }
        EXPERIMENTS.iter().collect()
    } else {
        let mut v: Vec<&'static swcc_experiments::Experiment> = Vec::new();
        for id in &args {
            match find(id) {
                Some(e) if v.iter().any(|s| s.id == e.id) => {
                    eprintln!("note: ignoring duplicate experiment id: {id}");
                }
                Some(e) => v.push(e),
                None => {
                    eprintln!("unknown experiment id: {id}");
                    usage();
                    return ExitCode::FAILURE;
                }
            }
        }
        v
    };
    let opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::default()
    };
    let observe = metrics || manifest_path.is_some() || record_history;
    let registry = if observe {
        let builder = swcc_core::metrics::register(swcc_obs::RegistryBuilder::new());
        let builder = swcc_sim::metrics::register(builder);
        let registry: &'static swcc_obs::MetricsRegistry =
            Box::leak(Box::new(runner::register_metrics(builder).build()));
        if swcc_obs::install(registry).is_err() {
            eprintln!("cannot install metrics recorder");
            return ExitCode::FAILURE;
        }
        Some(registry)
    } else {
        None
    };
    let trace_sink = if let Some(path) = &trace_path {
        let sink: &'static swcc_obs::JsonlSink = Box::leak(Box::new(
            swcc_obs::JsonlSink::with_sampling(TRACE_CAPACITY, trace_sample.max(1)),
        ));
        if swcc_obs::install_sink(sink).is_err() {
            eprintln!("cannot install trace sink");
            return ExitCode::FAILURE;
        }
        Some((sink, path.as_str()))
    } else {
        None
    };
    let jobs = jobs.unwrap_or_else(|| NonZeroUsize::new(1).expect("1 is non-zero"));
    let count = selected.len();
    let wall = Instant::now();
    let records = run_selected_observed(&selected, &opts, jobs, observe);
    let wall = wall.elapsed();
    if json {
        let artifacts: Vec<(&str, swcc_experiments::Artifact)> =
            records.iter().map(|r| (r.id, r.artifact.clone())).collect();
        match serde_json::to_string_pretty(&artifacts) {
            Ok(s) => say!("{s}"),
            Err(e) => {
                eprintln!("cannot serialize artifacts: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for r in &records {
            say!("=== {} — {} ===", r.id, r.title);
            say!("{}", r.artifact.render());
        }
    }
    if let Some(registry) = registry {
        let totals = registry.snapshot();
        if let Some(path) = &manifest_path {
            let manifest = RunManifest::new(
                ManifestOptions {
                    quick,
                    jobs: jobs.get(),
                },
                &records,
                wall.as_secs_f64() * 1e3,
                &totals,
            );
            if let Err(e) = std::fs::write(path, manifest.to_json() + "\n") {
                eprintln!("cannot write manifest {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote manifest to {path}");
        }
        if record_history {
            let record = HistoryRecord::from_run(
                quick,
                jobs.get(),
                &records,
                wall.as_secs_f64() * 1e3,
                &totals,
            );
            let path = history_file.as_deref().unwrap_or(DEFAULT_HISTORY_PATH);
            if let Err(e) = append_record(Path::new(path), &record) {
                eprintln!("cannot append history record to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("recorded run history to {path}");
        }
        if metrics {
            eprint!("{}", totals.render());
        }
    }
    if let Some((sink, path)) = trace_sink {
        if let Err(e) = sink.write_to(path) {
            eprintln!("cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} trace event(s) to {path} ({} dropped)",
            sink.len(),
            sink.dropped()
        );
    }
    eprintln!(
        "ran {count} experiment(s) with {jobs} job(s) in {:.1} ms",
        wall.as_secs_f64() * 1e3
    );
    ExitCode::SUCCESS
}
