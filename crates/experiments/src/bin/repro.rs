//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                        list experiment ids and titles
//! repro all [--quick] [--json]      run every experiment
//! repro <id>... [--quick] [--json]  run selected experiments
//! ```
//!
//! `--quick` shortens the synthetic traces used by the
//! simulation-backed experiments. `--json` emits the artifacts as one
//! JSON array (for plotting scripts and regression tooling) instead of
//! rendered text.

use std::io::Write;
use std::process::ExitCode;

use swcc_experiments::registry::{find, RunOptions, EXPERIMENTS};

/// Prints to stdout, exiting quietly if the reader closed the pipe
/// (e.g. `repro all | head`).
fn emit(text: std::fmt::Arguments<'_>) {
    let mut out = std::io::stdout();
    if writeln!(out, "{text}").is_err() {
        std::process::exit(0);
    }
}

macro_rules! say {
    ($($arg:tt)*) => { emit(format_args!($($arg)*)) };
}

fn usage() {
    eprintln!("usage: repro list | all [--quick] [--json] | <id>... [--quick] [--json]");
    eprintln!("ids:");
    for e in EXPERIMENTS {
        eprintln!("  {:<8} {}", e.id, e.title);
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_flag = |name: &str| -> bool {
        if let Some(pos) = args.iter().position(|a| a == name) {
            args.remove(pos);
            true
        } else {
            false
        }
    };
    let quick = take_flag("--quick");
    let json = take_flag("--json");
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let opts = if quick {
        RunOptions::quick()
    } else {
        RunOptions::default()
    };
    if args[0] == "list" {
        for e in EXPERIMENTS {
            say!("{:<8} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&'static swcc_experiments::Experiment> = if args[0] == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        let mut v = Vec::new();
        for id in &args {
            match find(id) {
                Some(e) => v.push(e),
                None => {
                    eprintln!("unknown experiment id: {id}");
                    usage();
                    return ExitCode::FAILURE;
                }
            }
        }
        v
    };
    if json {
        let artifacts: Vec<(&str, swcc_experiments::Artifact)> =
            selected.iter().map(|e| (e.id, (e.run)(&opts))).collect();
        match serde_json::to_string_pretty(&artifacts) {
            Ok(s) => say!("{s}"),
            Err(e) => {
                eprintln!("cannot serialize artifacts: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    for e in selected {
        say!("=== {} — {} ===", e.id, e.title);
        let artifact = (e.run)(&opts);
        say!("{}", artifact.render());
    }
    ExitCode::SUCCESS
}
