//! The `repro sim-report` artifact: model-vs-sim divergence analytics.
//!
//! The validation figures (Figures 1–3) plot model and simulation
//! processing power side by side; this module reports the *residuals*
//! — per validation point, how far the analytical model sits from the
//! trace-driven simulation on power, miss rates, and bus utilization —
//! plus the per-protocol coherence-event breakdowns and the raw
//! [`MeasurementCounts`] the measurement pipeline computes (previously
//! exposed "for diagnostics" but dropped by every caller).
//!
//! The JSON document (schema [`SIM_REPORT_SCHEMA`]) is what CI gates
//! with `jq`; [`render`] produces the human table.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use swcc_core::prelude::*;
use swcc_sim::measure::{measure_workload_with_counts, MeasurementCounts};
use swcc_sim::{simulate, ProtocolKind, SimConfig, SimReport};
use swcc_trace::synth::Preset;

use crate::validation::ValidationOptions;

/// Schema identifier written into every sim-report document.
pub const SIM_REPORT_SCHEMA: &str = "swcc-sim-report/v1";

/// One validation point's model-vs-sim residuals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointResidual {
    /// Validation figure this point belongs to (`"fig1"`, ...).
    pub figure: String,
    /// Trace preset (`"POPS"`, `"PERO"`).
    pub preset: String,
    /// Coherence protocol simulated.
    pub protocol: String,
    /// Cache size in KiB.
    pub cache_kib: u64,
    /// Processor count.
    pub n: u32,
    /// Simulated processing power.
    pub sim_power: f64,
    /// Model-predicted processing power.
    pub model_power: f64,
    /// `|model − sim| / sim` on power — the paper's Fig 1 gap.
    pub power_rel_error: f64,
    /// Data miss rate measured by the timed simulation.
    pub sim_msdat: f64,
    /// Data miss rate the model was fed (measured from the largest
    /// trace, the paper's nearly-constant-in-n assumption).
    pub model_msdat: f64,
    /// Instruction miss rate measured by the timed simulation.
    pub sim_mains: f64,
    /// Instruction miss rate the model was fed.
    pub model_mains: f64,
    /// Simulated bus utilization.
    pub sim_bus_utilization: f64,
    /// Model-predicted bus utilization.
    pub model_bus_utilization: f64,
}

/// Coherence-event totals summed over every simulation of one
/// protocol in the report's matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolEvents {
    /// Coherence protocol.
    pub protocol: String,
    /// Simulation runs summed over.
    pub runs: u64,
    /// Trace records replayed.
    pub accesses: u64,
    /// Cache misses (data + instruction).
    pub misses: u64,
    /// Copies dropped by snooped invalidations.
    pub invalidations: u64,
    /// Copies updated in place by snooped write-broadcasts.
    pub updates: u64,
    /// Write-broadcasts issued on the bus.
    pub broadcasts: u64,
    /// Dirty blocks written back to memory.
    pub write_backs: u64,
    /// Cache line fills.
    pub fills: u64,
    /// Interconnect transactions arbitrated.
    pub bus_transactions: u64,
    /// Software flushes (clean + dirty).
    pub flushes: u64,
    /// Processor cycles stolen by snooping controllers.
    pub cycle_steals: u64,
}

impl ProtocolEvents {
    fn new(protocol: String) -> ProtocolEvents {
        ProtocolEvents {
            protocol,
            runs: 0,
            accesses: 0,
            misses: 0,
            invalidations: 0,
            updates: 0,
            broadcasts: 0,
            write_backs: 0,
            fills: 0,
            bus_transactions: 0,
            flushes: 0,
            cycle_steals: 0,
        }
    }

    fn absorb(&mut self, report: &SimReport) {
        self.runs += 1;
        self.accesses += report.accesses();
        self.misses += report.data_misses() + report.instr_misses();
        self.invalidations += report.invalidations();
        self.updates += report.updates();
        self.broadcasts += report.broadcasts();
        self.write_backs += report.write_backs();
        self.fills += report.fills();
        self.bus_transactions += report.bus_transactions();
        self.flushes += report.clean_flushes() + report.dirty_flushes();
        self.cycle_steals += report.cycle_steals();
    }
}

/// The raw measurement counters behind one validation curve's workload
/// parameters — the [`MeasurementCounts`] diagnostics surfaced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurveMeasurement {
    /// Validation figure the curve belongs to.
    pub figure: String,
    /// Trace preset.
    pub preset: String,
    /// Cache size in KiB.
    pub cache_kib: u64,
    /// Processors in the measured (largest) trace.
    pub cpus: u32,
    /// The raw counters of the measurement replay.
    pub counts: MeasurementCounts,
}

/// Whole-report totals: the lines CI gates with `jq`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReportTotals {
    /// Validation points compared.
    pub points: u64,
    /// Trace records replayed across every timed simulation.
    pub accesses: u64,
    /// Wall-clock milliseconds the whole report took.
    pub wall_ms: f64,
    /// Replay throughput: `accesses / wall` (nonzero on any real run).
    pub accesses_per_second: f64,
    /// Worst power residual across every point.
    pub max_power_rel_error: f64,
}

/// The whole `swcc-sim-report/v1` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReportDoc {
    /// Always [`SIM_REPORT_SCHEMA`].
    pub schema: String,
    /// Whether the `--quick` validation profile was used.
    pub quick: bool,
    /// Per-validation-point residuals, in matrix order.
    pub points: Vec<PointResidual>,
    /// Per-protocol coherence-event breakdowns, sorted by protocol.
    pub protocols: Vec<ProtocolEvents>,
    /// Raw measurement counters, one per validation curve.
    pub measurements: Vec<CurveMeasurement>,
    /// Whole-report totals.
    pub totals: SimReportTotals,
}

/// One validation curve of the Figures 1–3 matrix.
struct Curve {
    figure: &'static str,
    preset: Preset,
    protocol: ProtocolKind,
    cache_kib: u64,
    max_cpus: u16,
}

/// The exact matrix the validation figures run: Fig 1 (Base and
/// Dragon, 64K, ≤4), Fig 2 (Dragon, 16/64/256K, ≤4), Fig 3 (Dragon on
/// PERO, 16/64/256K, ≤8).
fn matrix() -> Vec<Curve> {
    let mut curves = Vec::new();
    for protocol in [ProtocolKind::Base, ProtocolKind::Dragon] {
        curves.push(Curve {
            figure: "fig1",
            preset: Preset::Pops,
            protocol,
            cache_kib: 64,
            max_cpus: 4,
        });
    }
    for cache_kib in [16, 64, 256] {
        curves.push(Curve {
            figure: "fig2",
            preset: Preset::Pops,
            protocol: ProtocolKind::Dragon,
            cache_kib,
            max_cpus: 4,
        });
    }
    for cache_kib in [16, 64, 256] {
        curves.push(Curve {
            figure: "fig3",
            preset: Preset::Pero,
            protocol: ProtocolKind::Dragon,
            cache_kib,
            max_cpus: 8,
        });
    }
    curves
}

/// Runs the validation matrix and assembles the report document.
pub fn generate(quick: bool, opts: &ValidationOptions) -> SimReportDoc {
    let start = Instant::now();
    let mut points = Vec::new();
    let mut protocols: Vec<ProtocolEvents> = Vec::new();
    let mut measurements = Vec::new();
    let mut accesses = 0u64;

    for curve in matrix() {
        let mut config_b = SimConfig::builder(curve.protocol);
        config_b.cache_bytes(curve.cache_kib * 1024);
        let config = config_b.build();

        // Same convention as `validation::compare_curves`: measure the
        // workload once, from the largest trace of the curve.
        let full_trace = curve
            .preset
            .config(curve.max_cpus, opts.instructions_per_cpu, opts.seed)
            .generate();
        let (workload, counts) = measure_workload_with_counts(&full_trace, &config);
        measurements.push(CurveMeasurement {
            figure: curve.figure.to_string(),
            preset: curve.preset.to_string(),
            cache_kib: curve.cache_kib,
            cpus: u32::from(curve.max_cpus),
            counts,
        });

        let scheme = curve
            .protocol
            .scheme()
            .expect("the validation matrix runs the paper's protocols");
        let protocol_events = {
            let name = curve.protocol.to_string();
            match protocols.iter().position(|p| p.protocol == name) {
                Some(i) => i,
                None => {
                    protocols.push(ProtocolEvents::new(name));
                    protocols.len() - 1
                }
            }
        };

        for n in 1..=curve.max_cpus {
            let trace = curve
                .preset
                .config(n, opts.instructions_per_cpu, opts.seed)
                .generate();
            let report = simulate(&trace, &config);
            let perf = analyze_bus(scheme, &workload, config.system(), u32::from(n))
                .expect("bus analysis cannot fail for valid workloads");
            accesses += report.accesses();
            protocols[protocol_events].absorb(&report);
            let sim_power = report.power();
            let model_power = perf.power();
            points.push(PointResidual {
                figure: curve.figure.to_string(),
                preset: curve.preset.to_string(),
                protocol: curve.protocol.to_string(),
                cache_kib: curve.cache_kib,
                n: u32::from(n),
                sim_power,
                model_power,
                power_rel_error: if sim_power > 0.0 {
                    (model_power - sim_power).abs() / sim_power
                } else {
                    0.0
                },
                sim_msdat: report.msdat(),
                model_msdat: workload.msdat(),
                sim_mains: report.mains(),
                model_mains: workload.mains(),
                sim_bus_utilization: report.bus_utilization(),
                model_bus_utilization: perf.bus_utilization(),
            });
        }
    }

    protocols.sort_by(|a, b| a.protocol.cmp(&b.protocol));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let max_power_rel_error = points
        .iter()
        .map(|p| p.power_rel_error)
        .fold(0.0f64, f64::max);
    SimReportDoc {
        schema: SIM_REPORT_SCHEMA.to_string(),
        quick,
        totals: SimReportTotals {
            points: points.len() as u64,
            accesses,
            wall_ms,
            accesses_per_second: accesses as f64 / (wall_ms / 1e3).max(1e-12),
            max_power_rel_error,
        },
        points,
        protocols,
        measurements,
    }
}

/// Renders the human-readable tables of a sim-report document.
pub fn render(doc: &SimReportDoc) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sim report ({}, {} profile)",
        doc.schema,
        if doc.quick { "quick" } else { "full" }
    );
    out.push_str("\nmodel-vs-sim residuals per validation point:\n");
    let _ = writeln!(
        out,
        "  {:<5} {:<5} {:<16} {:>5} {:>2} {:>8} {:>8} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "fig",
        "trace",
        "protocol",
        "cache",
        "n",
        "sim pwr",
        "mdl pwr",
        "err%",
        "sim msd",
        "mdl msd",
        "sim bus",
        "mdl bus"
    );
    for p in &doc.points {
        let _ = writeln!(
            out,
            "  {:<5} {:<5} {:<16} {:>4}K {:>2} {:>8.3} {:>8.3} {:>6.2}% {:>8.4} {:>8.4} {:>8.3} {:>8.3}",
            p.figure,
            p.preset,
            p.protocol,
            p.cache_kib,
            p.n,
            p.sim_power,
            p.model_power,
            p.power_rel_error * 100.0,
            p.sim_msdat,
            p.model_msdat,
            p.sim_bus_utilization,
            p.model_bus_utilization,
        );
    }
    out.push_str("\ncoherence events per protocol:\n");
    let _ = writeln!(
        out,
        "  {:<16} {:>4} {:>10} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10} {:>8}",
        "protocol",
        "runs",
        "accesses",
        "misses",
        "inval",
        "updates",
        "bcast",
        "wbacks",
        "fills",
        "bus txn",
        "steals"
    );
    for p in &doc.protocols {
        let _ = writeln!(
            out,
            "  {:<16} {:>4} {:>10} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10} {:>8}",
            p.protocol,
            p.runs,
            p.accesses,
            p.misses,
            p.invalidations,
            p.updates,
            p.broadcasts,
            p.write_backs,
            p.fills,
            p.bus_transactions,
            p.cycle_steals,
        );
    }
    out.push_str("\nmeasurement counts per validation curve:\n");
    let _ = writeln!(
        out,
        "  {:<5} {:<5} {:>5} {:>4} {:>10} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "fig",
        "trace",
        "cache",
        "cpus",
        "data refs",
        "misses",
        "shared",
        "shd other",
        "bcast st",
        "dirty rp"
    );
    for m in &doc.measurements {
        let _ = writeln!(
            out,
            "  {:<5} {:<5} {:>4}K {:>4} {:>10} {:>9} {:>9} {:>10} {:>10} {:>9}",
            m.figure,
            m.preset,
            m.cache_kib,
            m.cpus,
            m.counts.data_refs,
            m.counts.data_misses + m.counts.instr_misses,
            m.counts.shared_refs,
            m.counts.shared_refs_other_present,
            m.counts.broadcast_stores,
            m.counts.dirty_replacements,
        );
    }
    let _ = writeln!(
        out,
        "\ntotals: {} points, {} accesses replayed in {:.1} ms ({:.2e} accesses/s), worst power residual {:.2}%",
        doc.totals.points,
        doc.totals.accesses,
        doc.totals.wall_ms,
        doc.totals.accesses_per_second,
        doc.totals.max_power_rel_error * 100.0,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swcc_trace::synth::pops_like;

    fn quick() -> ValidationOptions {
        ValidationOptions {
            instructions_per_cpu: 4_000,
            seed: 0xA7,
        }
    }

    #[test]
    fn report_covers_the_full_validation_matrix() {
        let doc = generate(true, &quick());
        assert_eq!(doc.schema, SIM_REPORT_SCHEMA);
        // fig1: 2 curves x 4, fig2: 3 x 4, fig3: 3 x 8.
        assert_eq!(doc.points.len(), 2 * 4 + 3 * 4 + 3 * 8);
        assert_eq!(doc.totals.points, doc.points.len() as u64);
        assert_eq!(doc.measurements.len(), 8);
        assert!(doc.totals.accesses > 0);
        assert!(doc.totals.accesses_per_second > 0.0);
        for p in &doc.points {
            assert!(p.sim_power > 0.0, "{p:?}");
            assert!(p.model_power > 0.0, "{p:?}");
        }
        assert!(doc.totals.max_power_rel_error > 0.0);
        assert!(
            doc.totals.max_power_rel_error < 0.5,
            "worst residual {:.3}",
            doc.totals.max_power_rel_error
        );
    }

    #[test]
    fn protocol_breakdowns_reflect_protocol_semantics() {
        let doc = generate(true, &quick());
        assert_eq!(doc.protocols.len(), 2, "Base and Dragon");
        let base = doc.protocols.iter().find(|p| p.protocol == "Base").unwrap();
        let dragon = doc
            .protocols
            .iter()
            .find(|p| p.protocol == "Dragon")
            .unwrap();
        assert_eq!(base.broadcasts, 0, "Base never broadcasts");
        assert_eq!(base.updates, 0);
        assert!(dragon.broadcasts > 0, "Dragon broadcasts on shared stores");
        assert!(dragon.updates > 0, "snoopers update in place");
        assert_eq!(dragon.invalidations, 0, "Dragon never invalidates");
        for p in &doc.protocols {
            assert!(p.fills >= p.misses, "{p:?}");
            assert!(p.bus_transactions > 0, "{p:?}");
        }
    }

    #[test]
    fn document_round_trips_through_json() {
        let doc = generate(true, &quick());
        let json = serde_json::to_string(&doc).unwrap();
        let parsed: SimReportDoc = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, doc);
        let rendered = render(&doc);
        assert!(rendered.contains("model-vs-sim residuals"));
        assert!(rendered.contains("coherence events per protocol"));
        assert!(rendered.contains("measurement counts"));
        assert!(rendered.contains("Dragon"));
    }

    /// Golden values for the measurement pipeline on a fixed synthetic
    /// trace: `measure_workload_with_counts` is deterministic, so any
    /// change here means the measured Table 2 parameters changed too.
    #[test]
    fn measurement_counts_are_golden_on_a_fixed_trace() {
        let trace = pops_like(2, 5_000, 11).generate();
        let config = SimConfig::new(ProtocolKind::Dragon);
        let (_, counts) = measure_workload_with_counts(&trace, &config);
        let again = measure_workload_with_counts(&trace, &config).1;
        assert_eq!(counts, again, "measurement is deterministic");
        insta_like_assert(&counts);
    }

    /// The pinned golden values (kept in one place so a legitimate
    /// change updates a single function).
    fn insta_like_assert(counts: &MeasurementCounts) {
        assert_eq!(counts.instructions, 10_000);
        assert_eq!(counts.data_refs, 2_980);
        assert_eq!(counts.data_misses, 288);
        assert_eq!(counts.instr_misses, 90);
        assert_eq!(counts.dirty_replacements, 28);
        assert_eq!(counts.shared_misses, 84);
        assert_eq!(counts.shared_misses_other_dirty, 24);
        assert_eq!(counts.shared_refs, 317);
        assert_eq!(counts.shared_refs_other_present, 175);
        assert_eq!(counts.broadcast_stores, 40);
        assert_eq!(counts.broadcast_holders, 40);
    }
}
