//! Reproduction of the paper's tables.
//!
//! Tables 1–7 and 9 are *inputs* of the model (cost tables, parameter
//! catalog, frequency formulas, ranges); regenerating them checks that
//! the implementation encodes exactly what the paper states. Table 8 is
//! a *result*: the sensitivity analysis.

use swcc_core::prelude::*;
use swcc_core::sensitivity::sensitivity_table;
use swcc_core::workload::TABLE7_RANGES;

use crate::artifact::Table;

fn fmt_f(v: f64) -> String {
    // swcc-lint: allow(float-eq) — the table prints -0.0 and 0.0 both as plain 0 on purpose
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.6}")
    }
}

/// Table 1: CPU and bus time for hardware operations.
pub fn table1() -> Table {
    let sys = BusSystemModel::new();
    let mut t = Table::new(
        "Table 1: system model — CPU and bus time for hardware operations (cycles)",
        vec!["operation".into(), "cpu".into(), "bus".into()],
    );
    for op in Operation::ALL {
        let c = sys.cost(op).expect("bus model is total");
        t.push_row(vec![
            op.name().to_string(),
            c.cpu().to_string(),
            c.interconnect().to_string(),
        ]);
    }
    t.notes
        .push("derived from a RISC machine with 4-word blocks, 2-cycle memory, 1-word bus".into());
    t
}

/// Table 2: the workload-model parameters.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: parameters for the workload model",
        vec!["parameter".into(), "description".into()],
    );
    for id in ParamId::ALL {
        t.push_row(vec![id.name().to_string(), id.description().to_string()]);
    }
    t
}

fn frequency_table(title: &str, scheme: Scheme, workload: &WorkloadParams) -> Table {
    let mut t = Table::new(
        title,
        vec!["operation".into(), "frequency / instruction".into()],
    );
    for (op, freq) in scheme.mix(workload).iter() {
        t.push_row(vec![op.name().to_string(), fmt_f(freq)]);
    }
    t.notes.push(format!(
        "evaluated at middle (Table 7) parameters; scheme = {scheme}"
    ));
    t
}

/// Table 3: operation frequencies of the Base scheme (middle workload).
pub fn table3() -> Table {
    frequency_table(
        "Table 3: workload model — Base scheme",
        Scheme::Base,
        &WorkloadParams::default(),
    )
}

/// Table 4: operation frequencies of the No-Cache scheme.
pub fn table4() -> Table {
    frequency_table(
        "Table 4: workload model — No-Cache",
        Scheme::NoCache,
        &WorkloadParams::default(),
    )
}

/// Table 5: operation frequencies of the Software-Flush scheme.
pub fn table5() -> Table {
    frequency_table(
        "Table 5: workload model — Software-Flush",
        Scheme::SoftwareFlush,
        &WorkloadParams::default(),
    )
}

/// Table 6: operation frequencies of the Dragon scheme.
pub fn table6() -> Table {
    frequency_table(
        "Table 6: workload model — Dragon",
        Scheme::Dragon,
        &WorkloadParams::default(),
    )
}

/// Table 7: low/middle/high parameter ranges.
pub fn table7() -> Table {
    let mut t = Table::new(
        "Table 7: parameter ranges",
        vec![
            "parameter".into(),
            "low".into(),
            "middle".into(),
            "high".into(),
        ],
    );
    for row in TABLE7_RANGES.iter() {
        if row.id == ParamId::Apl {
            // The paper tabulates 1/apl.
            t.push_row(vec![
                "1/apl".into(),
                fmt_f(1.0 / row.low),
                fmt_f(1.0 / row.middle),
                fmt_f(1.0 / row.high),
            ]);
        } else {
            t.push_row(vec![
                row.id.name().into(),
                fmt_f(row.low),
                fmt_f(row.middle),
                fmt_f(row.high),
            ]);
        }
    }
    t
}

/// Table 8: sensitivity to parameter variation — percent change in
/// execution time when each parameter moves from its low to its high
/// value, all others held at middle.
pub fn table8(processors: u32) -> Table {
    let s = sensitivity_table(processors).expect("positive processor count");
    let mut t = Table::new(
        format!(
            "Table 8: sensitivity to parameter variation (% change in execution time, \
             low → high, {processors}-processor bus)"
        ),
        vec![
            "parameter".into(),
            "Base".into(),
            "No-Cache".into(),
            "Software-Flush".into(),
            "Dragon".into(),
        ],
    );
    for param in ParamId::ALL {
        let cell = |scheme| {
            let c = s.cell(param, scheme).expect("full table");
            format!("{:+.1}", c.percent_change())
        };
        t.push_row(vec![
            param.name().to_string(),
            cell(Scheme::Base),
            cell(Scheme::NoCache),
            cell(Scheme::SoftwareFlush),
            cell(Scheme::Dragon),
        ]);
    }
    t.notes
        .push("apl varies low→high as 25→1 (the paper tabulates 1/apl = 0.04→1.0)".into());
    t
}

/// Table 9: system model for a multistage network with `stages` stages.
pub fn table9(stages: u32) -> Table {
    let sys = NetworkSystemModel::new(stages);
    let mut t = Table::new(
        format!(
            "Table 9: system model for a network with n = {stages} stages ({} processors)",
            sys.processors()
        ),
        vec!["operation".into(), "cpu".into(), "network".into()],
    );
    for op in Operation::ALL {
        if let Some(c) = sys.cost(op) {
            t.push_row(vec![
                op.name().to_string(),
                c.cpu().to_string(),
                c.interconnect().to_string(),
            ]);
        }
    }
    t.notes.push(
        "snoopy operations (broadcast, cache-sourced miss, cycle steal) are undefined".into(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_eleven_operations() {
        let t = table1();
        assert_eq!(t.rows.len(), 11);
        assert!(t.render().contains("write broadcast"));
    }

    #[test]
    fn table2_lists_all_parameters() {
        assert_eq!(table2().rows.len(), 11);
    }

    #[test]
    fn frequency_tables_include_instruction_row() {
        for t in [table3(), table4(), table5(), table6()] {
            assert!(t.rows.iter().any(|r| r[0] == "instruction execution"));
        }
    }

    #[test]
    fn table4_has_throughs() {
        let t = table4();
        assert!(t.rows.iter().any(|r| r[0] == "read through"));
        assert!(t.rows.iter().any(|r| r[0] == "write through"));
    }

    #[test]
    fn table5_has_flushes() {
        let t = table5();
        assert!(t.rows.iter().any(|r| r[0] == "clean flush"));
        assert!(t.rows.iter().any(|r| r[0] == "dirty flush"));
    }

    #[test]
    fn table7_prints_inverse_apl() {
        let t = table7();
        let row = t.rows.iter().find(|r| r[0] == "1/apl").expect("1/apl row");
        assert_eq!(row[1], "0.0400");
        assert_eq!(row[3], "1.0000");
    }

    #[test]
    fn table8_is_complete_and_shows_apl_dominance() {
        let t = table8(16);
        assert_eq!(t.rows.len(), 11);
        let apl_row = t.rows.iter().find(|r| r[0] == "apl").unwrap();
        let sf: f64 = apl_row[3].parse().unwrap();
        // apl must be a huge effect for Software-Flush, zero elsewhere.
        assert!(sf > 50.0, "apl effect on SF: {sf}");
        assert_eq!(apl_row[1], "+0.0");
        assert_eq!(apl_row[4], "+0.0");
    }

    #[test]
    fn table9_excludes_snoopy_ops() {
        let t = table9(8);
        assert_eq!(t.rows.len(), 7);
        assert!(!t.render().contains("write broadcast"));
    }
}
