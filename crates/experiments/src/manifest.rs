//! The machine-readable run manifest behind `repro --manifest <path>`.
//!
//! A manifest is a schema-versioned JSON record of one `repro`
//! invocation: which experiments ran with which options, how long each
//! took (run time, queue wait, worker), the solver counters each one
//! caused, and the process-wide metric totals. CI archives it next to
//! the benchmark baselines so a run's cost profile travels with its
//! artifacts.
//!
//! The schema string ([`MANIFEST_SCHEMA`]) is checked on load:
//! [`RunManifest::from_json`] accepts the current revision and the
//! previous one ([`MANIFEST_SCHEMA_V1`], which predates build
//! provenance), and rejects anything else instead of misinterpreting
//! it.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use swcc_obs::MetricsSnapshot;

use crate::registry::EXPERIMENTS;
use crate::runner::RunRecord;

/// Schema identifier written into every newly created manifest.
pub const MANIFEST_SCHEMA: &str = "swcc-run-manifest/v2";

/// The previous manifest revision (no `build` section), still accepted
/// by [`RunManifest::from_json`] so archived manifests keep validating.
pub const MANIFEST_SCHEMA_V1: &str = "swcc-run-manifest/v1";

/// Build provenance stamped into v2 manifests at compile time (see
/// `build.rs`). Every field degrades to `"unknown"` rather than
/// failing — e.g. a build from a source tarball has no git commit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildProvenance {
    /// Abbreviated git commit the binary was built from.
    pub git_commit: String,
    /// `rustc --version` of the compiling toolchain.
    pub rustc: String,
    /// `cargo --version` of the driving cargo.
    pub cargo: String,
    /// Cargo build profile (`"debug"` / `"release"`).
    pub profile: String,
}

impl BuildProvenance {
    /// The provenance baked into this binary.
    pub fn current() -> Self {
        BuildProvenance {
            git_commit: option_env!("SWCC_GIT_COMMIT")
                .unwrap_or("unknown")
                .to_string(),
            rustc: option_env!("SWCC_RUSTC").unwrap_or("unknown").to_string(),
            cargo: option_env!("SWCC_CARGO").unwrap_or("unknown").to_string(),
            profile: option_env!("SWCC_PROFILE").unwrap_or("unknown").to_string(),
        }
    }

    /// The all-`"unknown"` provenance used when upgrading v1 manifests.
    fn unknown() -> Self {
        BuildProvenance {
            git_commit: "unknown".to_string(),
            rustc: "unknown".to_string(),
            cargo: "unknown".to_string(),
            profile: "unknown".to_string(),
        }
    }
}

/// One named counter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestCounter {
    /// Metric name (`"core.solver.residual_evals"`, ...).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One named gauge value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestGauge {
    /// Metric name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// One named histogram, reduced to count/sum/mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestHistogram {
    /// Metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all finite observations.
    pub sum: f64,
    /// `sum / count`, or `0.0` when empty.
    pub mean: f64,
}

/// A metrics snapshot in manifest form.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Counters, sorted by name.
    pub counters: Vec<ManifestCounter>,
    /// Gauges, sorted by name.
    pub gauges: Vec<ManifestGauge>,
    /// Histograms, sorted by name.
    pub histograms: Vec<ManifestHistogram>,
}

impl MetricsReport {
    /// Converts an in-memory snapshot to manifest form.
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> Self {
        MetricsReport {
            counters: snapshot
                .counters
                .iter()
                .map(|c| ManifestCounter {
                    name: c.name.clone(),
                    value: c.value,
                })
                .collect(),
            gauges: snapshot
                .gauges
                .iter()
                .map(|g| ManifestGauge {
                    name: g.name.clone(),
                    value: g.value,
                })
                .collect(),
            histograms: snapshot
                .histograms
                .iter()
                .map(|h| ManifestHistogram {
                    name: h.name.clone(),
                    count: h.count,
                    sum: h.sum,
                    mean: h.mean(),
                })
                .collect(),
        }
    }

    /// The value of a named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }
}

/// The options one manifest run used.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestOptions {
    /// Whether the reduced-work (`--quick`) profile was used.
    pub quick: bool,
    /// Worker threads the runner was given.
    pub jobs: usize,
}

/// One experiment's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRun {
    /// Stable experiment id.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Wall-clock run time in milliseconds.
    pub duration_ms: f64,
    /// Queue wait (batch start to claim) in milliseconds.
    pub queue_wait_ms: f64,
    /// Zero-based worker thread index that ran it.
    pub worker: usize,
    /// Solver/sweep counters attributed to this experiment.
    pub counters: Vec<ManifestCounter>,
}

/// Batch-level totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTotals {
    /// Experiments in the run.
    pub experiments: usize,
    /// Whole-batch wall-clock time in milliseconds.
    pub wall_ms: f64,
}

/// A complete, schema-versioned record of one `repro` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// [`MANIFEST_SCHEMA`] on new manifests; [`MANIFEST_SCHEMA_V1`] is
    /// preserved when loading an old file.
    pub schema: String,
    /// Build provenance of the binary that wrote the manifest
    /// (all-`"unknown"` for upgraded v1 manifests).
    pub build: BuildProvenance,
    /// The options the run used.
    pub options: ManifestOptions,
    /// Per-experiment entries, in run order.
    pub experiments: Vec<ExperimentRun>,
    /// Batch totals.
    pub totals: RunTotals,
    /// Process-wide metric totals (from the installed registry).
    pub metrics: MetricsReport,
}

impl RunManifest {
    /// Builds a manifest from runner records and the process-wide
    /// metrics snapshot.
    pub fn new(
        options: ManifestOptions,
        records: &[RunRecord],
        wall_ms: f64,
        totals: &MetricsSnapshot,
    ) -> Self {
        RunManifest {
            schema: MANIFEST_SCHEMA.to_string(),
            build: BuildProvenance::current(),
            options,
            experiments: records
                .iter()
                .map(|r| ExperimentRun {
                    id: r.id.to_string(),
                    title: r.title.to_string(),
                    duration_ms: r.duration.as_secs_f64() * 1e3,
                    queue_wait_ms: r.queue_wait.as_secs_f64() * 1e3,
                    worker: r.worker,
                    counters: MetricsReport::from_snapshot(&r.metrics).counters,
                })
                .collect(),
            totals: RunTotals {
                experiments: records.len(),
                wall_ms,
            },
            metrics: MetricsReport::from_snapshot(totals),
        }
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization is infallible")
    }

    /// Parses a manifest, rejecting unknown schema revisions.
    ///
    /// A [`MANIFEST_SCHEMA_V1`] manifest is upgraded in place: its
    /// schema string is preserved and its missing `build` section is
    /// filled with `"unknown"` provenance.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if the JSON is malformed, does
    /// not match the manifest shape, or declares a schema other than
    /// [`MANIFEST_SCHEMA`] or [`MANIFEST_SCHEMA_V1`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        let value: Value =
            serde_json::from_str(json).map_err(|e| format!("invalid manifest: {e}"))?;
        let schema = value
            .get_field("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| "manifest has no schema field".to_string())?;
        match schema {
            MANIFEST_SCHEMA => {
                serde_json::from_str(json).map_err(|e| format!("invalid manifest: {e}"))
            }
            MANIFEST_SCHEMA_V1 => {
                let v1: RunManifestV1 =
                    serde_json::from_str(json).map_err(|e| format!("invalid v1 manifest: {e}"))?;
                Ok(v1.upgrade())
            }
            other => Err(format!(
                "unsupported manifest schema {other:?} (expected {MANIFEST_SCHEMA:?} or {MANIFEST_SCHEMA_V1:?})"
            )),
        }
    }

    /// The entry for one experiment id, if present.
    pub fn experiment(&self, id: &str) -> Option<&ExperimentRun> {
        self.experiments.iter().find(|e| e.id == id)
    }

    /// Registered experiment ids this manifest does **not** cover — empty
    /// for a full `repro --all` run. CI uses this to assert that the
    /// archived manifest spans the whole registry.
    pub fn missing_experiments(&self) -> Vec<&'static str> {
        EXPERIMENTS
            .iter()
            .map(|e| e.id)
            .filter(|id| self.experiment(id).is_none())
            .collect()
    }
}

/// The v1 manifest shape — identical to [`RunManifest`] minus the
/// `build` section. The vendored serde has no `#[serde(default)]`, so
/// old files are read through this mirror and upgraded explicitly.
#[derive(Debug, Clone, Deserialize)]
struct RunManifestV1 {
    schema: String,
    options: ManifestOptions,
    experiments: Vec<ExperimentRun>,
    totals: RunTotals,
    metrics: MetricsReport,
}

impl RunManifestV1 {
    fn upgrade(self) -> RunManifest {
        RunManifest {
            schema: self.schema,
            build: BuildProvenance::unknown(),
            options: self.options,
            experiments: self.experiments,
            totals: self.totals,
            metrics: self.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::num::NonZeroUsize;

    use super::*;
    use crate::registry::{find, RunOptions};
    use crate::runner::run_selected_observed;

    fn sample_manifest() -> RunManifest {
        let batch = vec![find("table1").unwrap(), find("fig11").unwrap()];
        let records = run_selected_observed(
            &batch,
            &RunOptions::quick(),
            NonZeroUsize::new(1).unwrap(),
            true,
        );
        RunManifest::new(
            ManifestOptions {
                quick: true,
                jobs: 1,
            },
            &records,
            12.5,
            &MetricsSnapshot::default(),
        )
    }

    #[test]
    fn round_trips_through_json() {
        let manifest = sample_manifest();
        let parsed = RunManifest::from_json(&manifest.to_json()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn captures_per_experiment_solver_counters() {
        let manifest = sample_manifest();
        let fig11 = manifest.experiment("fig11").unwrap();
        let evals = fig11
            .counters
            .iter()
            .find(|c| c.name == swcc_core::metrics::SOLVER_RESIDUAL_EVALS)
            .map(|c| c.value);
        assert!(evals.unwrap_or(0) > 0, "fig11 must report solver work");
        let table1 = manifest.experiment("table1").unwrap();
        assert!(table1.counters.is_empty(), "a static table does no solves");
    }

    #[test]
    fn rejects_foreign_schema() {
        let mut manifest = sample_manifest();
        manifest.schema = "swcc-run-manifest/v0".to_string();
        let err = RunManifest::from_json(&manifest.to_json()).unwrap_err();
        assert!(err.contains("unsupported manifest schema"), "{err}");
    }

    #[test]
    fn accepts_v1_manifests_without_build_section() {
        let v1_json = r#"{
            "schema": "swcc-run-manifest/v1",
            "options": {"quick": true, "jobs": 1},
            "experiments": [],
            "totals": {"experiments": 0, "wall_ms": 1.5},
            "metrics": {"counters": [], "gauges": [], "histograms": []}
        }"#;
        let manifest = RunManifest::from_json(v1_json).unwrap();
        assert_eq!(manifest.schema, MANIFEST_SCHEMA_V1);
        assert_eq!(manifest.build.git_commit, "unknown");
        assert_eq!(manifest.build.profile, "unknown");
        assert_eq!(manifest.totals.experiments, 0);
    }

    #[test]
    fn new_manifests_carry_build_provenance() {
        let manifest = sample_manifest();
        assert_eq!(manifest.schema, MANIFEST_SCHEMA);
        for field in [
            &manifest.build.git_commit,
            &manifest.build.rustc,
            &manifest.build.cargo,
            &manifest.build.profile,
        ] {
            assert!(!field.is_empty(), "provenance fields are never empty");
        }
        // The test binary is always built by cargo, so at least the
        // profile must have resolved to a real value.
        assert_ne!(manifest.build.profile, "unknown");
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(RunManifest::from_json("{").is_err());
        assert!(RunManifest::from_json("[1, 2]").is_err());
    }

    #[test]
    fn missing_experiments_flags_partial_runs() {
        let manifest = sample_manifest();
        let missing = manifest.missing_experiments();
        assert!(missing.contains(&"fig5"), "fig5 was not in the batch");
        assert!(!missing.contains(&"fig11"));
        assert_eq!(missing.len(), crate::registry::EXPERIMENTS.len() - 2);
    }
}
