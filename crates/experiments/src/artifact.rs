//! Experiment artifacts: tables and figures, with plain-text rendering.
//!
//! Every experiment produces either a [`Table`] (rows of labeled cells)
//! or a [`Figure`] (named series of `(x, y)` points). Figures render as
//! both a data listing and an ASCII plot, so `cargo run --bin repro`
//! regenerates something visually comparable to the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::plot::ascii_plot;

/// A tabular artifact (one of the paper's tables).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Table {
    /// Title, e.g. `"Table 8: sensitivity"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One named curve in a figure.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// The y value at the largest x (often "power at max processors").
    pub fn final_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }
}

/// A figure artifact (one of the paper's figures).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Figure {
    /// Title, e.g. `"Figure 5: medium shd and ls"`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Free-form footnotes.
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a curve.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Finds a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders the figure: ASCII plot followed by the data columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&ascii_plot(&self.series, &self.x_label, &self.y_label));
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("series: {}\n", s.name));
            out.push_str(&format!("  {:>12}  {:>12}\n", self.x_label, self.y_label));
            for &(x, y) in &s.points {
                out.push_str(&format!("  {x:>12.4}  {y:>12.4}\n"));
            }
        }
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The output of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Artifact {
    /// A table.
    Table(Table),
    /// A figure.
    Figure(Figure),
}

impl Artifact {
    /// Renders either kind as plain text.
    pub fn render(&self) -> String {
        match self {
            Artifact::Table(t) => t.render(),
            Artifact::Figure(f) => f.render(),
        }
    }

    /// The artifact's title.
    pub fn title(&self) -> &str {
        match self {
            Artifact::Table(t) => &t.title,
            Artifact::Figure(f) => &f.title,
        }
    }

    /// Appends a footnote to either kind.
    pub fn push_note(&mut self, note: impl Into<String>) {
        match self {
            Artifact::Table(t) => t.notes.push(note.into()),
            Artifact::Figure(f) => f.notes.push(note.into()),
        }
    }

    /// Borrows the table, if this is one.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Artifact::Table(t) => Some(t),
            Artifact::Figure(_) => None,
        }
    }

    /// Borrows the figure, if this is one.
    pub fn as_figure(&self) -> Option<&Figure> {
        match self {
            Artifact::Figure(f) => Some(f),
            Artifact::Table(_) => None,
        }
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("T", vec!["a".into(), "bbbb".into()]);
        t.push_row(vec!["xxx".into(), "y".into()]);
        let r = t.render();
        assert!(r.contains("a    bbbb"));
        assert!(r.contains("xxx  y"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn figure_lists_series_data() {
        let mut f = Figure::new("F", "x", "y");
        f.push_series(Series::new("s1", vec![(1.0, 2.0), (2.0, 3.0)]));
        let r = f.render();
        assert!(r.contains("series: s1"));
        assert!(r.contains("2.0000"));
        assert_eq!(f.series_named("s1").unwrap().final_y(), Some(3.0));
        assert!(f.series_named("nope").is_none());
    }

    #[test]
    fn artifacts_round_trip_through_json() {
        let mut table = Table::new("T", vec!["a".into()]);
        table.push_row(vec!["1".into()]);
        let mut fig = Figure::new("F", "x", "y");
        fig.push_series(Series::new("s", vec![(1.0, 2.0)]));
        for artifact in [Artifact::Table(table), Artifact::Figure(fig)] {
            let json = serde_json::to_string(&artifact).unwrap();
            let back: Artifact = serde_json::from_str(&json).unwrap();
            assert_eq!(artifact, back);
        }
    }

    #[test]
    fn artifact_accessors() {
        let t = Artifact::Table(Table::new("T", vec![]));
        assert!(t.as_table().is_some());
        assert!(t.as_figure().is_none());
        assert_eq!(t.title(), "T");
        let f = Artifact::Figure(Figure::new("F", "x", "y"));
        assert!(f.as_figure().is_some());
        assert_eq!(f.title(), "F");
    }
}
