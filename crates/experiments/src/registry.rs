//! The experiment registry: every paper table and figure by id.
//!
//! `cargo run -p swcc-experiments --bin repro -- <id>` looks experiments
//! up here; `swcc-bench` iterates the same registry so that every
//! artifact has a benchmark.

use std::fmt;

use crate::artifact::Artifact;
use crate::validation::ValidationOptions;
use crate::{extensions, figures, tables, validation};

/// How much work simulation-backed experiments should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Options for trace generation in the validation experiments.
    pub validation: ValidationOptions,
    /// Processor count for the sensitivity table (Table 8).
    pub sensitivity_processors: u32,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            validation: ValidationOptions::default(),
            sensitivity_processors: 16,
        }
    }
}

impl RunOptions {
    /// A reduced-work profile for smoke tests and benchmarks.
    pub fn quick() -> Self {
        RunOptions {
            validation: ValidationOptions {
                instructions_per_cpu: 15_000,
                seed: ValidationOptions::default().seed,
            },
            sensitivity_processors: 16,
        }
    }
}

/// One reproducible experiment.
pub struct Experiment {
    /// Stable id (`"table8"`, `"fig11"`, ...).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Runs the experiment.
    pub run: fn(&RunOptions) -> Artifact,
}

impl fmt::Debug for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish_non_exhaustive()
    }
}

macro_rules! experiments {
    ($($id:literal, $title:literal => $body:expr;)+) => {
        &[$(Experiment { id: $id, title: $title, run: $body }),+]
    };
}

/// All experiments, in paper order.
pub static EXPERIMENTS: &[Experiment] = experiments! {
    "table1", "System model: bus operation costs" =>
        |_| Artifact::Table(tables::table1());
    "table2", "Workload model parameters" =>
        |_| Artifact::Table(tables::table2());
    "table3", "Operation frequencies: Base" =>
        |_| Artifact::Table(tables::table3());
    "table4", "Operation frequencies: No-Cache" =>
        |_| Artifact::Table(tables::table4());
    "table5", "Operation frequencies: Software-Flush" =>
        |_| Artifact::Table(tables::table5());
    "table6", "Operation frequencies: Dragon" =>
        |_| Artifact::Table(tables::table6());
    "table7", "Parameter ranges" =>
        |_| Artifact::Table(tables::table7());
    "table8", "Sensitivity analysis" =>
        |o| Artifact::Table(tables::table8(o.sensitivity_processors));
    "table9", "System model: network operation costs" =>
        |_| Artifact::Table(tables::table9(8));
    "fig1", "Model vs simulation: Base and Dragon, 64KB caches" =>
        |o| Artifact::Figure(validation::fig1(&o.validation));
    "fig2", "Cache-size impact on Dragon, <=4 processors" =>
        |o| Artifact::Figure(validation::fig2(&o.validation));
    "fig3", "Cache-size impact on Dragon, <=8 processors" =>
        |o| Artifact::Figure(validation::fig3(&o.validation));
    "fig4", "Schemes on a bus: low shd and ls" =>
        |_| Artifact::Figure(figures::fig4());
    "fig5", "Schemes on a bus: medium shd and ls" =>
        |_| Artifact::Figure(figures::fig5());
    "fig6", "Schemes on a bus: high shd and ls" =>
        |_| Artifact::Figure(figures::fig6());
    "fig7", "Effect of varying apl" =>
        |_| Artifact::Figure(figures::fig7());
    "fig8", "Effect of apl with low sharing" =>
        |_| Artifact::Figure(figures::fig8());
    "fig9", "Effect of apl with medium sharing" =>
        |_| Artifact::Figure(figures::fig9());
    "fig10", "Buses versus networks in the small scale" =>
        |_| Artifact::Figure(figures::fig10());
    "fig11", "Network utilization vs request rate, 256 processors" =>
        |_| Artifact::Figure(figures::fig11());
    "ext_packet", "Extension: packet vs circuit switching" =>
        |_| Artifact::Figure(extensions::packet_vs_circuit());
    "ext_directory", "Extension: directory hardware vs software schemes" =>
        |_| Artifact::Table(extensions::directory_vs_software());
    "ext_netsim", "Extension: Patel model vs network simulation" =>
        |o| Artifact::Figure(extensions::patel_vs_simulation(
            o.validation.instructions_per_cpu as u64 / 4,
            o.validation.seed,
        ));
    "ext_service", "Extension: bus service-time discipline vs model contention" =>
        |o| Artifact::Table(extensions::service_discipline(
            o.validation.instructions_per_cpu,
            o.validation.seed,
        ));
    "ext_invalidate", "Extension: write-update vs write-invalidate snoopy hardware" =>
        |_| Artifact::Figure(extensions::update_vs_invalidate());
    "ext_tracenet", "Extension: trace-driven network simulation vs model" =>
        |o| Artifact::Table(extensions::trace_driven_network(
            o.validation.instructions_per_cpu,
            o.validation.seed,
        ));
};

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<_> = EXPERIMENTS.iter().map(|e| e.id).collect();
        for n in 1..=9 {
            assert!(ids.contains(&format!("table{n}").as_str()), "table{n}");
        }
        for n in 1..=11 {
            assert!(ids.contains(&format!("fig{n}").as_str()), "fig{n}");
        }
        for ext in [
            "ext_packet",
            "ext_directory",
            "ext_netsim",
            "ext_service",
            "ext_invalidate",
            "ext_tracenet",
        ] {
            assert!(ids.contains(&ext), "{ext}");
        }
        assert_eq!(ids.len(), 26);
    }

    #[test]
    fn find_locates_experiments() {
        assert!(find("fig11").is_some());
        assert!(find("table8").is_some());
        assert!(find("fig99").is_none());
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<_> = EXPERIMENTS.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXPERIMENTS.len());
    }

    #[test]
    fn model_only_experiments_run_quickly() {
        let opts = RunOptions::quick();
        for e in EXPERIMENTS {
            if e.id.starts_with("table") || matches!(e.id, "fig4" | "fig5" | "fig6") {
                let artifact = (e.run)(&opts);
                assert!(!artifact.render().is_empty(), "{}", e.id);
            }
        }
    }
}
