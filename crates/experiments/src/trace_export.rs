//! Exporting `repro --trace` JSONL files to external profiler formats:
//! the `trace-export` subcommand.
//!
//! Two targets:
//!
//! * **Chrome trace-event JSON** ([`export_chrome`]) — loads in
//!   Perfetto / `chrome://tracing`. Each closed span becomes a
//!   complete (`"ph":"X"`) event on its worker's track (thread ordinal
//!   → `tid`), point events become instants, and thread-name metadata
//!   labels the tracks.
//! * **Folded stacks** ([`export_folded`]) — `root;child;leaf N` lines
//!   with *self*-time attribution (span duration minus closed
//!   children), the input format of `flamegraph.pl`, `inferno`, and
//!   speedscope. This is what makes "Patel solver vs MVA vs simulator"
//!   hot paths directly visible.
//!
//! The trace wire format carries no absolute timestamps — only a
//! global sequence number and a duration on each span end — so the
//! Chrome exporter *synthesizes* a timeline: events are laid out in
//! `seq` order, each thread keeps a monotonic lane cursor, and a span
//! starts at the later of its lane cursor and its parent's start. The
//! result preserves relative ordering, nesting, and measured
//! durations; the absolute scale is a reconstruction, not wall-clock
//! truth (concurrent spans are laid out from their own lane cursors,
//! so cross-thread overlap is approximate).
//!
//! Ingestion is lenient (see [`swcc_obs::tree::parse_trace`]):
//! truncated or corrupt lines are skipped and counted, never fatal.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use swcc_obs::tree::{parse_trace, ParsedEvent, ParsedTrace, Scalar, SpanTree};
use swcc_obs::EventKind;

/// Output format for [`export`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// Chrome trace-event JSON (Perfetto / `chrome://tracing`).
    Chrome,
    /// Folded flamegraph stacks with self-time attribution.
    Folded,
}

impl ExportFormat {
    /// Parses a `--format` value.
    pub fn from_name(name: &str) -> Option<ExportFormat> {
        match name {
            "chrome" => Some(ExportFormat::Chrome),
            "folded" => Some(ExportFormat::Folded),
            _ => None,
        }
    }
}

/// The result of one export: the rendered output plus ingestion
/// diagnostics the CLI surfaces as warnings.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    /// The rendered Chrome JSON or folded-stack text.
    pub output: String,
    /// Corrupt/truncated JSONL lines skipped during parsing.
    pub skipped_lines: usize,
    /// Events parsed cleanly.
    pub events: usize,
    /// Spans that never saw their end record (excluded from output).
    pub unclosed_spans: usize,
}

/// Parses a JSONL trace (leniently) and renders it in `format`.
pub fn export(jsonl: &str, format: ExportFormat) -> Export {
    let trace = parse_trace(jsonl);
    let tree = SpanTree::build(&trace.events);
    let output = match format {
        ExportFormat::Chrome => export_chrome(&trace),
        ExportFormat::Folded => export_folded(&tree),
    };
    Export {
        output,
        skipped_lines: trace.skipped,
        events: trace.events.len(),
        unclosed_spans: tree.unclosed(),
    }
}

// --- chrome trace-event export ------------------------------------------

/// Appends a JSON-escaped copy of `s` to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_scalar(out: &mut String, value: &Scalar) {
    match value {
        Scalar::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Scalar::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Scalar::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        Scalar::F64(_) | Scalar::Null => out.push_str("null"),
        Scalar::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Scalar::Str(v) => push_json_str(out, v),
    }
}

fn push_args(out: &mut String, fields: &[(String, Scalar)]) {
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, key);
        out.push(':');
        push_scalar(out, value);
    }
    out.push('}');
}

/// Microseconds (Chrome's unit) from synthesized nanoseconds.
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// The event category Perfetto filters on: the name's first dotted
/// segment (`patel.solve` → `patel`).
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Renders a parsed trace as Chrome trace-event JSON.
///
/// Timestamps are synthesized (see the module docs): per-thread lane
/// cursors advance in global `seq` order, so `ts` is monotonically
/// non-decreasing within each `tid` and every complete event's
/// `[ts, ts + dur]` window nests inside its same-thread parent.
/// Unclosed spans are omitted.
pub fn export_chrome(trace: &ParsedTrace) -> String {
    let mut order: Vec<&ParsedEvent> = trace.events.iter().collect();
    order.sort_by_key(|e| e.seq);

    // thread ordinal → lane cursor (synthesized ns).
    let mut lane_now: BTreeMap<u64, u64> = BTreeMap::new();
    // open span id → (synthesized start ns, start fields).
    let mut open: BTreeMap<u64, (u64, Vec<(String, Scalar)>)> = BTreeMap::new();
    let mut threads: BTreeSet<u64> = BTreeSet::new();
    let mut records: Vec<String> = Vec::new();

    for event in order {
        threads.insert(event.thread);
        let now = lane_now.get(&event.thread).copied().unwrap_or(0);
        match event.kind {
            EventKind::SpanStart => {
                let parent_start = open.get(&event.parent).map(|(ts, _)| *ts).unwrap_or(0);
                let start = now.max(parent_start);
                lane_now.insert(event.thread, start);
                open.insert(event.span, (start, event.fields.clone()));
            }
            EventKind::SpanEnd => {
                let (start, mut args) = open
                    .remove(&event.span)
                    .unwrap_or_else(|| (now, Vec::new()));
                let dur = event.dur_ns.unwrap_or(0);
                lane_now.insert(event.thread, now.max(start.saturating_add(dur)));
                args.push(("span_id".to_string(), Scalar::U64(event.span)));
                let mut rec = String::with_capacity(128);
                rec.push_str("{\"name\":");
                push_json_str(&mut rec, &event.name);
                rec.push_str(",\"cat\":");
                push_json_str(&mut rec, category(&event.name));
                let _ = write!(
                    rec,
                    ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":",
                    us(start),
                    us(dur),
                    event.thread
                );
                push_args(&mut rec, &args);
                rec.push('}');
                records.push(rec);
            }
            EventKind::Point => {
                let mut rec = String::with_capacity(128);
                rec.push_str("{\"name\":");
                push_json_str(&mut rec, &event.name);
                rec.push_str(",\"cat\":");
                push_json_str(&mut rec, category(&event.name));
                let _ = write!(
                    rec,
                    ",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":",
                    us(now),
                    event.thread
                );
                push_args(&mut rec, &event.fields);
                rec.push('}');
                records.push(rec);
            }
        }
    }

    let mut out = String::with_capacity(64 + records.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for thread in &threads {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{thread},\
             \"args\":{{\"name\":\"{}\"}}}}",
            if *thread == 1 {
                "main".to_string()
            } else {
                format!("worker-{}", thread - 1)
            }
        );
    }
    for rec in records {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&rec);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

// --- folded flamegraph export -------------------------------------------

/// A frame name safe for the folded format: `;` separates frames and
/// whitespace separates the count, so both are replaced.
fn fold_frame(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            ';' => ':',
            c if c.is_whitespace() => '_',
            c => c,
        })
        .collect()
}

/// Renders a span tree as folded flamegraph stacks.
///
/// One line per distinct root-to-span path, `a;b;c <self_ns>`, where
/// the count is the path's aggregate *self* time in nanoseconds
/// (duration minus closed children). Unclosed spans and zero-self
/// paths are omitted. For a sequential trace the line counts sum to
/// the root spans' total time exactly (self-time is a partition of
/// each closed span); for a parallel trace they sum to aggregate CPU
/// time across workers, which exceeds wall-clock.
pub fn export_folded(tree: &SpanTree) -> String {
    let mut paths: BTreeMap<String, u64> = BTreeMap::new();
    for (idx, node) in tree.nodes().iter().enumerate() {
        if !node.closed {
            continue;
        }
        let self_ns = tree.self_ns(idx);
        if self_ns == 0 {
            continue;
        }
        // Walk ancestors by span id to build the root-first path.
        let mut frames = vec![fold_frame(&node.name)];
        let mut parent = node.parent;
        while parent != 0 {
            match tree.node_for_span(parent) {
                Some(p) => {
                    frames.push(fold_frame(&tree.nodes()[p].name));
                    parent = tree.nodes()[p].parent;
                }
                None => break,
            }
        }
        frames.reverse();
        let path = frames.join(";");
        *paths.entry(path).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (path, self_ns) in paths {
        let _ = writeln!(out, "{path} {self_ns}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn sample_trace() -> String {
        [
            r#"{"ev":"start","name":"runner.batch","span":1,"parent":0,"seq":0,"thread":1,"fields":{"experiments":2}}"#,
            r#"{"ev":"start","name":"runner.experiment","span":2,"parent":1,"seq":1,"thread":2,"fields":{"id":"fig1","worker":0}}"#,
            r#"{"ev":"start","name":"patel.solve","span":3,"parent":2,"seq":2,"thread":2,"fields":{"rate":0.03}}"#,
            r#"{"ev":"point","name":"patel.result","span":3,"parent":3,"seq":3,"thread":2,"fields":{"iterations":5,"converged":true}}"#,
            r#"{"ev":"end","name":"patel.solve","span":3,"parent":2,"seq":4,"thread":2,"dur_ns":4000}"#,
            r#"{"ev":"end","name":"runner.experiment","span":2,"parent":1,"seq":5,"thread":2,"dur_ns":9000}"#,
            r#"{"ev":"end","name":"runner.batch","span":1,"parent":0,"seq":6,"thread":1,"dur_ns":20000}"#,
        ]
        .join("\n")
    }

    fn trace_events(chrome: &str) -> Vec<Value> {
        let value: Value = serde_json::from_str(chrome).expect("chrome output is valid JSON");
        value
            .get_field("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array")
            .clone()
    }

    #[test]
    fn chrome_output_is_valid_and_shaped() {
        let export = export(&sample_trace(), ExportFormat::Chrome);
        assert_eq!(export.skipped_lines, 0);
        assert_eq!(export.unclosed_spans, 0);
        let events = trace_events(&export.output);

        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get_field("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 3, "three closed spans");
        for e in &complete {
            assert!(e.get_field("name").and_then(Value::as_str).is_some());
            assert!(e.get_field("ts").and_then(Value::as_f64).unwrap() >= 0.0);
            assert!(e.get_field("dur").and_then(Value::as_f64).unwrap() >= 0.0);
            assert!(e.get_field("tid").and_then(Value::as_u64).is_some());
        }

        let instants: Vec<&Value> = events
            .iter()
            .filter(|e| e.get_field("ph").and_then(Value::as_str) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 1);

        let meta: Vec<&Value> = events
            .iter()
            .filter(|e| e.get_field("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2, "one thread_name record per thread");
    }

    #[test]
    fn chrome_timestamps_nest_within_same_thread_parents() {
        let export = export(&sample_trace(), ExportFormat::Chrome);
        let events = trace_events(&export.output);
        let span = |name: &str| -> (f64, f64) {
            let e = events
                .iter()
                .find(|e| {
                    e.get_field("ph").and_then(Value::as_str) == Some("X")
                        && e.get_field("name").and_then(Value::as_str) == Some(name)
                })
                .unwrap_or_else(|| panic!("span {name}"));
            (
                e.get_field("ts").and_then(Value::as_f64).unwrap(),
                e.get_field("dur").and_then(Value::as_f64).unwrap(),
            )
        };
        let (exp_ts, exp_dur) = span("runner.experiment");
        let (solve_ts, solve_dur) = span("patel.solve");
        assert!(solve_ts >= exp_ts, "child starts after parent");
        assert!(
            solve_ts + solve_dur <= exp_ts + exp_dur,
            "child ends within parent"
        );
    }

    #[test]
    fn folded_self_times_partition_root_total() {
        let export = export(&sample_trace(), ExportFormat::Folded);
        let mut total = 0u64;
        for line in export.output.lines() {
            let (path, count) = line.rsplit_once(' ').expect("`path count` shape");
            assert!(!path.is_empty());
            total += count.parse::<u64>().expect("count is an integer");
        }
        // Root span is 20000 ns; self-times partition it exactly:
        // batch 11000 + experiment 5000 + solve 4000.
        assert_eq!(total, 20000);
        assert!(export
            .output
            .contains("runner.batch;runner.experiment;patel.solve 4000"));
    }

    #[test]
    fn lenient_ingestion_counts_corrupt_lines() {
        let jsonl = format!("{}\ngarbage line\n", sample_trace());
        let export = export(&jsonl, ExportFormat::Chrome);
        assert_eq!(export.skipped_lines, 1);
        assert_eq!(export.events, 7);
        // Output is still valid JSON.
        let _ = trace_events(&export.output);
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let chrome = export("", ExportFormat::Chrome);
        assert_eq!(chrome.events, 0);
        let events = trace_events(&chrome.output);
        assert!(events.is_empty());
        let folded = export("", ExportFormat::Folded);
        assert!(folded.output.is_empty());
    }

    #[test]
    fn unclosed_spans_are_excluded_and_counted() {
        let jsonl = r#"{"ev":"start","name":"hang","span":1,"parent":0,"seq":0,"thread":1}"#;
        let export = export(jsonl, ExportFormat::Chrome);
        assert_eq!(export.unclosed_spans, 1);
        assert!(trace_events(&export.output)
            .iter()
            .all(|e| e.get_field("ph").and_then(Value::as_str) != Some("X")));
    }

    #[test]
    fn fold_frames_escape_separators() {
        assert_eq!(fold_frame("a;b c"), "a:b_c");
    }

    #[test]
    fn format_names_parse() {
        assert_eq!(
            ExportFormat::from_name("chrome"),
            Some(ExportFormat::Chrome)
        );
        assert_eq!(
            ExportFormat::from_name("folded"),
            Some(ExportFormat::Folded)
        );
        assert_eq!(ExportFormat::from_name("svg"), None);
    }
}
