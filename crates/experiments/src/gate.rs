//! The model-accuracy regression gate: `repro accuracy`.
//!
//! The paper's validation figures (Figs 1–3) bound how far the analytic
//! model may drift from the trace-driven simulation. This module turns
//! that envelope into a CI gate: a checked-in baseline file declares an
//! explicit tolerance per figure, the gate re-runs the figure and
//! compares [`crate::validation::max_relative_error`] against it, and
//! any breach fails the run. A baseline is data, not code — tightening
//! the envelope is a one-line diff reviewers can see.

use serde::{Deserialize, Serialize};

use crate::validation::{self, ValidationOptions};

/// Schema identifier required of every accuracy baseline file.
pub const ACCURACY_SCHEMA: &str = "swcc-accuracy-baseline/v1";

/// The tolerance for one validation figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureTolerance {
    /// Figure id (`"fig1"`, `"fig2"`, `"fig3"`).
    pub id: String,
    /// Largest allowed model-vs-simulation relative error.
    pub max_rel_error: f64,
}

/// A checked-in set of accuracy tolerances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyBaseline {
    /// Always [`ACCURACY_SCHEMA`]; checked on load.
    pub schema: String,
    /// Per-figure tolerances the gate enforces.
    pub figures: Vec<FigureTolerance>,
}

impl AccuracyBaseline {
    /// Parses a baseline file, rejecting unknown schema revisions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a foreign
    /// schema string, an empty figure list, or a non-positive tolerance.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let baseline: AccuracyBaseline =
            serde_json::from_str(json).map_err(|e| format!("invalid accuracy baseline: {e}"))?;
        if baseline.schema != ACCURACY_SCHEMA {
            return Err(format!(
                "unsupported accuracy baseline schema {:?} (expected {ACCURACY_SCHEMA:?})",
                baseline.schema
            ));
        }
        if baseline.figures.is_empty() {
            return Err("accuracy baseline lists no figures".to_string());
        }
        for f in &baseline.figures {
            if !f.max_rel_error.is_finite() || f.max_rel_error <= 0.0 {
                return Err(format!(
                    "figure {:?}: max_rel_error must be finite and positive",
                    f.id
                ));
            }
        }
        Ok(baseline)
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline serialization is infallible")
    }
}

/// The gate's verdict for one figure.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Figure id.
    pub id: String,
    /// Measured worst relative error from the fresh run.
    pub measured: f64,
    /// The baseline's tolerance.
    pub limit: f64,
}

impl GateRow {
    /// `true` when the measured error is inside the tolerance.
    pub fn passed(&self) -> bool {
        self.measured <= self.limit
    }
}

/// The outcome of one full gate run.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// One row per baseline figure, in baseline order.
    pub rows: Vec<GateRow>,
}

impl GateOutcome {
    /// `true` when every figure stayed inside its tolerance.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(GateRow::passed)
    }

    /// Renders the verdict table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("accuracy gate (model vs simulation)\n");
        let _ = writeln!(
            out,
            "  {:<6} {:>12} {:>12}  verdict",
            "figure", "measured", "limit"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "  {:<6} {:>11.2}% {:>11.2}%  {}",
                row.id,
                row.measured * 100.0,
                row.limit * 100.0,
                if row.passed() { "ok" } else { "FAIL" }
            );
        }
        out.push_str(if self.passed() {
            "accuracy gate: passed\n"
        } else {
            "accuracy gate: FAILED\n"
        });
        out
    }
}

/// Runs every figure named in the baseline and compares its fresh
/// model-vs-simulation error against the declared tolerance.
///
/// # Errors
///
/// Returns a message if the baseline names a figure the gate does not
/// know how to run.
pub fn run_gate(
    baseline: &AccuracyBaseline,
    opts: &ValidationOptions,
) -> Result<GateOutcome, String> {
    let mut rows = Vec::with_capacity(baseline.figures.len());
    for figure in &baseline.figures {
        let artifact = match figure.id.as_str() {
            "fig1" => validation::fig1(opts),
            "fig2" => validation::fig2(opts),
            "fig3" => validation::fig3(opts),
            other => return Err(format!("accuracy baseline names unknown figure {other:?}")),
        };
        rows.push(GateRow {
            id: figure.id.clone(),
            measured: validation::max_relative_error(&artifact),
            limit: figure.max_rel_error,
        });
    }
    Ok(GateOutcome { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ValidationOptions {
        ValidationOptions {
            instructions_per_cpu: 20_000,
            seed: 0xA7,
        }
    }

    fn baseline(figures: &[(&str, f64)]) -> AccuracyBaseline {
        AccuracyBaseline {
            schema: ACCURACY_SCHEMA.to_string(),
            figures: figures
                .iter()
                .map(|(id, tol)| FigureTolerance {
                    id: (*id).to_string(),
                    max_rel_error: *tol,
                })
                .collect(),
        }
    }

    #[test]
    fn baseline_round_trips_and_validates() {
        let b = baseline(&[("fig1", 0.3)]);
        let parsed = AccuracyBaseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert!(AccuracyBaseline::from_json("{").is_err());
        let mut foreign = b.clone();
        foreign.schema = "swcc-accuracy-baseline/v0".to_string();
        assert!(AccuracyBaseline::from_json(&foreign.to_json())
            .unwrap_err()
            .contains("unsupported"));
        let mut bad = b.clone();
        bad.figures[0].max_rel_error = 0.0;
        assert!(AccuracyBaseline::from_json(&bad.to_json()).is_err());
        let mut empty = b;
        empty.figures.clear();
        assert!(AccuracyBaseline::from_json(&empty.to_json()).is_err());
    }

    #[test]
    fn gate_passes_inside_the_envelope() {
        // The validation tests assert fig1's quick-run error < 0.25, so
        // a 30% tolerance must pass.
        let outcome = run_gate(&baseline(&[("fig1", 0.30)]), &quick()).unwrap();
        assert!(outcome.passed(), "{}", outcome.render());
        assert!(outcome.render().contains("ok"));
    }

    #[test]
    fn gate_fails_on_injected_drift() {
        // A synthetic impossible tolerance simulates an accuracy
        // regression: the fresh error cannot be under 0.01%.
        let outcome = run_gate(&baseline(&[("fig1", 0.0001)]), &quick()).unwrap();
        assert!(!outcome.passed());
        assert!(outcome.render().contains("FAIL"));
    }

    #[test]
    fn gate_rejects_unknown_figures() {
        let err = run_gate(&baseline(&[("fig99", 0.5)]), &quick()).unwrap_err();
        assert!(err.contains("fig99"), "{err}");
    }
}
