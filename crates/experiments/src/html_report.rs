//! The single-file HTML run dashboard behind `repro report --html`.
//!
//! Combines, in one dependency-free page (inline SVG, inline CSS, no
//! scripts, no external requests):
//!
//! * **Phase timings** — a horizontal self-time bar chart per span
//!   name from a `--trace` file, with its table twin.
//! * **Iterations to tolerance** — the Patel solver's convergence
//!   distribution as a bar chart plus p50/p90/p99 summary.
//! * **Model-vs-sim accuracy** — the per-curve envelope table.
//! * **Model-vs-sim divergence** — every traced validation point,
//!   worst relative error first, with sim and model power side by
//!   side.
//! * **Coherence event mix** — per-protocol invalidation / update /
//!   write-back / fill rates summed from the simulator's `sim.events`
//!   summaries.
//! * **History sparklines** — warm-start speedup, solver work,
//!   accuracy, wall-clock, and simulator-throughput trends over the
//!   `history/runs.jsonl` log.
//!
//! Chart styling follows the repo's data-viz conventions: one blue
//! series hue (charts here never show two series), light/dark themes
//! via CSS custom properties and `prefers-color-scheme`, text always
//! in ink tokens (never the series color), hairline gridlines, thin
//! bars with a rounded data end, and a table twin for every chart.
//! Reserved status colors (with icon + label, never color alone) mark
//! the solver-divergence verdict.

use std::fmt::Write as _;

use crate::history::HistoryRecord;
use crate::manifest::BuildProvenance;
use crate::trace_report::TraceReport;

/// Chart geometry: bar thickness (≤ 24px per the mark spec).
const BAR_THICKNESS: f64 = 16.0;
/// Vertical rhythm per bar row.
const BAR_ROW: f64 = 24.0;
/// Radius of the rounded data end on bars.
const BAR_RADIUS: f64 = 4.0;
/// Left edge of the bar plot area (label gutter).
const BAR_PLOT_X: f64 = 190.0;
/// Width of the bar plot area.
const BAR_PLOT_W: f64 = 420.0;
/// Total bar-chart width.
const BAR_SVG_W: f64 = 680.0;

/// Escapes text for HTML element content and attribute values.
fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Human-readable milliseconds from nanoseconds.
fn fmt_ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// A value formatted for direct labels: trims to a sensible precision.
fn fmt_value(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// One horizontal bar with the data-end corners rounded (the baseline
/// end stays square so bars read as anchored).
fn bar_path(x: f64, y: f64, w: f64, h: f64) -> String {
    let r = BAR_RADIUS.min(w / 2.0).min(h / 2.0);
    format!(
        "M{x:.1},{y:.1} h{:.1} a{r:.1},{r:.1} 0 0 1 {r:.1},{r:.1} v{:.1} \
         a{r:.1},{r:.1} 0 0 1 -{r:.1},{r:.1} h-{:.1} z",
        (w - r).max(0.0),
        (h - 2.0 * r).max(0.0),
        (w - r).max(0.0),
    )
}

/// A horizontal bar chart of `(label, value)` rows with direct value
/// labels and native `<title>` hover tooltips. `unit` suffixes the
/// tooltip values.
fn bar_chart(rows: &[(String, f64)], unit: &str) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let height = rows.len() as f64 * BAR_ROW + 8.0;
    let mut svg = format!(
        "<svg viewBox=\"0 0 {BAR_SVG_W:.0} {height:.0}\" width=\"{BAR_SVG_W:.0}\" \
         height=\"{height:.0}\" role=\"img\">"
    );
    // Baseline of the plot area.
    let _ = write!(
        svg,
        "<line x1=\"{BAR_PLOT_X:.1}\" y1=\"0\" x2=\"{BAR_PLOT_X:.1}\" y2=\"{height:.0}\" \
         stroke=\"var(--baseline)\" stroke-width=\"1\"/>"
    );
    for (i, (label, value)) in rows.iter().enumerate() {
        let y = i as f64 * BAR_ROW + 4.0;
        let w = if max > 0.0 {
            (value / max) * (BAR_PLOT_W - 60.0)
        } else {
            0.0
        };
        let mid = y + BAR_THICKNESS / 2.0;
        let _ = write!(
            svg,
            "<text x=\"{:.1}\" y=\"{mid:.1}\" text-anchor=\"end\" dominant-baseline=\"central\" \
             class=\"label\">{}</text>",
            BAR_PLOT_X - 8.0,
            esc(label)
        );
        let _ = write!(
            svg,
            "<path d=\"{}\" fill=\"var(--series-1)\"><title>{}: {} {unit}</title></path>",
            bar_path(BAR_PLOT_X, y, w.max(1.0), BAR_THICKNESS),
            esc(label),
            fmt_value(*value)
        );
        let _ = write!(
            svg,
            "<text x=\"{:.1}\" y=\"{mid:.1}\" dominant-baseline=\"central\" \
             class=\"value\">{}</text>",
            BAR_PLOT_X + w.max(1.0) + 6.0,
            fmt_value(*value)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// A sparkline (2px line, end marker with a surface ring, hairline
/// midline) over an ordered series.
fn sparkline(values: &[f64], width: f64, height: f64) -> String {
    let mut svg = format!(
        "<svg viewBox=\"0 0 {width:.0} {height:.0}\" width=\"{width:.0}\" \
         height=\"{height:.0}\" role=\"img\">"
    );
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 2 {
        let _ = write!(
            svg,
            "<text x=\"4\" y=\"{:.1}\" class=\"label\">not enough runs</text></svg>",
            height / 2.0
        );
        return svg;
    }
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = if (hi - lo).abs() < 1e-12 {
        1.0
    } else {
        hi - lo
    };
    let pad = 6.0;
    let x = |i: usize| pad + i as f64 / (finite.len() - 1) as f64 * (width - 2.0 * pad);
    let y = |v: f64| height - pad - (v - lo) / span * (height - 2.0 * pad);
    // Hairline gridline at the vertical midpoint.
    let _ = write!(
        svg,
        "<line x1=\"{pad:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" \
         stroke=\"var(--grid)\" stroke-width=\"1\"/>",
        height / 2.0,
        width - pad,
        height / 2.0
    );
    let mut path = String::new();
    for (i, &v) in finite.iter().enumerate() {
        let _ = write!(
            path,
            "{}{:.1},{:.1}",
            if i == 0 { "M" } else { " L" },
            x(i),
            y(v)
        );
    }
    let _ = write!(
        svg,
        "<path d=\"{path}\" fill=\"none\" stroke=\"var(--series-1)\" stroke-width=\"2\" \
         stroke-linejoin=\"round\" stroke-linecap=\"round\"/>"
    );
    // End marker: ≥8px across, ringed in surface so it reads over the line.
    let last = finite.len() - 1;
    let _ = write!(
        svg,
        "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"var(--series-1)\" \
         stroke=\"var(--surface-1)\" stroke-width=\"2\"><title>latest: {}</title></circle>",
        x(last),
        y(finite[last]),
        fmt_value(finite[last])
    );
    svg.push_str("</svg>");
    svg
}

fn stat_tile(out: &mut String, label: &str, value: &str) {
    let _ = write!(
        out,
        "<div class=\"tile\"><div class=\"tile-value\">{}</div>\
         <div class=\"tile-label\">{}</div></div>",
        esc(value),
        esc(label)
    );
}

fn section_phase_timings(out: &mut String, report: &TraceReport) {
    out.push_str("<section class=\"card\"><h2>Phase timings</h2>");
    if report.phases.is_empty() {
        out.push_str("<p class=\"note\">No spans in the trace.</p></section>");
        return;
    }
    out.push_str(
        "<p class=\"note\">Self time per span name (time in the span minus its children) — \
         where the run actually went.</p>",
    );
    let mut rows: Vec<(String, f64)> = report
        .phases
        .iter()
        .map(|(name, t)| (name.clone(), t.self_ns as f64 / 1e6))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    rows.truncate(10);
    out.push_str(&bar_chart(&rows, "ms self"));
    // Table twin.
    out.push_str(
        "<details><summary>Table view</summary><table>\
         <thead><tr><th>span</th><th>count</th><th>total ms</th>\
         <th>self ms</th><th>mean ms</th></tr></thead><tbody>",
    );
    for (name, t) in &report.phases {
        let mean = if t.count > 0 {
            t.total_ns as f64 / 1e6 / t.count as f64
        } else {
            0.0
        };
        let _ = write!(
            out,
            "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{mean:.4}</td></tr>",
            esc(name),
            t.count,
            fmt_ms(t.total_ns),
            fmt_ms(t.self_ns)
        );
    }
    out.push_str("</tbody></table></details></section>");
}

fn section_iterations(out: &mut String, report: &TraceReport) {
    let c = &report.convergence;
    out.push_str("<section class=\"card\"><h2>Solver iterations to tolerance</h2>");
    if c.iterations.is_empty() {
        out.push_str("<p class=\"note\">No solver results in the trace.</p></section>");
        return;
    }
    // Distribution: solves per iteration count.
    let mut buckets: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &i in &c.iterations {
        *buckets.entry(i).or_insert(0) += 1;
    }
    let rows: Vec<(String, f64)> = buckets
        .iter()
        .map(|(iters, count)| (format!("{iters} iter"), *count as f64))
        .collect();
    let _ = write!(
        out,
        "<p class=\"note\">{} guarded-Newton solves ({} warm-started, {} legacy bisections, \
         {} bracket fallbacks).</p>",
        c.solves, c.warm, c.legacy, c.fallbacks
    );
    out.push_str(&bar_chart(&rows, "solves"));
    let _ = write!(
        out,
        "<details><summary>Table view</summary><table>\
         <thead><tr><th>min</th><th>p50</th><th>p90</th><th>p99</th><th>max</th></tr></thead>\
         <tbody><tr><td class=\"num\">{}</td><td class=\"num\">{}</td>\
         <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>\
         </tbody></table></details></section>",
        c.min_iterations(),
        c.median_iterations(),
        c.p90_iterations(),
        c.p99_iterations(),
        c.max_iterations()
    );
}

fn section_accuracy(out: &mut String, report: &TraceReport) {
    out.push_str("<section class=\"card\"><h2>Model vs simulation accuracy</h2>");
    if report.accuracy.is_empty() {
        out.push_str("<p class=\"note\">No validation points in the trace.</p></section>");
        return;
    }
    out.push_str(
        "<p class=\"note\">Worst relative gap between the analytic model and the \
         trace-driven simulation, per validation curve.</p>\
         <table><thead><tr><th>preset</th><th>protocol</th><th>cache KiB</th>\
         <th>points</th><th>max rel error</th></tr></thead><tbody>",
    );
    for r in &report.accuracy {
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{:.1}%</td></tr>",
            esc(&r.preset),
            esc(&r.protocol),
            r.cache_bytes / 1024,
            r.points,
            r.max_rel_error * 100.0
        );
    }
    out.push_str("</tbody></table></section>");
}

fn section_divergence(out: &mut String, report: &TraceReport) {
    out.push_str("<section class=\"card\"><h2>Model vs simulation divergence</h2>");
    if report.divergence.is_empty() {
        out.push_str("<p class=\"note\">No validation points in the trace.</p></section>");
        return;
    }
    out.push_str(
        "<p class=\"note\">Per-point relative error, worst first — where on each curve \
         the analytic model drifts from the trace-driven simulation.</p>",
    );
    let label = |p: &crate::trace_report::DivergencePoint| {
        format!(
            "{} {} {}K n={}",
            p.preset,
            p.protocol,
            p.cache_bytes / 1024,
            p.n
        )
    };
    let mut worst: Vec<&crate::trace_report::DivergencePoint> = report.divergence.iter().collect();
    worst.sort_by(|a, b| b.rel_error.total_cmp(&a.rel_error));
    let rows: Vec<(String, f64)> = worst
        .iter()
        .take(10)
        .map(|p| (label(p), p.rel_error * 100.0))
        .collect();
    out.push_str(&bar_chart(&rows, "% rel error"));
    // Table twin: every point, in curve order.
    out.push_str(
        "<details><summary>Table view</summary><table>\
         <thead><tr><th>preset</th><th>protocol</th><th>cache KiB</th><th>n</th>\
         <th>sim power</th><th>model power</th><th>rel error</th></tr></thead><tbody>",
    );
    for p in &report.divergence {
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{:.3}</td><td class=\"num\">{:.3}</td>\
             <td class=\"num\">{:.1}%</td></tr>",
            esc(&p.preset),
            esc(&p.protocol),
            p.cache_bytes / 1024,
            p.n,
            p.sim_power,
            p.model_power,
            p.rel_error * 100.0
        );
    }
    out.push_str("</tbody></table></details></section>");
}

fn section_event_mix(out: &mut String, report: &TraceReport) {
    out.push_str("<section class=\"card\"><h2>Coherence event mix</h2>");
    if report.event_mix.is_empty() {
        out.push_str(
            "<p class=\"note\">No simulator event summaries in the trace — rerun with \
             tracing through a simulation-backed experiment.</p></section>",
        );
        return;
    }
    out.push_str(
        "<p class=\"note\">Coherence events per 1000 replayed accesses, summed over every \
         traced simulator run — the protocols' bus behavior side by side.</p>",
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    for r in &report.event_mix {
        let per_k = |v: u64| {
            if r.accesses > 0 {
                v as f64 * 1000.0 / r.accesses as f64
            } else {
                0.0
            }
        };
        for (event, value) in [
            ("invalidations", r.invalidations),
            ("updates", r.updates),
            ("broadcasts", r.broadcasts),
            ("write-backs", r.write_backs),
            ("fills", r.fills),
            ("bus transactions", r.bus_transactions),
            ("flushes", r.flushes),
        ] {
            if value > 0 {
                rows.push((format!("{} {event}", r.protocol), per_k(value)));
            }
        }
    }
    rows.truncate(14);
    out.push_str(&bar_chart(&rows, "per 1k accesses"));
    // Table twin: raw sums.
    out.push_str(
        "<details><summary>Table view</summary><table>\
         <thead><tr><th>protocol</th><th>runs</th><th>accesses</th><th>inval</th>\
         <th>update</th><th>bcast</th><th>wb</th><th>fill</th><th>bus</th><th>flush</th>\
         </tr></thead><tbody>",
    );
    for r in &report.event_mix {
        let _ = write!(
            out,
            "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td></tr>",
            esc(&r.protocol),
            r.runs,
            r.accesses,
            r.invalidations,
            r.updates,
            r.broadcasts,
            r.write_backs,
            r.fills,
            r.bus_transactions,
            r.flushes
        );
    }
    out.push_str("</tbody></table></details></section>");
}

fn section_history(out: &mut String, history: &[HistoryRecord]) {
    out.push_str("<section class=\"card\"><h2>Run history</h2>");
    if history.len() < 2 {
        out.push_str(
            "<p class=\"note\">Fewer than two recorded runs — run \
             <code>repro all --record-history</code> to grow the log.</p></section>",
        );
        return;
    }
    let _ = write!(
        out,
        "<p class=\"note\">Trends over the last {} recorded run(s); oldest to newest.</p>",
        history.len()
    );
    let spark = |out: &mut String, title: &str, values: Vec<f64>| {
        let _ = write!(out, "<div class=\"spark\"><h3>{}</h3>", esc(title));
        out.push_str(&sparkline(&values, 300.0, 64.0));
        let finite: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        if let (Some(first), Some(last)) = (finite.first(), finite.last()) {
            let _ = write!(
                out,
                "<div class=\"spark-range\">{} → {}</div>",
                fmt_value(*first),
                fmt_value(*last)
            );
        }
        out.push_str("</div>");
    };
    out.push_str("<div class=\"spark-row\">");
    spark(
        out,
        "Warm-start iteration speedup",
        history
            .iter()
            .map(|r| r.warm_start.iteration_speedup)
            .collect(),
    );
    spark(
        out,
        "Solver residual evaluations",
        history
            .iter()
            .map(|r| r.solver.residual_evals as f64)
            .collect(),
    );
    spark(
        out,
        "Worst accuracy error (%)",
        history
            .iter()
            .map(|r| r.worst_rel_error().map(|e| e * 100.0).unwrap_or(f64::NAN))
            .collect(),
    );
    spark(
        out,
        "Wall clock (ms, machine-dependent)",
        history.iter().map(|r| r.wall_ms).collect(),
    );
    spark(
        out,
        "Sim accesses/s (machine-dependent)",
        history
            .iter()
            .map(|r| {
                r.sim
                    .as_ref()
                    .map(|s| s.accesses_per_second)
                    .unwrap_or(f64::NAN)
            })
            .collect(),
    );
    out.push_str("</div>");
    // Table twin.
    out.push_str(
        "<details><summary>Table view</summary><table>\
         <thead><tr><th>#</th><th>commit</th><th>quick</th><th>exps</th>\
         <th>wall ms</th><th>speedup</th><th>resid evals</th><th>worst err</th>\
         <th>sim acc/s</th></tr>\
         </thead><tbody>",
    );
    for (i, r) in history.iter().enumerate() {
        let commit: String = r.build.git_commit.chars().take(10).collect();
        let worst = r
            .worst_rel_error()
            .map(|e| format!("{:.2}%", e * 100.0))
            .unwrap_or_else(|| "-".to_string());
        let sim_rate = r
            .sim
            .as_ref()
            .map(|s| format!("{:.2e}", s.accesses_per_second))
            .unwrap_or_else(|| "-".to_string());
        let _ = write!(
            out,
            "<tr><td class=\"num\">{}</td><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{:.1}</td><td class=\"num\">{:.2}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
            i + 1,
            esc(&commit),
            r.quick,
            r.experiments,
            r.wall_ms,
            r.warm_start.iteration_speedup,
            r.solver.residual_evals,
            worst,
            sim_rate
        );
    }
    out.push_str("</tbody></table></details></section>");
}

/// The dashboard's inline stylesheet: ink/surface/series tokens with a
/// selected dark mode (own steps, not an automatic flip).
const STYLE: &str = "\
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --status-good: #006300; --status-critical: #d03b3b;
  font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme=\"light\"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --status-good: #0ca30c; --status-critical: #d03b3b;
  }
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 0 0 8px; }
.viz-root h3 { font-size: 12px; margin: 0 0 4px; color: var(--text-secondary); font-weight: 600; }
.provenance { color: var(--text-muted); font-size: 12px; margin-bottom: 20px; }
.card { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin-bottom: 16px; max-width: 760px; }
.note { color: var(--text-secondary); font-size: 12.5px; margin: 0 0 12px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin-bottom: 16px; }
.tile { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 110px; }
.tile-value { font-size: 22px; }
.tile-label { color: var(--text-muted); font-size: 11.5px; margin-top: 2px; }
.status { font-size: 13px; padding: 12px 16px; }
.status.good { color: var(--status-good); }
.status.critical { color: var(--status-critical); }
svg text.label { fill: var(--text-secondary); font-size: 11.5px;
  font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif; }
svg text.value { fill: var(--text-secondary); font-size: 11.5px;
  font-variant-numeric: tabular-nums;
  font-family: system-ui, -apple-system, \"Segoe UI\", sans-serif; }
table { border-collapse: collapse; font-size: 12.5px; margin-top: 8px; }
th { text-align: left; color: var(--text-muted); font-weight: 600;
  border-bottom: 1px solid var(--baseline); padding: 4px 12px 4px 0; }
td { border-bottom: 1px solid var(--grid); padding: 4px 12px 4px 0; }
td.num { font-variant-numeric: tabular-nums; text-align: right; }
details summary { color: var(--text-secondary); font-size: 12px; cursor: pointer;
  margin-top: 12px; }
.spark-row { display: flex; gap: 24px; flex-wrap: wrap; }
.spark-range { color: var(--text-muted); font-size: 11.5px;
  font-variant-numeric: tabular-nums; }
code { font-size: 11.5px; }
";

/// Renders the complete dashboard page.
///
/// `trace` is optional (a dashboard can be history-only); `history`
/// may be empty. The output is a single self-contained HTML document:
/// no scripts, stylesheets, fonts, or images are fetched.
pub fn render_dashboard(trace: Option<&TraceReport>, history: &[HistoryRecord]) -> String {
    let build = BuildProvenance::current();
    let mut out = String::with_capacity(32 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">");
    out.push_str("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">");
    out.push_str("<title>swcc run dashboard</title><style>");
    out.push_str(STYLE);
    out.push_str("</style></head><body class=\"viz-root\">");
    out.push_str("<h1>swcc run dashboard</h1>");
    let _ = write!(
        out,
        "<div class=\"provenance\">commit {} · {} · {}</div>",
        esc(&build.git_commit),
        esc(&build.profile),
        esc(&build.rustc)
    );

    if let Some(report) = trace {
        out.push_str("<div class=\"tiles\">");
        stat_tile(&mut out, "trace events", &report.events.to_string());
        stat_tile(&mut out, "spans", &report.spans.to_string());
        stat_tile(
            &mut out,
            "solves",
            &(report.convergence.solves + report.convergence.legacy).to_string(),
        );
        if let Some(worst) = report.worst_rel_error() {
            stat_tile(
                &mut out,
                "worst accuracy",
                &format!("{:.1}%", worst * 100.0),
            );
        }
        // Divergences: reserved status colors, icon + label, never
        // color alone.
        if report.is_clean() {
            out.push_str(
                "<div class=\"tile status good\">\u{2713} clean — no solver divergences</div>",
            );
        } else {
            let _ = write!(
                out,
                "<div class=\"tile status critical\">\u{2717} {} solver divergence(s)</div>",
                report.convergence.divergences
            );
        }
        if report.skipped > 0 {
            let _ = write!(
                out,
                "<div class=\"tile status critical\">\u{26a0} {} corrupt trace line(s) \
                 skipped</div>",
                report.skipped
            );
        }
        out.push_str("</div>");

        section_phase_timings(&mut out, report);
        section_iterations(&mut out, report);
        section_accuracy(&mut out, report);
        section_divergence(&mut out, report);
        section_event_mix(&mut out, report);
    } else {
        out.push_str(
            "<section class=\"card\"><p class=\"note\">No trace supplied — run with \
             <code>repro report &lt;trace.jsonl&gt; --html …</code> for phase timings, \
             convergence, and accuracy sections.</p></section>",
        );
    }

    section_history(&mut out, history);
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{
        AccuracyEntry, BatchStats, SimStats, SolverStats, WarmStartStats, HISTORY_SCHEMA,
    };
    use crate::trace_report::analyze;

    fn sample_report() -> TraceReport {
        analyze(
            &[
                r#"{"ev":"start","name":"runner.batch","span":1,"parent":0,"seq":0,"thread":1}"#,
                r#"{"ev":"start","name":"patel.solve","span":2,"parent":1,"seq":1,"thread":1,"fields":{"warm":false,"legacy":false}}"#,
                r#"{"ev":"point","name":"patel.result","span":2,"parent":2,"seq":2,"thread":1,"fields":{"iterations":5,"fallbacks":0,"converged":true}}"#,
                r#"{"ev":"end","name":"patel.solve","span":2,"parent":1,"seq":3,"thread":1,"dur_ns":4000}"#,
                r#"{"ev":"point","name":"validation.point","span":1,"parent":1,"seq":4,"thread":1,"fields":{"preset":"POPS","protocol":"Base","cache_bytes":65536,"n":2,"sim_power":1.8,"model_power":1.7,"rel_error":0.055}}"#,
                r#"{"ev":"point","name":"sim.events","span":1,"parent":1,"seq":5,"thread":1,"fields":{"protocol":"Dragon","accesses":5000,"invalidations":0,"updates":40,"broadcasts":41,"write_backs":7,"fills":120,"bus_transactions":170,"flushes":0,"cycle_steals":80}}"#,
                r#"{"ev":"end","name":"runner.batch","span":1,"parent":0,"seq":6,"thread":1,"dur_ns":20000}"#,
            ]
            .join("\n"),
        )
    }

    fn sample_history(n: usize) -> Vec<HistoryRecord> {
        (0..n)
            .map(|i| HistoryRecord {
                schema: HISTORY_SCHEMA.to_string(),
                build: BuildProvenance::current(),
                quick: true,
                jobs: 1,
                experiments: 20,
                wall_ms: 100.0 + i as f64,
                accuracy: vec![AccuracyEntry {
                    figure: "fig1".to_string(),
                    max_rel_error: 0.12,
                }],
                solver: SolverStats {
                    solves: 1000,
                    residual_evals: 9000 + i as u64,
                    warm_reuses: 500,
                    bracket_fallbacks: 3,
                },
                warm_start: WarmStartStats {
                    cold_iterations: 400,
                    warm_iterations: 160,
                    iteration_speedup: 2.5,
                },
                batch: Some(BatchStats {
                    batches: 12,
                    lanes: 4000,
                    reference_iterations: 1200,
                    lanes_per_second: 2.5e7,
                }),
                sim: Some(SimStats {
                    reference_accesses: 55_000,
                    reference_makespan: 90_000,
                    accesses_per_second: 5.0e6,
                    wall_ms: 11.0,
                }),
            })
            .collect()
    }

    #[test]
    fn dashboard_is_self_contained() {
        let report = sample_report();
        let html = render_dashboard(Some(&report), &sample_history(3));
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        // No external requests of any kind.
        for needle in [
            "http://", "https://", "<script", "<link", "src=", "@import", "url(",
        ] {
            assert!(!html.contains(needle), "found {needle:?} in dashboard");
        }
    }

    #[test]
    fn dashboard_has_every_section() {
        let report = sample_report();
        let html = render_dashboard(Some(&report), &sample_history(3));
        for needle in [
            "Phase timings",
            "Solver iterations to tolerance",
            "Model vs simulation accuracy",
            "Model vs simulation divergence",
            "Coherence event mix",
            "Dragon updates",
            "Sim accesses/s",
            "Run history",
            "Table view",
            "<svg",
            "prefers-color-scheme: dark",
            "clean — no solver divergences",
        ] {
            assert!(html.contains(needle), "missing {needle:?}");
        }
        // The accuracy table carries the traced curve.
        assert!(html.contains("POPS"));
    }

    #[test]
    fn dashboard_without_trace_or_history_still_renders() {
        let html = render_dashboard(None, &[]);
        assert!(html.contains("No trace supplied"));
        assert!(html.contains("Fewer than two recorded runs"));
        assert!(!html.contains("<script"));
    }

    #[test]
    fn divergences_surface_as_critical_status_with_icon() {
        let mut report = sample_report();
        report.convergence.divergences = 2;
        let html = render_dashboard(Some(&report), &[]);
        assert!(html.contains("status critical"));
        assert!(html.contains("2 solver divergence(s)"));
        assert!(html.contains('\u{2717}'), "icon pairs with the color");
    }

    #[test]
    fn html_escapes_attacker_controlled_names() {
        let jsonl = r#"{"ev":"start","name":"<b>&evil</b>","span":1,"parent":0,"seq":0,"thread":1}
{"ev":"end","name":"<b>&evil</b>","span":1,"parent":0,"seq":1,"thread":1,"dur_ns":10}"#;
        let report = analyze(jsonl);
        let html = render_dashboard(Some(&report), &[]);
        assert!(!html.contains("<b>&evil"));
        assert!(html.contains("&lt;b&gt;&amp;evil"));
    }

    #[test]
    fn bar_paths_handle_degenerate_widths() {
        // Sliver bars clamp the corner radius instead of emitting
        // negative segment lengths or NaN.
        for p in [
            bar_path(0.0, 0.0, 0.5, 16.0),
            bar_path(0.0, 0.0, 1.0, 2.0),
            bar_path(0.0, 0.0, 200.0, 16.0),
        ] {
            assert!(!p.contains("NaN"), "{p}");
            assert!(!p.contains("h--") && !p.contains("v-"), "{p}");
        }
        let chart = bar_chart(&[("x".to_string(), 0.0)], "ms");
        assert!(chart.contains("<svg"));
    }
}
