//! Parallel experiment runner.
//!
//! Experiments in the [`crate::registry`] are independent pure functions
//! of their [`RunOptions`], so a batch of them parallelizes trivially: a
//! fixed pool of scoped threads ([`std::thread::scope`] — no external
//! thread-pool dependency) pulls **chunks** of experiment indices from a
//! shared atomic counter until the batch is drained. Each worker hands
//! its whole chunk to the model layer's batch solver engine in sequence
//! ([`swcc_core::batch`] — the experiment bodies batch their grids
//! internally), so the per-claim synchronization cost is amortized over
//! the chunk; the chunk size is sized so each worker still sees several
//! claims per batch, keeping work stealing effective against one slow
//! experiment. Results come back in registry order regardless of
//! completion order, and each artifact records its own wall-clock
//! duration as a footnote.
//!
//! The `repro` binary drives this through `--jobs N`; library users call
//! [`run_selected`] or [`run_all`] directly.
//!
//! With observation enabled ([`run_selected_observed`]) each experiment
//! additionally runs inside a [`swcc_obs::capture`] span: the record
//! then carries the solver/sweep counters attributable to that one
//! experiment, plus its queue wait and the worker that ran it. The
//! `repro` binary turns these into `--metrics` output and the
//! `--manifest` run manifest. Observation never changes the artifacts —
//! only the bookkeeping around them.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use swcc_obs::{MetricsSnapshot, RegistryBuilder};

use crate::artifact::Artifact;
use crate::registry::{Experiment, RunOptions, EXPERIMENTS};

/// Span around one whole runner batch. Fields: `experiments`, `workers`,
/// `observe`.
pub const EV_RUNNER_BATCH: &str = "runner.batch";
/// Span around one experiment, opened on the worker thread and parented
/// (cross-thread) to the batch span. Fields: `id`, `worker`,
/// `queue_wait_ms`.
pub const EV_RUNNER_EXPERIMENT: &str = "runner.experiment";

/// Experiments completed by the runner (all batches).
pub const RUNNER_EXPERIMENTS: &str = "runner.experiments";
/// Worker threads used by the most recent batch.
pub const RUNNER_WORKERS: &str = "runner.workers";
/// Distribution of per-experiment run times, in milliseconds.
pub const RUNNER_RUN_MS: &str = "runner.run_ms";
/// Distribution of queue waits (batch start until a worker claimed the
/// experiment), in milliseconds.
pub const RUNNER_QUEUE_WAIT_MS: &str = "runner.queue_wait_ms";

/// Registers the runner's metrics on the builder.
#[must_use]
pub fn register_metrics(builder: RegistryBuilder) -> RegistryBuilder {
    const MS_BOUNDS: &[f64] = &[
        0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
        5000.0,
    ];
    builder
        .counter(RUNNER_EXPERIMENTS)
        .gauge(RUNNER_WORKERS)
        .histogram(RUNNER_RUN_MS, MS_BOUNDS)
        .histogram(RUNNER_QUEUE_WAIT_MS, MS_BOUNDS)
}

/// The outcome of one experiment run through the runner.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Stable experiment id (`"table8"`, `"fig11"`, ...).
    pub id: &'static str,
    /// Human-readable experiment title.
    pub title: &'static str,
    /// The produced artifact. The runner appends a
    /// `runner: completed in … ms` footnote, so rendered and JSON output
    /// carry the timing with them.
    pub artifact: Artifact,
    /// Wall-clock time this experiment took.
    pub duration: Duration,
    /// Time between batch start and a worker claiming this experiment.
    pub queue_wait: Duration,
    /// Zero-based index of the worker thread that ran this experiment.
    pub worker: usize,
    /// Solver/sweep metrics recorded while this experiment ran, captured
    /// per-thread via [`swcc_obs::capture`]. Empty unless the batch was
    /// run through [`run_selected_observed`] with `observe` set.
    pub metrics: MetricsSnapshot,
}

/// The machine's available parallelism, or 1 if it cannot be queried.
pub fn default_jobs() -> NonZeroUsize {
    std::thread::available_parallelism()
        .unwrap_or_else(|_| NonZeroUsize::new(1).expect("1 is non-zero"))
}

/// Runs the given experiments on a pool of `jobs` worker threads.
///
/// Results are returned in input order. Each worker repeatedly claims
/// the next unclaimed chunk of experiments (work stealing via an atomic
/// cursor; chunks shrink to single experiments for small batches), so
/// one slow experiment cannot idle the rest of the pool. With
/// `jobs = 1` the behavior is exactly sequential.
///
/// # Panics
///
/// Propagates a panic from any experiment body after the remaining
/// workers finish their current experiments.
pub fn run_selected(
    experiments: &[&'static Experiment],
    options: &RunOptions,
    jobs: NonZeroUsize,
) -> Vec<RunRecord> {
    run_selected_observed(experiments, options, jobs, false)
}

/// Like [`run_selected`], but with optional per-experiment observation.
///
/// With `observe` set, each experiment body runs inside a
/// [`swcc_obs::capture`] span so its [`RunRecord::metrics`] carries the
/// solver and sweep counters that experiment caused, and the runner
/// reports batch-level metrics ([`RUNNER_EXPERIMENTS`],
/// [`RUNNER_WORKERS`], [`RUNNER_RUN_MS`], [`RUNNER_QUEUE_WAIT_MS`])
/// through the global dispatch. With `observe` unset this is exactly
/// [`run_selected`]: no capture spans are opened and the records carry
/// empty metrics.
///
/// # Panics
///
/// As [`run_selected`].
pub fn run_selected_observed(
    experiments: &[&'static Experiment],
    options: &RunOptions,
    jobs: NonZeroUsize,
    observe: bool,
) -> Vec<RunRecord> {
    let workers = jobs.get().min(experiments.len().max(1));
    if observe {
        swcc_obs::gauge_set(RUNNER_WORKERS, workers as f64);
    }
    let tracing = swcc_obs::trace_enabled();
    let batch_span = if tracing {
        swcc_obs::span(
            EV_RUNNER_BATCH,
            &[
                swcc_obs::Field::u64("experiments", experiments.len() as u64),
                swcc_obs::Field::u64("workers", workers as u64),
                swcc_obs::Field::bool("observe", observe),
            ],
        )
    } else {
        swcc_obs::span(EV_RUNNER_BATCH, &[])
    };
    let batch_span_id = batch_span.id();
    let cursor = AtomicUsize::new(0);
    // Chunked claiming: each fetch_add hands a worker a run of
    // consecutive experiments. Aim for ~4 claims per worker so the
    // claim overhead amortizes on large fleets while small batches
    // (chunk = 1) keep today's one-at-a-time stealing granularity.
    let chunk = (experiments.len() / (workers * 4)).max(1);
    let batch_start = Instant::now();
    let (tx, rx) = mpsc::channel::<(usize, RunRecord)>();
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let first = cursor.fetch_add(chunk, Ordering::Relaxed);
                if first >= experiments.len() {
                    break;
                }
                let last = (first + chunk).min(experiments.len());
                for (i, exp) in experiments[first..last]
                    .iter()
                    .enumerate()
                    .map(|(j, e)| (first + j, e))
                {
                    let queue_wait = batch_start.elapsed();
                    // Worker threads have no thread-local link to the batch
                    // span, so parent explicitly across the thread boundary.
                    let exp_span = if tracing {
                        swcc_obs::span_under(
                            EV_RUNNER_EXPERIMENT,
                            batch_span_id,
                            &[
                                swcc_obs::Field::str("id", exp.id),
                                swcc_obs::Field::u64("worker", worker as u64),
                                swcc_obs::Field::f64(
                                    "queue_wait_ms",
                                    queue_wait.as_secs_f64() * 1e3,
                                ),
                            ],
                        )
                    } else {
                        swcc_obs::span_under(EV_RUNNER_EXPERIMENT, 0, &[])
                    };
                    let start = Instant::now();
                    let (mut artifact, metrics) = if observe {
                        swcc_obs::capture(|| (exp.run)(options))
                    } else {
                        ((exp.run)(options), MetricsSnapshot::default())
                    };
                    let duration = start.elapsed();
                    drop(exp_span);
                    if observe {
                        swcc_obs::counter_add(RUNNER_EXPERIMENTS, 1);
                        swcc_obs::observe(RUNNER_RUN_MS, duration.as_secs_f64() * 1e3);
                        swcc_obs::observe(RUNNER_QUEUE_WAIT_MS, queue_wait.as_secs_f64() * 1e3);
                    }
                    artifact.push_note(format!(
                        "runner: completed in {:.1} ms",
                        duration.as_secs_f64() * 1e3
                    ));
                    let record = RunRecord {
                        id: exp.id,
                        title: exp.title,
                        artifact,
                        duration,
                        queue_wait,
                        worker,
                        metrics,
                    };
                    // The receiver outlives the scope; a send cannot fail.
                    let _ = tx.send((i, record));
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<RunRecord>> = experiments.iter().map(|_| None).collect();
    for (i, record) in rx.try_iter() {
        slots[i] = Some(record);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every claimed experiment sends exactly one record"))
        .collect()
}

/// Runs every registered experiment (see [`run_selected`]).
pub fn run_all(options: &RunOptions, jobs: NonZeroUsize) -> Vec<RunRecord> {
    let all: Vec<&'static Experiment> = EXPERIMENTS.iter().collect();
    run_selected(&all, options, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::find;

    fn quick_batch() -> Vec<&'static Experiment> {
        ["table1", "table7", "table8", "fig4", "fig5", "fig6"]
            .iter()
            .map(|id| find(id).expect("registered"))
            .collect()
    }

    fn without_runner_notes(mut artifact: Artifact) -> Artifact {
        let notes = match &mut artifact {
            Artifact::Table(t) => &mut t.notes,
            Artifact::Figure(f) => &mut f.notes,
        };
        notes.retain(|n| !n.starts_with("runner:"));
        artifact
    }

    #[test]
    fn parallel_matches_sequential_and_direct() {
        let opts = RunOptions::quick();
        let batch = quick_batch();
        let jobs = NonZeroUsize::new(4).unwrap();
        let records = run_selected(&batch, &opts, jobs);
        assert_eq!(records.len(), batch.len());
        for (exp, record) in batch.iter().zip(&records) {
            assert_eq!(exp.id, record.id, "results must keep input order");
            let direct = (exp.run)(&opts);
            assert_eq!(
                without_runner_notes(record.artifact.clone()),
                direct,
                "{} must not depend on the runner",
                record.id
            );
        }
    }

    #[test]
    fn artifacts_carry_timing_notes() {
        let opts = RunOptions::quick();
        let batch = quick_batch();
        let records = run_selected(&batch, &opts, NonZeroUsize::new(2).unwrap());
        for record in &records {
            assert!(
                record.artifact.render().contains("runner: completed in"),
                "{} missing timing note",
                record.id
            );
        }
    }

    #[test]
    fn single_job_is_sequential() {
        let opts = RunOptions::quick();
        let batch = quick_batch();
        let a = run_selected(&batch, &opts, NonZeroUsize::new(1).unwrap());
        let b = run_selected(&batch, &opts, NonZeroUsize::new(3).unwrap());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                without_runner_notes(x.artifact.clone()),
                without_runner_notes(y.artifact.clone()),
                "{} must be independent of job count",
                x.id
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let records = run_selected(&[], &RunOptions::quick(), NonZeroUsize::new(8).unwrap());
        assert!(records.is_empty());
    }

    #[test]
    fn unobserved_records_have_empty_metrics() {
        let batch = vec![find("fig5").unwrap()];
        let records = run_selected(&batch, &RunOptions::quick(), NonZeroUsize::new(1).unwrap());
        assert!(records[0].metrics.is_empty());
    }

    #[test]
    fn observed_run_attributes_solver_work_per_experiment() {
        let batch: Vec<_> = ["table1", "fig5", "fig11"]
            .iter()
            .map(|id| find(id).expect("registered"))
            .collect();
        let records = run_selected_observed(
            &batch,
            &RunOptions::quick(),
            NonZeroUsize::new(2).unwrap(),
            true,
        );
        let by_id = |id: &str| records.iter().find(|r| r.id == id).unwrap();
        // table1 is a static cost table: no solver work at all.
        assert_eq!(
            by_id("table1")
                .metrics
                .counter(swcc_core::metrics::SOLVER_SOLVES),
            None
        );
        // fig5 sweeps the bus model, fig11 solves the network fixed point;
        // each experiment's span sees only its own work.
        assert!(
            by_id("fig5")
                .metrics
                .counter(swcc_core::metrics::BUS_SWEEPS)
                .unwrap_or(0)
                > 0
        );
        assert_eq!(
            by_id("fig5")
                .metrics
                .counter(swcc_core::metrics::SOLVER_SOLVES),
            None
        );
        assert!(
            by_id("fig11")
                .metrics
                .counter(swcc_core::metrics::SOLVER_RESIDUAL_EVALS)
                .unwrap_or(0)
                > 0
        );
        for record in &records {
            assert!(record.worker < 2, "{}: worker {}", record.id, record.worker);
        }
    }

    #[test]
    fn observation_does_not_change_artifacts() {
        let batch = quick_batch();
        let opts = RunOptions::quick();
        let plain = run_selected(&batch, &opts, NonZeroUsize::new(2).unwrap());
        let observed = run_selected_observed(&batch, &opts, NonZeroUsize::new(2).unwrap(), true);
        for (p, o) in plain.iter().zip(&observed) {
            assert_eq!(
                without_runner_notes(p.artifact.clone()),
                without_runner_notes(o.artifact.clone()),
                "{} artifact must not depend on observation",
                p.id
            );
        }
    }

    #[test]
    fn register_metrics_covers_runner_names() {
        let registry = register_metrics(swcc_obs::RegistryBuilder::new()).build();
        assert_eq!(registry.counter_value(RUNNER_EXPERIMENTS), Some(0));
        assert!(registry.histogram(RUNNER_RUN_MS).is_some());
        assert!(registry.histogram(RUNNER_QUEUE_WAIT_MS).is_some());
        assert_eq!(registry.gauge_value(RUNNER_WORKERS), Some(0.0));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs().get() >= 1);
    }
}
