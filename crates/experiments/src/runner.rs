//! Parallel experiment runner.
//!
//! Experiments in the [`crate::registry`] are independent pure functions
//! of their [`RunOptions`], so a batch of them parallelizes trivially: a
//! fixed pool of scoped threads ([`std::thread::scope`] — no external
//! thread-pool dependency) pulls experiment indices from a shared atomic
//! counter until the batch is drained. Results come back in registry
//! order regardless of completion order, and each artifact records its
//! own wall-clock duration as a footnote.
//!
//! The `repro` binary drives this through `--jobs N`; library users call
//! [`run_selected`] or [`run_all`] directly.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::artifact::Artifact;
use crate::registry::{Experiment, RunOptions, EXPERIMENTS};

/// The outcome of one experiment run through the runner.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Stable experiment id (`"table8"`, `"fig11"`, ...).
    pub id: &'static str,
    /// Human-readable experiment title.
    pub title: &'static str,
    /// The produced artifact. The runner appends a
    /// `runner: completed in … ms` footnote, so rendered and JSON output
    /// carry the timing with them.
    pub artifact: Artifact,
    /// Wall-clock time this experiment took.
    pub duration: Duration,
}

/// The machine's available parallelism, or 1 if it cannot be queried.
pub fn default_jobs() -> NonZeroUsize {
    std::thread::available_parallelism()
        .unwrap_or_else(|_| NonZeroUsize::new(1).expect("1 is non-zero"))
}

/// Runs the given experiments on a pool of `jobs` worker threads.
///
/// Results are returned in input order. Each worker repeatedly claims
/// the next unclaimed experiment (work stealing via an atomic cursor),
/// so one slow experiment cannot idle the rest of the pool. With
/// `jobs = 1` the behavior is exactly sequential.
///
/// # Panics
///
/// Propagates a panic from any experiment body after the remaining
/// workers finish their current experiments.
pub fn run_selected(
    experiments: &[&'static Experiment],
    options: &RunOptions,
    jobs: NonZeroUsize,
) -> Vec<RunRecord> {
    let workers = jobs.get().min(experiments.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RunRecord)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(exp) = experiments.get(i) else { break };
                let start = Instant::now();
                let mut artifact = (exp.run)(options);
                let duration = start.elapsed();
                artifact.push_note(format!(
                    "runner: completed in {:.1} ms",
                    duration.as_secs_f64() * 1e3
                ));
                let record = RunRecord {
                    id: exp.id,
                    title: exp.title,
                    artifact,
                    duration,
                };
                // The receiver outlives the scope; a send cannot fail.
                let _ = tx.send((i, record));
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<RunRecord>> = experiments.iter().map(|_| None).collect();
    for (i, record) in rx.try_iter() {
        slots[i] = Some(record);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every claimed experiment sends exactly one record"))
        .collect()
}

/// Runs every registered experiment (see [`run_selected`]).
pub fn run_all(options: &RunOptions, jobs: NonZeroUsize) -> Vec<RunRecord> {
    let all: Vec<&'static Experiment> = EXPERIMENTS.iter().collect();
    run_selected(&all, options, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::find;

    fn quick_batch() -> Vec<&'static Experiment> {
        ["table1", "table7", "table8", "fig4", "fig5", "fig6"]
            .iter()
            .map(|id| find(id).expect("registered"))
            .collect()
    }

    fn without_runner_notes(mut artifact: Artifact) -> Artifact {
        let notes = match &mut artifact {
            Artifact::Table(t) => &mut t.notes,
            Artifact::Figure(f) => &mut f.notes,
        };
        notes.retain(|n| !n.starts_with("runner:"));
        artifact
    }

    #[test]
    fn parallel_matches_sequential_and_direct() {
        let opts = RunOptions::quick();
        let batch = quick_batch();
        let jobs = NonZeroUsize::new(4).unwrap();
        let records = run_selected(&batch, &opts, jobs);
        assert_eq!(records.len(), batch.len());
        for (exp, record) in batch.iter().zip(&records) {
            assert_eq!(exp.id, record.id, "results must keep input order");
            let direct = (exp.run)(&opts);
            assert_eq!(
                without_runner_notes(record.artifact.clone()),
                direct,
                "{} must not depend on the runner",
                record.id
            );
        }
    }

    #[test]
    fn artifacts_carry_timing_notes() {
        let opts = RunOptions::quick();
        let batch = quick_batch();
        let records = run_selected(&batch, &opts, NonZeroUsize::new(2).unwrap());
        for record in &records {
            assert!(
                record.artifact.render().contains("runner: completed in"),
                "{} missing timing note",
                record.id
            );
        }
    }

    #[test]
    fn single_job_is_sequential() {
        let opts = RunOptions::quick();
        let batch = quick_batch();
        let a = run_selected(&batch, &opts, NonZeroUsize::new(1).unwrap());
        let b = run_selected(&batch, &opts, NonZeroUsize::new(3).unwrap());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                without_runner_notes(x.artifact.clone()),
                without_runner_notes(y.artifact.clone()),
                "{} must be independent of job count",
                x.id
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let records = run_selected(&[], &RunOptions::quick(), NonZeroUsize::new(8).unwrap());
        assert!(records.is_empty());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs().get() >= 1);
    }
}
