//! Model validation against trace-driven simulation (Figures 1–3).
//!
//! The paper's §3 compares model predictions to simulations of ATUM-2
//! traces for the Base and Dragon schemes at 16K/64K/256K cache sizes
//! and 1–8 processors. We reproduce the experiment with synthetic
//! POPS/THOR/PERO-like traces (see DESIGN.md §4): for each processor
//! count a trace is generated, the Table 2 parameters are *measured*
//! from it (trace statistics + Dragon-state cache replay), the model is
//! evaluated at those parameters, and both processing powers are
//! plotted.
//!
//! Expected shape (and what the tests assert): model and simulation
//! track each other closely, with the model *overestimating contention*
//! (hence slightly underestimating power) at higher processor counts,
//! because it assumes exponential bus service while the simulator uses
//! Table 1's fixed times.

use swcc_core::prelude::*;
use swcc_sim::measure::measure_workload;
use swcc_sim::{simulate, ProtocolKind, SimConfig};
use swcc_trace::synth::Preset;

use crate::artifact::{Figure, Series};

/// Model-vs-simulation comparison point, one per processor count of each
/// validation curve. Fields: `preset`, `protocol`, `cache_bytes`, `n`,
/// `sim_power`, `model_power`, `rel_error`. The `trace-report`
/// subcommand aggregates these into its accuracy delta table (the Fig 1
/// gap, paper §3).
pub const EV_VALIDATION_POINT: &str = "validation.point";

/// Options shared by the simulation-backed experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationOptions {
    /// Instructions per processor in each generated trace.
    pub instructions_per_cpu: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            instructions_per_cpu: 60_000,
            seed: 0xA7u64,
        }
    }
}

/// One model-vs-simulation comparison curve pair.
fn compare_curves(
    preset: Preset,
    protocol: ProtocolKind,
    cache_bytes: u64,
    max_cpus: u16,
    opts: &ValidationOptions,
) -> (Series, Series) {
    let mut config_b = SimConfig::builder(protocol);
    config_b.cache_bytes(cache_bytes);
    let config = config_b.build();

    // Measure the workload once, from the largest trace (the paper's
    // parameters are "expected to be nearly constant" in n; it also
    // notes the resulting small single-processor discrepancy).
    let full_trace = preset
        .config(max_cpus, opts.instructions_per_cpu, opts.seed)
        .generate();
    let workload = measure_workload(&full_trace, &config);

    let tracing = swcc_obs::trace_enabled();
    let mut sim_points = Vec::new();
    let mut model_points = Vec::new();
    for n in 1..=max_cpus {
        let trace = preset
            .config(n, opts.instructions_per_cpu, opts.seed)
            .generate();
        let report = simulate(&trace, &config);
        sim_points.push((f64::from(n), report.power()));
        let scheme = protocol
            .scheme()
            .expect("validation runs the paper's protocols");
        let perf = analyze_bus(scheme, &workload, config.system(), u32::from(n))
            .expect("bus analysis cannot fail for valid workloads");
        model_points.push((f64::from(n), perf.power()));
        if tracing {
            let sim_power = report.power();
            let model_power = perf.power();
            let rel_error = if sim_power > 0.0 {
                (model_power - sim_power).abs() / sim_power
            } else {
                0.0
            };
            swcc_obs::event(
                EV_VALIDATION_POINT,
                &[
                    swcc_obs::Field::text("preset", preset.to_string()),
                    swcc_obs::Field::text("protocol", protocol.to_string()),
                    swcc_obs::Field::u64("cache_bytes", cache_bytes),
                    swcc_obs::Field::u64("n", u64::from(n)),
                    swcc_obs::Field::f64("sim_power", sim_power),
                    swcc_obs::Field::f64("model_power", model_power),
                    swcc_obs::Field::f64("rel_error", rel_error),
                ],
            );
        }
    }
    (
        Series::new(format!("{preset} {protocol} sim"), sim_points),
        Series::new(format!("{preset} {protocol} model"), model_points),
    )
}

/// Figure 1: model vs simulation for Base and Dragon, 64 KiB caches,
/// 1–4 processors, on a POPS-like trace.
pub fn fig1(opts: &ValidationOptions) -> Figure {
    let mut fig = Figure::new(
        "Figure 1: model versus simulation, 64KB caches (POPS-like trace)",
        "processors",
        "processing power",
    );
    for protocol in [ProtocolKind::Base, ProtocolKind::Dragon] {
        let (sim, model) = compare_curves(Preset::Pops, protocol, 64 * 1024, 4, opts);
        fig.push_series(sim);
        fig.push_series(model);
    }
    fig.notes.push(
        "the analytic bus model assumes exponential service and overestimates contention \
         relative to the fixed-service-time simulation (paper §3)"
            .into(),
    );
    fig
}

/// Figure 2: impact of cache size (16K/64K/256K) on Dragon, model vs
/// simulation, 1–4 processors.
pub fn fig2(opts: &ValidationOptions) -> Figure {
    let mut fig = Figure::new(
        "Figure 2: cache-size impact on Dragon, <=4 processors (POPS-like trace)",
        "processors",
        "processing power",
    );
    for cache_kib in [16u64, 64, 256] {
        let (mut sim, mut model) = compare_curves(
            Preset::Pops,
            ProtocolKind::Dragon,
            cache_kib * 1024,
            4,
            opts,
        );
        sim.name = format!("{cache_kib}K sim");
        model.name = format!("{cache_kib}K model");
        fig.push_series(sim);
        fig.push_series(model);
    }
    fig
}

/// Figure 3: the same comparison carried to 8 processors (PERO-like
/// trace, as in the paper's 8-processor PERO run).
pub fn fig3(opts: &ValidationOptions) -> Figure {
    let mut fig = Figure::new(
        "Figure 3: cache-size impact on Dragon, <=8 processors (PERO-like trace)",
        "processors",
        "processing power",
    );
    for cache_kib in [16u64, 64, 256] {
        let (mut sim, mut model) = compare_curves(
            Preset::Pero,
            ProtocolKind::Dragon,
            cache_kib * 1024,
            8,
            opts,
        );
        sim.name = format!("{cache_kib}K sim");
        model.name = format!("{cache_kib}K model");
        fig.push_series(sim);
        fig.push_series(model);
    }
    fig
}

/// Maximum relative error between the matching model and simulation
/// series of a validation figure. Used by the tests and recorded in
/// EXPERIMENTS.md.
pub fn max_relative_error(fig: &Figure) -> f64 {
    let mut worst: f64 = 0.0;
    for s in &fig.series {
        let Some(model_name) = s.name.strip_suffix(" sim").map(|b| format!("{b} model")) else {
            continue;
        };
        let model = fig
            .series_named(&model_name)
            .expect("every sim series has a model partner");
        for (&(_, sim_y), &(_, model_y)) in s.points.iter().zip(&model.points) {
            if sim_y > 0.0 {
                worst = worst.max((model_y - sim_y).abs() / sim_y);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ValidationOptions {
        ValidationOptions {
            instructions_per_cpu: 20_000,
            seed: 0xA7,
        }
    }

    #[test]
    fn fig1_model_tracks_simulation() {
        let f = fig1(&quick());
        assert_eq!(f.series.len(), 4);
        let err = max_relative_error(&f);
        assert!(err < 0.25, "worst model-vs-sim error {err:.3}");
    }

    #[test]
    fn fig1_dragon_does_not_beat_base_in_simulation() {
        let f = fig1(&quick());
        let base = f.series_named("POPS Base sim").unwrap().final_y().unwrap();
        let dragon = f
            .series_named("POPS Dragon sim")
            .unwrap()
            .final_y()
            .unwrap();
        assert!(
            dragon <= base * 1.02,
            "dragon {dragon:.3} vs base {base:.3}"
        );
    }

    #[test]
    fn fig2_bigger_caches_do_better() {
        let f = fig2(&quick());
        let small = f.series_named("16K sim").unwrap().final_y().unwrap();
        let large = f.series_named("256K sim").unwrap().final_y().unwrap();
        assert!(large > small, "256K {large:.3} vs 16K {small:.3}");
        assert!(max_relative_error(&f) < 0.3);
    }

    #[test]
    fn fig3_scales_to_eight_processors() {
        let f = fig3(&quick());
        let s = f.series_named("64K sim").unwrap();
        assert_eq!(s.points.len(), 8);
        assert!(s.final_y().unwrap() > s.points[0].1, "power grows with n");
        assert!(max_relative_error(&f) < 0.35);
    }
}
