//! The append-only run-history store behind `repro all
//! --record-history` and the `repro history` drift gate.
//!
//! Bench baselines (`swcc-bench --compare`) catch regressions against
//! a *committed* reference file, but need someone to have committed
//! one. History is the complement: every recorded run appends one
//! line to `history/runs.jsonl` (schema [`HISTORY_SCHEMA`]), and
//! `repro history` compares the newest record against the **trailing
//! median** of its comparable predecessors — regression detection
//! that works with no baseline at all and gets stronger as the log
//! grows.
//!
//! Only machine-independent quantities are gated, so a laptop and a
//! CI runner can share a log:
//!
//! * **warm-start iteration speedup** (higher is better; floor) —
//!   the residual-evaluation ratio of cold versus warm Patel sweeps,
//!   deterministic for a given solver.
//! * **solver work counts** (lower is better; ceiling) — residual
//!   evaluations and solves across the whole run.
//! * **per-figure accuracy errors** (lower is better; ceiling) — the
//!   model-vs-simulation envelope of each validation figure.
//! * **batch reference iterations** (lower is better; ceiling) — the
//!   residual evaluations of a fixed 256-lane batch solve,
//!   deterministic for a given batch engine.
//! * **sim reference makespan** (lower is better; ceiling) — the final
//!   cycle count of a fixed reference trace replay, deterministic for
//!   a given simulator.
//!
//! Wall-clock time, batch throughput (lanes per second), and sim
//! throughput (accesses per second) are recorded for the trend table
//! but never gated.
//! Records from `--quick` runs and full runs are never compared with
//! each other (the workload differs by construction), and a record is
//! only comparable when it covers the same number of experiments.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use serde_json::Value;
use swcc_core::batch::BatchPatelSolver;
use swcc_core::metrics as core_metrics;
use swcc_core::network::WarmSolver;
use swcc_obs::quantile::median;
use swcc_obs::MetricsSnapshot;

use crate::artifact::Artifact;
use crate::manifest::{BuildProvenance, MetricsReport};
use crate::runner::RunRecord;
use crate::validation::max_relative_error;

/// Schema identifier written into every history record.
pub const HISTORY_SCHEMA: &str = "swcc-run-history/v1";

/// Default relative drift tolerance (5%).
pub const DEFAULT_DRIFT_TOLERANCE: f64 = 0.05;

/// Default path of the history log, relative to the working directory.
pub const DEFAULT_HISTORY_PATH: &str = "history/runs.jsonl";

/// Model-vs-simulation accuracy of one validation figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyEntry {
    /// Experiment id (`"fig1"`, ...).
    pub figure: String,
    /// Worst `|model − sim| / sim` across the figure's curves.
    pub max_rel_error: f64,
}

/// Whole-run solver work counters (machine-independent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Guarded-Newton + legacy solves completed.
    pub solves: u64,
    /// Residual evaluations across all solves.
    pub residual_evals: u64,
    /// Solves that reused a warm-start hint.
    pub warm_reuses: u64,
    /// Newton steps that fell back to the bisection midpoint.
    pub bracket_fallbacks: u64,
}

/// The cold-versus-warm Patel iteration comparison, recomputed at
/// record time (cheap: iteration counts only, no timing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStartStats {
    /// Residual evaluations of the cold (reset-per-solve) sweep.
    pub cold_iterations: u64,
    /// Residual evaluations of the warm-started sweep.
    pub warm_iterations: u64,
    /// `cold / warm` — the machine-independent speedup the sweep
    /// engine's warm starting buys.
    pub iteration_speedup: f64,
}

impl WarmStartStats {
    /// Recomputes the cold/warm iteration sweep (the same 50-solve
    /// rate sweep `swcc-bench` times, minus the timing).
    pub fn measure() -> WarmStartStats {
        const SOLVES: u32 = 50;
        const STAGES: u32 = 8;
        fn sweep(solver: &mut WarmSolver, reset: bool) -> u64 {
            let mut iterations = 0u64;
            for i in 1..=SOLVES {
                if reset {
                    solver.reset();
                }
                let _ = solver
                    .solve(f64::from(i) * 0.002, 20.0, STAGES)
                    .expect("bench sweep rates are solvable");
                iterations += u64::from(solver.last_iterations());
            }
            iterations
        }
        let mut solver = WarmSolver::new();
        let cold_iterations = sweep(&mut solver, true);
        solver.reset();
        let warm_iterations = sweep(&mut solver, false);
        WarmStartStats {
            cold_iterations,
            warm_iterations,
            iteration_speedup: cold_iterations as f64 / warm_iterations.max(1) as f64,
        }
    }
}

/// Batch-engine statistics: the run's whole-run lane counters plus a
/// fixed reference grid re-solved at record time (mirroring how
/// [`WarmStartStats`] re-runs the bench rate sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Batched Patel solves the recorded run issued.
    pub batches: u64,
    /// Lanes across those batches.
    pub lanes: u64,
    /// Residual evaluations of the fixed 256-lane reference grid —
    /// deterministic for a given solver, so it is gated as a ceiling
    /// like the scalar iteration counts.
    pub reference_iterations: u64,
    /// Reference-grid throughput in lanes per second. Machine
    /// dependent: shown in the trend table, never gated.
    pub lanes_per_second: f64,
}

impl BatchStats {
    /// Lanes in the reference grid.
    pub const REFERENCE_LANES: usize = 256;

    /// Re-solves the fixed reference grid (the bench batch section's
    /// demand range at a smaller width) and pairs it with the run's
    /// batch counters.
    pub fn measure(batches: u64, lanes: u64) -> BatchStats {
        const STAGES: u32 = 8;
        const REPS: usize = 8;
        let rates: Vec<f64> = (1..=Self::REFERENCE_LANES)
            .map(|i| i as f64 * 4.0e-4)
            .collect();
        let sizes = vec![20.0; Self::REFERENCE_LANES];
        let solver = BatchPatelSolver::new();
        let start = Instant::now();
        let mut reference_iterations = 0;
        for _ in 0..REPS {
            let solution = solver
                .solve(&rates, &sizes, STAGES)
                .expect("reference grid is solvable");
            reference_iterations = solution.total_iterations();
        }
        let elapsed = start.elapsed().as_secs_f64();
        BatchStats {
            batches,
            lanes,
            reference_iterations,
            lanes_per_second: (Self::REFERENCE_LANES * REPS) as f64 / elapsed.max(1e-12),
        }
    }
}

/// Simulator statistics: a fixed reference trace replay re-run at
/// record time (the same re-measure-at-record-time shape as
/// [`WarmStartStats`] and [`BatchStats`]), so sim wall-clock and
/// throughput trend alongside the solver quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Trace records the reference replay processed.
    pub reference_accesses: u64,
    /// Final makespan (cycles) of the reference replay —
    /// deterministic for a given simulator, so it is gated as a
    /// ceiling like the solver iteration counts.
    pub reference_makespan: u64,
    /// Reference-replay throughput in accesses per second. Machine
    /// dependent: shown in the trend table, never gated.
    pub accesses_per_second: f64,
    /// Reference-replay wall-clock milliseconds (trend only).
    pub wall_ms: f64,
}

impl SimStats {
    /// Replays the fixed reference trace (Dragon, 4 processors) and
    /// measures throughput.
    pub fn measure() -> SimStats {
        use swcc_sim::{simulate, ProtocolKind, SimConfig};
        let trace = swcc_trace::synth::pops_like(4, 10_000, 0xA7).generate();
        let config = SimConfig::new(ProtocolKind::Dragon);
        let start = Instant::now();
        let report = simulate(&trace, &config);
        let elapsed = start.elapsed().as_secs_f64();
        SimStats {
            reference_accesses: trace.len() as u64,
            reference_makespan: report.makespan(),
            accesses_per_second: trace.len() as f64 / elapsed.max(1e-12),
            wall_ms: elapsed * 1e3,
        }
    }
}

/// One recorded run: a single line of `history/runs.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRecord {
    /// Always [`HISTORY_SCHEMA`].
    pub schema: String,
    /// Build provenance of the recording binary.
    pub build: BuildProvenance,
    /// Whether the run used the `--quick` profile.
    pub quick: bool,
    /// Worker threads the runner was given.
    pub jobs: usize,
    /// Experiments the run covered.
    pub experiments: usize,
    /// Whole-batch wall-clock milliseconds (trend only, never gated).
    pub wall_ms: f64,
    /// Per-validation-figure accuracy, sorted by figure id.
    pub accuracy: Vec<AccuracyEntry>,
    /// Whole-run solver counters.
    pub solver: SolverStats,
    /// Cold-versus-warm iteration comparison.
    pub warm_start: WarmStartStats,
    /// Batch-engine counters and reference-grid measurement. `None`
    /// only for records written before the batch engine existed.
    pub batch: Option<BatchStats>,
    /// Simulator reference-replay measurement. `None` only for records
    /// written before sim telemetry existed.
    pub sim: Option<SimStats>,
}

impl HistoryRecord {
    /// Builds a record from a finished observed run.
    ///
    /// Validation figures are recognized by their `"… sim"` series
    /// (the model/sim pairing [`max_relative_error`] scores); other
    /// artifacts contribute nothing to `accuracy`.
    pub fn from_run(
        quick: bool,
        jobs: usize,
        records: &[RunRecord],
        wall_ms: f64,
        totals: &MetricsSnapshot,
    ) -> HistoryRecord {
        let mut accuracy: Vec<AccuracyEntry> = records
            .iter()
            .filter_map(|r| match &r.artifact {
                Artifact::Figure(fig) if fig.series.iter().any(|s| s.name.ends_with(" sim")) => {
                    Some(AccuracyEntry {
                        figure: r.id.to_string(),
                        max_rel_error: max_relative_error(fig),
                    })
                }
                _ => None,
            })
            .collect();
        accuracy.sort_by(|a, b| a.figure.cmp(&b.figure));

        let report = MetricsReport::from_snapshot(totals);
        let counter = |name: &str| report.counter(name).unwrap_or(0);
        HistoryRecord {
            schema: HISTORY_SCHEMA.to_string(),
            build: BuildProvenance::current(),
            quick,
            jobs,
            experiments: records.len(),
            wall_ms,
            accuracy,
            solver: SolverStats {
                solves: counter(core_metrics::SOLVER_SOLVES)
                    + counter(core_metrics::SOLVER_LEGACY_BISECTIONS),
                residual_evals: counter(core_metrics::SOLVER_RESIDUAL_EVALS),
                warm_reuses: counter(core_metrics::SOLVER_WARM_REUSES),
                bracket_fallbacks: counter(core_metrics::SOLVER_BRACKET_FALLBACKS),
            },
            warm_start: WarmStartStats::measure(),
            batch: Some(BatchStats::measure(
                counter(core_metrics::BATCH_PATEL_BATCHES),
                counter(core_metrics::BATCH_PATEL_LANES),
            )),
            sim: Some(SimStats::measure()),
        }
    }

    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("history serialization is infallible")
    }

    /// Parses one JSONL line, rejecting unknown schema revisions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a wrong
    /// shape, or a schema other than [`HISTORY_SCHEMA`].
    pub fn from_jsonl(line: &str) -> Result<HistoryRecord, String> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("invalid history record: {e}"))?;
        let schema = value
            .get_field("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| "history record has no schema field".to_string())?;
        if schema != HISTORY_SCHEMA {
            return Err(format!(
                "unsupported history schema {schema:?} (expected {HISTORY_SCHEMA:?})"
            ));
        }
        if value.get_field("batch").is_none() {
            // Pre-batch-engine record: the vendored serde has no
            // `#[serde(default)]`, so read it through the mirror and
            // upgrade explicitly (same pattern as `RunManifestV1`).
            let early: HistoryRecordPreBatch =
                serde_json::from_str(line).map_err(|e| format!("invalid history record: {e}"))?;
            return Ok(early.upgrade());
        }
        if value.get_field("sim").is_none() {
            // Pre-sim-telemetry record: same mirror-and-upgrade dance.
            let early: HistoryRecordPreSim =
                serde_json::from_str(line).map_err(|e| format!("invalid history record: {e}"))?;
            return Ok(early.upgrade());
        }
        serde_json::from_str(line).map_err(|e| format!("invalid history record: {e}"))
    }

    /// Worst accuracy error across this record's validation figures.
    pub fn worst_rel_error(&self) -> Option<f64> {
        self.accuracy
            .iter()
            .map(|a| a.max_rel_error)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }
}

/// The record shape written before the batch engine existed —
/// identical to [`HistoryRecord`] minus the `batch` section. Old logs
/// are read through this mirror and upgraded explicitly.
#[derive(Debug, Clone, Deserialize)]
struct HistoryRecordPreBatch {
    schema: String,
    build: BuildProvenance,
    quick: bool,
    jobs: usize,
    experiments: usize,
    wall_ms: f64,
    accuracy: Vec<AccuracyEntry>,
    solver: SolverStats,
    warm_start: WarmStartStats,
}

impl HistoryRecordPreBatch {
    fn upgrade(self) -> HistoryRecord {
        HistoryRecord {
            schema: self.schema,
            build: self.build,
            quick: self.quick,
            jobs: self.jobs,
            experiments: self.experiments,
            wall_ms: self.wall_ms,
            accuracy: self.accuracy,
            solver: self.solver,
            warm_start: self.warm_start,
            batch: None,
            sim: None,
        }
    }
}

/// The record shape written after the batch engine but before sim
/// telemetry: [`HistoryRecord`] minus the `sim` section.
#[derive(Debug, Clone, Deserialize)]
struct HistoryRecordPreSim {
    schema: String,
    build: BuildProvenance,
    quick: bool,
    jobs: usize,
    experiments: usize,
    wall_ms: f64,
    accuracy: Vec<AccuracyEntry>,
    solver: SolverStats,
    warm_start: WarmStartStats,
    batch: Option<BatchStats>,
}

impl HistoryRecordPreSim {
    fn upgrade(self) -> HistoryRecord {
        HistoryRecord {
            schema: self.schema,
            build: self.build,
            quick: self.quick,
            jobs: self.jobs,
            experiments: self.experiments,
            wall_ms: self.wall_ms,
            accuracy: self.accuracy,
            solver: self.solver,
            warm_start: self.warm_start,
            batch: self.batch,
            sim: None,
        }
    }
}

/// Appends one record to the history log, creating the file and its
/// parent directory as needed.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn append_record(path: &Path, record: &HistoryRecord) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", record.to_jsonl())
}

/// Loads the whole history log, oldest first. A missing file is an
/// empty history, not an error.
///
/// # Errors
///
/// Returns a line-numbered message for an unreadable file or a record
/// that fails [`HistoryRecord::from_jsonl`] — the log is an
/// append-only store this tool owns, so corruption is worth failing
/// loudly over (unlike trace ingestion, which tolerates truncation).
pub fn load_history(path: &Path) -> Result<Vec<HistoryRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = HistoryRecord::from_jsonl(line)
            .map_err(|e| format!("{} line {}: {e}", path.display(), lineno + 1))?;
        records.push(record);
    }
    Ok(records)
}

// --- drift detection ----------------------------------------------------

/// Which direction a quantity may safely move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftDirection {
    /// Higher is better: drift when current < median × (1 − tol).
    Floor,
    /// Lower is better: drift when current > median × (1 + tol) + ε.
    Ceiling,
}

/// One gated quantity's comparison against its trailing median.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// Quantity name (`"warm iteration speedup"`, ...).
    pub quantity: String,
    /// The newest record's value.
    pub current: f64,
    /// Trailing median across comparable predecessors.
    pub median: f64,
    /// Gate direction.
    pub direction: DriftDirection,
    /// `true` when the value breached its bound.
    pub drifted: bool,
}

/// The full drift verdict for the newest record.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftOutcome {
    /// Per-quantity comparisons (empty when nothing was comparable).
    pub rows: Vec<DriftRow>,
    /// Comparable trailing records the medians were computed over.
    pub compared: usize,
    /// Relative tolerance used.
    pub tolerance: f64,
    /// Why nothing was gated, when `rows` is empty.
    pub notes: Vec<String>,
}

impl DriftOutcome {
    /// `true` when no gated quantity drifted — the `repro history`
    /// exit code.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| !r.drifted)
    }

    /// Renders the verdict table. Notes (quantities skipped because
    /// trailing records predate them) always print, so a silent gate
    /// never masquerades as a passing one.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        if self.rows.is_empty() {
            out.push_str("drift: SKIPPED (insufficient history)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "drift check vs trailing median of {} run(s), tolerance {:.1}%",
            self.compared,
            self.tolerance * 100.0
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>12} {:>12} {:>8}  status",
            "quantity", "current", "median", "bound"
        );
        for row in &self.rows {
            let bound = match row.direction {
                DriftDirection::Floor => "floor",
                DriftDirection::Ceiling => "ceil",
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>12.4} {:>12.4} {:>8}  {}",
                row.quantity,
                row.current,
                row.median,
                bound,
                if row.drifted { "DRIFT" } else { "ok" }
            );
        }
        let drifted = self.rows.iter().filter(|r| r.drifted).count();
        if drifted == 0 {
            out.push_str("drift: OK\n");
        } else {
            let _ = writeln!(out, "drift: FAILED ({drifted} quantity(ies) drifted)");
        }
        out
    }
}

/// The machine-independent quantities of one record, as (name,
/// direction, value) rows. Accuracy entries are keyed per figure so a
/// drift names the curve that moved.
fn gated_quantities(record: &HistoryRecord) -> Vec<(String, DriftDirection, f64)> {
    let mut out = vec![
        (
            "warm iteration speedup".to_string(),
            DriftDirection::Floor,
            record.warm_start.iteration_speedup,
        ),
        (
            "warm sweep iterations".to_string(),
            DriftDirection::Ceiling,
            record.warm_start.warm_iterations as f64,
        ),
        (
            "solver residual evals".to_string(),
            DriftDirection::Ceiling,
            record.solver.residual_evals as f64,
        ),
        (
            "solver solves".to_string(),
            DriftDirection::Ceiling,
            record.solver.solves as f64,
        ),
    ];
    if let Some(batch) = &record.batch {
        out.push((
            "batch reference iterations".to_string(),
            DriftDirection::Ceiling,
            batch.reference_iterations as f64,
        ));
    }
    if let Some(sim) = &record.sim {
        out.push((
            "sim reference makespan".to_string(),
            DriftDirection::Ceiling,
            sim.reference_makespan as f64,
        ));
    }
    for entry in &record.accuracy {
        out.push((
            format!("{} max rel error", entry.figure),
            DriftDirection::Ceiling,
            entry.max_rel_error,
        ));
    }
    out
}

/// Compares the newest record against the trailing median of its
/// comparable predecessors.
///
/// Comparable means: same `quick` flag and same experiment count (a
/// `--quick` run and a full run do different work by construction).
/// With fewer than two comparable predecessors every quantity is
/// skipped — the gate trivially passes and says why.
pub fn detect_drift(history: &[HistoryRecord], tolerance: f64) -> DriftOutcome {
    let Some((current, trailing)) = history.split_last() else {
        return DriftOutcome {
            rows: Vec::new(),
            compared: 0,
            tolerance,
            notes: vec!["insufficient history: no records yet".to_string()],
        };
    };
    let comparable: Vec<&HistoryRecord> = trailing
        .iter()
        .filter(|r| r.quick == current.quick && r.experiments == current.experiments)
        .collect();
    if comparable.len() < 2 {
        return DriftOutcome {
            rows: Vec::new(),
            compared: comparable.len(),
            tolerance,
            notes: vec![format!(
                "insufficient history: {} comparable trailing run(s), but a trailing \
                 median needs at least 2 — gating against a single run would turn \
                 one noisy sample into a hard floor; record more history",
                comparable.len()
            )],
        };
    }

    // For near-zero medians (a perfect accuracy figure) the relative
    // band collapses; the absolute epsilon keeps noise from flagging.
    const EPSILON: f64 = 1e-9;
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (quantity, direction, current_value) in gated_quantities(current) {
        let trailing_values: Vec<f64> = comparable
            .iter()
            .filter_map(|r| {
                gated_quantities(r)
                    .into_iter()
                    .find(|(name, _, _)| *name == quantity)
                    .map(|(_, _, v)| v)
            })
            .collect();
        // A quantity must exist in every comparable record (a figure
        // added this run has no trailing median yet). Say so explicitly
        // rather than failing — old logs predate new quantities.
        if trailing_values.len() < comparable.len() {
            notes.push(format!(
                "{quantity}: SKIPPED ({} of {} comparable run(s) predate it; \
                 record more history)",
                comparable.len() - trailing_values.len(),
                comparable.len()
            ));
            continue;
        }
        let Some(trailing_median) = median(&trailing_values) else {
            continue;
        };
        let drifted = match direction {
            DriftDirection::Floor => current_value < trailing_median * (1.0 - tolerance) - EPSILON,
            DriftDirection::Ceiling => {
                current_value > trailing_median * (1.0 + tolerance) + EPSILON
            }
        };
        rows.push(DriftRow {
            quantity,
            current: current_value,
            median: trailing_median,
            direction,
            drifted,
        });
    }
    DriftOutcome {
        rows,
        compared: comparable.len(),
        tolerance,
        notes,
    }
}

// --- loadgen steady-state p99 trending ----------------------------------

/// Steady-state p99 extracted from one `swcc-loadgen` report, or the
/// printable reason there is none.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadgenP99 {
    /// A `swcc-loadgen/v2` report with a timeline-derived steady-state
    /// p99, in microseconds.
    Present(f64),
    /// A genuine loadgen report without the quantity — a v1 report, or
    /// a v2 run without `--timeline`. The string says which.
    Absent(String),
}

/// Reads the steady-state p99 out of one loadgen report.
///
/// # Errors
///
/// Returns a message for malformed JSON or a file that is not a
/// loadgen report at all. A report that merely lacks the quantity is
/// `Ok(Absent(reason))`, not an error — `repro history` skips it with
/// one printed line instead of failing.
pub fn loadgen_steady_p99(json: &str) -> Result<LoadgenP99, String> {
    let value: Value =
        serde_json::from_str(json).map_err(|e| format!("invalid loadgen report: {e}"))?;
    let schema = value
        .get_field("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| "loadgen report has no schema field".to_string())?;
    if !schema.starts_with("swcc-loadgen/") {
        return Err(format!("not a loadgen report (schema {schema:?})"));
    }
    if schema != "swcc-loadgen/v2" {
        return Ok(LoadgenP99::Absent(format!(
            "schema {schema} predates steady-state p99 (needs swcc-loadgen/v2)"
        )));
    }
    match value
        .get_field("steady_state")
        .and_then(|s| s.get_field("p99_us"))
        .and_then(Value::as_f64)
    {
        Some(v) if v.is_finite() && v > 0.0 => Ok(LoadgenP99::Present(v)),
        _ => Ok(LoadgenP99::Absent(
            "no steady-state p99 (run without --timeline, or no post-warmup windows)".to_string(),
        )),
    }
}

/// Gates the newest loadgen steady-state p99 against the trailing
/// median of its predecessors — the same trailing-median ceiling shape
/// as [`detect_drift`], including the two-predecessor minimum and the
/// explicit insufficient-history skip.
pub fn loadgen_p99_drift(values: &[f64], tolerance: f64) -> DriftOutcome {
    let Some((current, trailing)) = values.split_last() else {
        return DriftOutcome {
            rows: Vec::new(),
            compared: 0,
            tolerance,
            notes: vec!["insufficient history: no loadgen steady-state p99 values".to_string()],
        };
    };
    if trailing.len() < 2 {
        return DriftOutcome {
            rows: Vec::new(),
            compared: trailing.len(),
            tolerance,
            notes: vec![format!(
                "insufficient history: {} trailing loadgen report(s), but a trailing \
                 median needs at least 2 — record more timeline runs",
                trailing.len()
            )],
        };
    }
    let Some(trailing_median) = median(trailing) else {
        return DriftOutcome {
            rows: Vec::new(),
            compared: trailing.len(),
            tolerance,
            notes: vec!["insufficient history: trailing p99s have no median".to_string()],
        };
    };
    const EPSILON: f64 = 1e-9;
    DriftOutcome {
        rows: vec![DriftRow {
            quantity: "loadgen steady p99 (us)".to_string(),
            current: *current,
            median: trailing_median,
            direction: DriftDirection::Ceiling,
            drifted: *current > trailing_median * (1.0 + tolerance) + EPSILON,
        }],
        compared: trailing.len(),
        tolerance,
        notes: Vec::new(),
    }
}

/// Renders the `repro history` trend table over the last `last`
/// records (0 = all).
pub fn render_history(records: &[HistoryRecord], last: usize) -> String {
    let mut out = String::new();
    if records.is_empty() {
        out.push_str("history is empty (run `repro all --record-history` first)\n");
        return out;
    }
    let shown = if last == 0 || last >= records.len() {
        records
    } else {
        &records[records.len() - last..]
    };
    let _ = writeln!(
        out,
        "run history: showing {} of {} record(s)",
        shown.len(),
        records.len()
    );
    let _ = writeln!(
        out,
        "  {:<4} {:<10} {:<5} {:>4} {:>10} {:>9} {:>13} {:>12} {:>11} {:>11}",
        "#",
        "commit",
        "quick",
        "exps",
        "wall ms",
        "speedup",
        "resid evals",
        "batch l/s",
        "sim acc/s",
        "worst err"
    );
    let offset = records.len() - shown.len();
    for (i, r) in shown.iter().enumerate() {
        let commit: String = r.build.git_commit.chars().take(10).collect();
        let worst = r
            .worst_rel_error()
            .map(|e| format!("{:.2}%", e * 100.0))
            .unwrap_or_else(|| "-".to_string());
        let batch_rate = r
            .batch
            .as_ref()
            .map(|b| format!("{:.2e}", b.lanes_per_second))
            .unwrap_or_else(|| "-".to_string());
        let sim_rate = r
            .sim
            .as_ref()
            .map(|s| format!("{:.2e}", s.accesses_per_second))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "  {:<4} {:<10} {:<5} {:>4} {:>10.1} {:>9.2} {:>13} {:>12} {:>11} {:>11}",
            offset + i + 1,
            commit,
            r.quick,
            r.experiments,
            r.wall_ms,
            r.warm_start.iteration_speedup,
            r.solver.residual_evals,
            batch_rate,
            sim_rate,
            worst
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(quick: bool, speedup: f64, evals: u64, err: f64) -> HistoryRecord {
        HistoryRecord {
            schema: HISTORY_SCHEMA.to_string(),
            build: BuildProvenance::current(),
            quick,
            jobs: 1,
            experiments: 20,
            wall_ms: 100.0,
            accuracy: vec![AccuracyEntry {
                figure: "fig1".to_string(),
                max_rel_error: err,
            }],
            solver: SolverStats {
                solves: 1000,
                residual_evals: evals,
                warm_reuses: 500,
                bracket_fallbacks: 3,
            },
            warm_start: WarmStartStats {
                cold_iterations: 400,
                warm_iterations: 160,
                iteration_speedup: speedup,
            },
            batch: Some(BatchStats {
                batches: 12,
                lanes: 4000,
                reference_iterations: 1200,
                lanes_per_second: 2.5e7,
            }),
            sim: Some(SimStats {
                reference_accesses: 55_000,
                reference_makespan: 90_000,
                accesses_per_second: 5.0e6,
                wall_ms: 11.0,
            }),
        }
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let r = record(true, 2.5, 9000, 0.12);
        let line = r.to_jsonl();
        assert!(!line.contains('\n'));
        assert_eq!(HistoryRecord::from_jsonl(&line).unwrap(), r);
    }

    #[test]
    fn pre_batch_records_parse_and_skip_batch_gating() {
        // A line written before the batch engine: no `batch` field (and,
        // being older still than the sim stats, no `sim` either).
        let mut r = record(true, 2.5, 9000, 0.12);
        r.batch = None;
        r.sim = None;
        let line = r
            .to_jsonl()
            .replace(",\"batch\":null", "")
            .replace(",\"sim\":null", "");
        assert!(!line.contains("batch"), "{line}");
        let parsed = HistoryRecord::from_jsonl(&line).unwrap();
        assert_eq!(parsed, r);

        // Mixed history: batchless predecessors mean the batch ceiling
        // has no trailing median, so it is skipped, not failed.
        let mut old = record(true, 2.5, 9000, 0.12);
        old.batch = None;
        old.sim = None;
        let history = [old.clone(), old, record(true, 2.5, 9000, 0.12)];
        let outcome = detect_drift(&history, DEFAULT_DRIFT_TOLERANCE);
        assert!(outcome.passed(), "{}", outcome.render());
        assert!(!outcome
            .rows
            .iter()
            .any(|row| row.quantity == "batch reference iterations"));
    }

    #[test]
    fn drifted_batch_iterations_fail_the_gate() {
        let mut slow = record(true, 2.5, 9000, 0.12);
        if let Some(batch) = &mut slow.batch {
            batch.reference_iterations = 2400; // batch engine doing 2x the work
        }
        let history = [
            record(true, 2.5, 9000, 0.12),
            record(true, 2.5, 9000, 0.12),
            slow,
        ];
        let outcome = detect_drift(&history, DEFAULT_DRIFT_TOLERANCE);
        assert!(!outcome.passed());
        let row = outcome
            .rows
            .iter()
            .find(|r| r.quantity == "batch reference iterations")
            .unwrap();
        assert!(row.drifted);
    }

    #[test]
    fn pre_sim_records_parse_skip_sim_gating_and_say_so() {
        // A line written after the batch engine but before sim
        // telemetry: has `batch`, lacks `sim`.
        let mut r = record(true, 2.5, 9000, 0.12);
        r.sim = None;
        let line = r.to_jsonl().replace(",\"sim\":null", "");
        assert!(!line.contains("\"sim\""), "{line}");
        let parsed = HistoryRecord::from_jsonl(&line).unwrap();
        assert_eq!(parsed, r);

        // Mixed history: simless predecessors mean the makespan
        // ceiling has no trailing median — skipped with an explicit
        // printed line, never failed.
        let mut old = record(true, 2.5, 9000, 0.12);
        old.sim = None;
        let history = [old.clone(), old, record(true, 2.5, 9000, 0.12)];
        let outcome = detect_drift(&history, DEFAULT_DRIFT_TOLERANCE);
        assert!(outcome.passed(), "{}", outcome.render());
        assert!(!outcome
            .rows
            .iter()
            .any(|row| row.quantity == "sim reference makespan"));
        let rendered = outcome.render();
        assert!(
            rendered.contains("sim reference makespan: SKIPPED"),
            "{rendered}"
        );
    }

    #[test]
    fn drifted_sim_makespan_fails_the_gate() {
        let mut slow = record(true, 2.5, 9000, 0.12);
        if let Some(sim) = &mut slow.sim {
            sim.reference_makespan = 180_000; // simulator burning 2x cycles
        }
        let history = [
            record(true, 2.5, 9000, 0.12),
            record(true, 2.5, 9000, 0.12),
            slow,
        ];
        let outcome = detect_drift(&history, DEFAULT_DRIFT_TOLERANCE);
        assert!(!outcome.passed());
        let row = outcome
            .rows
            .iter()
            .find(|r| r.quantity == "sim reference makespan")
            .unwrap();
        assert!(row.drifted);
    }

    #[test]
    fn sim_stats_reference_replay_is_deterministic() {
        let a = SimStats::measure();
        let b = SimStats::measure();
        assert_eq!(a.reference_makespan, b.reference_makespan);
        assert_eq!(a.reference_accesses, b.reference_accesses);
        assert!(a.reference_accesses > 0);
        assert!(a.accesses_per_second > 0.0);
        assert!(a.wall_ms > 0.0);
    }

    #[test]
    fn batch_stats_reference_grid_is_deterministic() {
        let a = BatchStats::measure(3, 99);
        let b = BatchStats::measure(3, 99);
        assert_eq!(a.reference_iterations, b.reference_iterations);
        assert_eq!(a.batches, 3);
        assert_eq!(a.lanes, 99);
        assert!(a.reference_iterations > 0);
        assert!(a.lanes_per_second > 0.0);
    }

    #[test]
    fn rejects_foreign_schema_and_garbage() {
        let mut r = record(true, 2.5, 9000, 0.12);
        r.schema = "swcc-run-history/v0".to_string();
        assert!(HistoryRecord::from_jsonl(&r.to_jsonl())
            .unwrap_err()
            .contains("unsupported history schema"));
        assert!(HistoryRecord::from_jsonl("not json").is_err());
        assert!(HistoryRecord::from_jsonl("{}").is_err());
    }

    #[test]
    fn append_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "swcc-history-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("nested").join("runs.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(load_history(&path).unwrap(), Vec::new(), "missing = empty");
        let a = record(true, 2.5, 9000, 0.12);
        let b = record(false, 2.6, 9100, 0.11);
        append_record(&path, &a).unwrap();
        append_record(&path, &b).unwrap();
        assert_eq!(load_history(&path).unwrap(), vec![a, b]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_fails_loudly_on_corrupt_log() {
        let dir = std::env::temp_dir().join(format!(
            "swcc-history-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs.jsonl");
        std::fs::write(&path, "garbage\n").unwrap();
        let err = load_history(&path).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drift_needs_two_comparable_predecessors() {
        // No records, one record, two records: each skips with an
        // explicit "insufficient history" note and a passing verdict —
        // a median over a single predecessor would turn one noisy
        // sample into a hard gate.
        let outcome = detect_drift(&[], DEFAULT_DRIFT_TOLERANCE);
        assert!(outcome.passed());
        assert!(
            outcome.render().contains("insufficient history"),
            "{}",
            outcome.render()
        );
        for history in [
            vec![record(true, 2.5, 9000, 0.12)],
            vec![record(true, 2.5, 9000, 0.12), record(true, 2.5, 9000, 0.12)],
        ] {
            let outcome = detect_drift(&history, DEFAULT_DRIFT_TOLERANCE);
            assert!(outcome.passed());
            assert!(outcome.rows.is_empty());
            let rendered = outcome.render();
            assert!(rendered.contains("SKIPPED"), "{rendered}");
            assert!(rendered.contains("insufficient history"), "{rendered}");
        }
    }

    #[test]
    fn quick_and_full_runs_never_compare() {
        // Two full-run predecessors, but the newest is --quick.
        let history = [
            record(false, 2.5, 9000, 0.12),
            record(false, 2.5, 9000, 0.12),
            record(true, 1.0, 90000, 0.9),
        ];
        let outcome = detect_drift(&history, DEFAULT_DRIFT_TOLERANCE);
        assert!(outcome.rows.is_empty(), "nothing comparable");
        assert!(outcome.passed());
    }

    #[test]
    fn steady_history_passes() {
        let history = [
            record(true, 2.50, 9000, 0.120),
            record(true, 2.52, 9010, 0.119),
            record(true, 2.48, 8990, 0.121),
            record(true, 2.51, 9005, 0.120),
        ];
        let outcome = detect_drift(&history, DEFAULT_DRIFT_TOLERANCE);
        assert_eq!(outcome.compared, 3);
        assert!(outcome.passed(), "{}", outcome.render());
        assert!(outcome.render().contains("drift: OK"));
    }

    #[test]
    fn drifted_speedup_fails_the_gate() {
        let history = [
            record(true, 2.50, 9000, 0.12),
            record(true, 2.52, 9000, 0.12),
            record(true, 1.20, 9000, 0.12), // speedup collapsed
        ];
        let outcome = detect_drift(&history, DEFAULT_DRIFT_TOLERANCE);
        assert!(!outcome.passed());
        let row = outcome
            .rows
            .iter()
            .find(|r| r.quantity == "warm iteration speedup")
            .unwrap();
        assert!(row.drifted);
        assert!(outcome.render().contains("drift: FAILED"));
    }

    #[test]
    fn drifted_accuracy_and_counts_fail_the_gate() {
        let worse_accuracy = [
            record(true, 2.5, 9000, 0.120),
            record(true, 2.5, 9000, 0.120),
            record(true, 2.5, 9000, 0.200), // accuracy envelope blew up
        ];
        assert!(!detect_drift(&worse_accuracy, DEFAULT_DRIFT_TOLERANCE).passed());
        let more_evals = [
            record(true, 2.5, 9000, 0.12),
            record(true, 2.5, 9000, 0.12),
            record(true, 2.5, 20000, 0.12), // solver doing far more work
        ];
        assert!(!detect_drift(&more_evals, DEFAULT_DRIFT_TOLERANCE).passed());
    }

    #[test]
    fn improvements_pass_every_gate() {
        let history = [
            record(true, 2.5, 9000, 0.12),
            record(true, 2.5, 9000, 0.12),
            record(true, 3.5, 5000, 0.05), // strictly better everywhere
        ];
        assert!(detect_drift(&history, DEFAULT_DRIFT_TOLERANCE).passed());
    }

    #[test]
    fn warm_start_stats_are_deterministic_and_warm_wins() {
        let a = WarmStartStats::measure();
        let b = WarmStartStats::measure();
        assert_eq!(a, b, "iteration counts are machine-independent");
        assert!(a.warm_iterations < a.cold_iterations);
        assert!(a.iteration_speedup > 1.0);
    }

    #[test]
    fn loadgen_p99_extraction_distinguishes_present_absent_and_garbage() {
        let v2 = r#"{"schema":"swcc-loadgen/v2","steady_state":{"windows":3,"p99_us":812.5}}"#;
        assert_eq!(loadgen_steady_p99(v2).unwrap(), LoadgenP99::Present(812.5));
        // v2 without --timeline: the field is null, not missing.
        let no_timeline =
            r#"{"schema":"swcc-loadgen/v2","steady_state":{"windows":0,"p99_us":null}}"#;
        assert!(matches!(
            loadgen_steady_p99(no_timeline).unwrap(),
            LoadgenP99::Absent(_)
        ));
        // v1 predates the quantity entirely.
        let v1 = r#"{"schema":"swcc-loadgen/v1","latency_us":{"p99":900}}"#;
        match loadgen_steady_p99(v1).unwrap() {
            LoadgenP99::Absent(reason) => assert!(reason.contains("v2"), "{reason}"),
            other => panic!("expected Absent, got {other:?}"),
        }
        // Not a loadgen report / not JSON: hard errors.
        assert!(loadgen_steady_p99(r#"{"schema":"swcc-run-history/v1"}"#).is_err());
        assert!(loadgen_steady_p99("{}").is_err());
        assert!(loadgen_steady_p99("garbage").is_err());
    }

    #[test]
    fn loadgen_p99_gate_mirrors_the_drift_shape() {
        // Too little history: explicit skip, passing.
        for values in [&[][..], &[800.0][..], &[800.0, 810.0][..]] {
            let outcome = loadgen_p99_drift(values, DEFAULT_DRIFT_TOLERANCE);
            assert!(outcome.passed());
            assert!(outcome.rows.is_empty());
            assert!(
                outcome.render().contains("insufficient history"),
                "{}",
                outcome.render()
            );
        }
        // Steady: passes against the trailing median.
        let outcome = loadgen_p99_drift(&[800.0, 820.0, 810.0, 815.0], DEFAULT_DRIFT_TOLERANCE);
        assert_eq!(outcome.compared, 3);
        assert!(outcome.passed(), "{}", outcome.render());
        // Regression: newest p99 blows through the ceiling.
        let outcome = loadgen_p99_drift(&[800.0, 820.0, 810.0, 1200.0], DEFAULT_DRIFT_TOLERANCE);
        assert!(!outcome.passed());
        assert!(outcome.render().contains("loadgen steady p99"));
        // Improvement: a faster p99 never fails a ceiling.
        let outcome = loadgen_p99_drift(&[800.0, 820.0, 810.0, 400.0], DEFAULT_DRIFT_TOLERANCE);
        assert!(outcome.passed());
    }

    #[test]
    fn trend_table_renders_and_truncates() {
        let records = vec![
            record(true, 2.5, 9000, 0.12),
            record(true, 2.6, 9100, 0.11),
            record(true, 2.7, 9200, 0.10),
        ];
        let all = render_history(&records, 0);
        assert!(all.contains("showing 3 of 3"));
        let last = render_history(&records, 2);
        assert!(last.contains("showing 2 of 3"));
        assert!(last.lines().any(|l| l.trim_start().starts_with("2 ")));
        assert!(render_history(&[], 5).contains("history is empty"));
    }
}
