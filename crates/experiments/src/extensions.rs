//! Experiments beyond the paper's artifacts: the extensions and
//! future-work items DESIGN.md §7 commits to.
//!
//! * [`packet_vs_circuit`] — quantifies §7's conjecture that packet
//!   switching favors No-Cache.
//! * [`directory_vs_software`] — quantifies §6.3's remark that
//!   Software-Flush at the low range approximates directory hardware.
//! * [`patel_vs_simulation`] — validates Patel's analytical network
//!   model against the cycle-level circuit-switched simulator (the
//!   paper's stated future work).

use swcc_core::directory::analyze_directory;
use swcc_core::network::{analyze_network, analyze_network_packet};
use swcc_core::prelude::*;
use swcc_sim::measure::measure_workload;
use swcc_sim::{
    simulate, simulate_network, NetworkSimConfig, ProtocolKind, ServiceDiscipline, SimConfig,
};
use swcc_trace::synth::Preset;

use crate::artifact::{Figure, Series, Table};

/// Network schemes (Dragon needs a bus).
const NETWORK_SCHEMES: [Scheme; 3] = [Scheme::Base, Scheme::SoftwareFlush, Scheme::NoCache];

/// Extension: circuit- versus packet-switched processing power, by
/// scheme and network size (middle workload).
pub fn packet_vs_circuit() -> Figure {
    let w = WorkloadParams::default();
    let mut fig = Figure::new(
        "Extension: packet vs circuit switching (middle workload)",
        "processors",
        "processing power",
    );
    for scheme in NETWORK_SCHEMES {
        let mut circuit = Vec::new();
        let mut packet = Vec::new();
        for stages in 1..=9u32 {
            let c = analyze_network(scheme, &w, stages).expect("network schemes");
            let p = analyze_network_packet(scheme, &w, stages).expect("network schemes");
            circuit.push((f64::from(c.processors()), c.power()));
            packet.push((f64::from(p.processors()), p.power()));
        }
        fig.push_series(Series::new(format!("{scheme} circuit"), circuit));
        fig.push_series(Series::new(format!("{scheme} packet"), packet));
    }
    fig.notes.push(
        "paper §7: \"Use of packet-switching would be more favorable to No-Cache\" — \
         compare the No-Cache gain against Software-Flush's"
            .into(),
    );
    fig
}

/// Extension: directory hardware versus the software schemes on the
/// network, across the Table 7 levels.
pub fn directory_vs_software() -> Table {
    let mut t = Table::new(
        "Extension: directory hardware vs software schemes (256-processor network)",
        vec![
            "workload".into(),
            "Base".into(),
            "Directory".into(),
            "Software-Flush".into(),
            "No-Cache".into(),
            "SF / Dir".into(),
        ],
    );
    for level in Level::ALL {
        let w = WorkloadParams::at_level(level);
        let base = analyze_network(Scheme::Base, &w, 8).expect("base").power();
        let dir = analyze_directory(&w, 8).expect("directory").power();
        let sf = analyze_network(Scheme::SoftwareFlush, &w, 8)
            .expect("software-flush")
            .power();
        let nc = analyze_network(Scheme::NoCache, &w, 8)
            .expect("no-cache")
            .power();
        t.push_row(vec![
            level.to_string(),
            format!("{base:.1}"),
            format!("{dir:.1}"),
            format!("{sf:.1}"),
            format!("{nc:.1}"),
            format!("{:.2}", sf / dir),
        ]);
    }
    t.notes.push(
        "paper §6.3: Software-Flush in the low range approximates hardware directory \
         schemes — the SF/Dir column should be near 1.0 on the low row"
            .into(),
    );
    t
}

/// Extension: Patel's analytical model versus the cycle-level
/// circuit-switched network simulator.
pub fn patel_vs_simulation(instructions_per_cpu: u64, seed: u64) -> Figure {
    let mut fig = Figure::new(
        "Extension: Patel model vs circuit-switched network simulation",
        "stages",
        "processor utilization",
    );
    for scheme in NETWORK_SCHEMES {
        let mut model_pts = Vec::new();
        let mut sim_pts = Vec::new();
        for stages in 2..=6u32 {
            let w = WorkloadParams::default();
            let model = analyze_network(scheme, &w, stages).expect("network schemes");
            let sim = simulate_network(
                scheme,
                &w,
                &NetworkSimConfig {
                    stages,
                    instructions_per_cpu,
                    seed,
                },
            )
            .expect("simulation succeeds");
            model_pts.push((f64::from(stages), model.utilization()));
            sim_pts.push((f64::from(stages), sim.utilization()));
        }
        fig.push_series(Series::new(format!("{scheme} model"), model_pts));
        fig.push_series(Series::new(format!("{scheme} sim"), sim_pts));
    }
    fig.notes.push(
        "validating the paper's §6.2 methodology by simulation was its stated future work".into(),
    );
    fig
}

/// Extension: isolates the model's exponential-service assumption.
///
/// Runs the same trace through the simulator twice — once with the
/// paper's fixed Table 1 bus service times, once with exponential
/// service of the same means — and compares both contention figures
/// (`w`, cycles per instruction) against the analytical model's. The
/// paper attributes its consistent contention overestimate to exactly
/// this assumption; the exponential-service run should land much closer
/// to the model.
pub fn service_discipline(instructions_per_cpu: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Extension: bus service-time discipline vs model contention (w per instruction)",
        vec![
            "cpus".into(),
            "sim w (fixed)".into(),
            "sim w (exponential)".into(),
            "model w".into(),
        ],
    );
    for cpus in [2u16, 4, 8] {
        let trace = Preset::Pero
            .config(cpus, instructions_per_cpu, seed)
            .generate();
        let fixed_cfg = SimConfig::new(ProtocolKind::Dragon);
        let mut b = SimConfig::builder(ProtocolKind::Dragon);
        b.service(ServiceDiscipline::Exponential).seed(seed);
        let exp_cfg = b.build();
        let fixed = simulate(&trace, &fixed_cfg);
        let exponential = simulate(&trace, &exp_cfg);
        let workload = measure_workload(&trace, &fixed_cfg);
        let model = analyze_bus(
            Scheme::Dragon,
            &workload,
            fixed_cfg.system(),
            u32::from(cpus),
        )
        .expect("bus analysis");
        t.push_row(vec![
            cpus.to_string(),
            format!("{:.4}", fixed.contention_per_instruction()),
            format!("{:.4}", exponential.contention_per_instruction()),
            format!("{:.4}", model.waiting()),
        ]);
    }
    t.notes.push(
        "paper §3: the model \"consistently overestimates bus contention\" because it \
         assumes exponential service while the simulator uses fixed times"
            .into(),
    );
    t
}

/// Extension: write-update (Dragon) versus write-invalidate (MESI-like)
/// snoopy hardware across the sharing-granularity spectrum.
///
/// The paper models only Dragon. Sweeping `apl` exposes the classic
/// trade: at `apl = 1` (ping-pong sharing) updates win — invalidation
/// forces a miss per handoff — while at large `apl` (migratory sharing)
/// invalidation wins because Dragon keeps broadcasting every write to
/// data that stays resident elsewhere. Software-Flush is plotted for
/// context: invalidation hardware is its "free-flush" analogue.
pub fn update_vs_invalidate() -> Figure {
    use swcc_core::invalidate::bus_performance_invalidate;
    let system = BusSystemModel::new();
    let base = WorkloadParams::default();
    let mut fig = Figure::new(
        "Extension: write-update (Dragon) vs write-invalidate (MESI-like), 16-cpu bus",
        "apl",
        "processing power",
    );
    let mut dragon = Vec::new();
    let mut mesi = Vec::new();
    let mut sf = Vec::new();
    for apl_i in 1..=40u32 {
        let apl = f64::from(apl_i);
        let w = base.with_param(ParamId::Apl, apl).expect("apl >= 1");
        dragon.push((
            apl,
            analyze_bus(Scheme::Dragon, &w, &system, 16)
                .expect("bus")
                .power(),
        ));
        mesi.push((
            apl,
            bus_performance_invalidate(&w, &system, 16)
                .expect("bus")
                .power(),
        ));
        sf.push((
            apl,
            analyze_bus(Scheme::SoftwareFlush, &w, &system, 16)
                .expect("bus")
                .power(),
        ));
    }
    fig.push_series(Series::new("Dragon (update)", dragon));
    fig.push_series(Series::new("Write-Invalidate", mesi));
    fig.push_series(Series::new("Software-Flush", sf));
    fig.notes.push(
        "Dragon's power is apl-independent (it never re-misses on shared data); \
         invalidation trades broadcasts for coherence misses and crosses over"
            .into(),
    );
    fig
}

/// Extension: the software schemes *trace-driven* at network scale.
///
/// The paper's network results are purely analytical (a synthetic
/// workload fed to Patel's model). Here the trace-driven cache
/// simulator runs over the circuit-switched network fabric, and the
/// analytical model is evaluated at parameters measured from the same
/// trace — closing the §3 validation loop for §6's network claims.
pub fn trace_driven_network(instructions_per_cpu: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Extension: trace-driven network simulation vs analytical model (power)",
        vec![
            "scheme".into(),
            "cpus".into(),
            "sim".into(),
            "model".into(),
            "err %".into(),
        ],
    );
    for protocol in [
        ProtocolKind::Base,
        ProtocolKind::SoftwareFlush,
        ProtocolKind::NoCache,
    ] {
        for stages in [2u32, 3] {
            let cpus = 1u16 << stages;
            // One workload family for all schemes: identical generator
            // settings, with flush records only for Software-Flush.
            let mut gen = swcc_trace::synth::SynthConfig::builder();
            gen.cpus(cpus)
                .instructions_per_cpu(instructions_per_cpu)
                .seed(seed)
                .emit_flushes(protocol.uses_flushes());
            let trace = gen.build().generate();
            let mut b = SimConfig::builder(protocol);
            b.network(stages);
            let config = b.build();
            let report = simulate(&trace, &config);
            let workload = measure_workload(&trace, &config);
            let scheme = protocol.scheme().expect("software schemes");
            let model = analyze_network(scheme, &workload, stages).expect("network schemes");
            let err = (model.power() - report.power()) / report.power() * 100.0;
            t.push_row(vec![
                protocol.to_string(),
                cpus.to_string(),
                format!("{:.3}", report.power()),
                format!("{:.3}", model.power()),
                format!("{err:+.1}"),
            ]);
        }
    }
    t.notes.push(
        "simulator: waiting circuit establishment over per-link reservations; model: \
         Patel drop-and-retry fixed point — agreement within tens of percent is the \
         success criterion, direction of scheme ranking must match"
            .into(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_vs_circuit_shifts_the_balance_toward_no_cache() {
        let f = packet_vs_circuit();
        let at_max = |name: &str| f.series_named(name).unwrap().final_y().unwrap();
        let circuit_ratio = at_max("No-Cache circuit") / at_max("Software-Flush circuit");
        let packet_ratio = at_max("No-Cache packet") / at_max("Software-Flush packet");
        assert!(packet_ratio > circuit_ratio);
    }

    #[test]
    fn directory_table_shows_sf_parity_and_shared_collapse() {
        let t = directory_vs_software();
        // SF approximates the directory at the low range (§6.3) and
        // never beats it; notably both *collapse together* at the high
        // range, because the dominant cost — one coherence re-fetch per
        // apl references — is intrinsic to invalidation, not to the
        // software flush instructions.
        let ratio = |level: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == level).unwrap()[5]
                .parse()
                .unwrap()
        };
        assert!(
            (0.95..=1.005).contains(&ratio("low")),
            "low: {}",
            ratio("low")
        );
        for level in ["low", "middle", "high"] {
            let r = ratio(level);
            assert!((0.85..=1.005).contains(&r), "{level}: {r}");
        }
        let power = |level: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == level).unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(
            power("high") < 0.2 * power("low"),
            "directory collapses at apl = 1"
        );
    }

    #[test]
    fn exponential_service_inflates_contention_toward_the_model() {
        let t = service_discipline(20_000, 0xD15C);
        let get = |cpus: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == cpus).unwrap()[col]
                .parse()
                .unwrap()
        };
        // Service variability always increases queueing: the
        // exponential-service run must show more contention than the
        // fixed-service run on every row.
        for cpus in ["2", "4", "8"] {
            assert!(
                get(cpus, 2) > get(cpus, 1),
                "{cpus} cpus: exponential {} <= fixed {}",
                get(cpus, 2),
                get(cpus, 1)
            );
        }
        // At small processor counts (where the trace's burstiness has
        // not yet overwhelmed the model's independence assumptions) the
        // model's w lies between the two disciplines — overestimating
        // the fixed-service machine exactly as §3 reports.
        for cpus in ["2", "4"] {
            let (fixed, exponential, model) = (get(cpus, 1), get(cpus, 2), get(cpus, 3));
            assert!(
                model > fixed && model < exponential,
                "{cpus} cpus: expected fixed {fixed} < model {model} < exponential {exponential}"
            );
        }
    }

    #[test]
    fn update_invalidate_crossover_exists() {
        let f = update_vs_invalidate();
        let dragon = f.series_named("Dragon (update)").unwrap();
        let mesi = f.series_named("Write-Invalidate").unwrap();
        let at =
            |s: &crate::artifact::Series, apl: f64| s.points.iter().find(|p| p.0 == apl).unwrap().1;
        // Ping-pong sharing: update wins.
        assert!(at(dragon, 1.0) > at(mesi, 1.0));
        // Migratory sharing: invalidate wins.
        assert!(at(mesi, 40.0) > at(dragon, 40.0));
        // At degenerate apl = 1 the invalidate hardware still clearly
        // beats Software-Flush (no flush instructions, cache-sourced
        // fills). Note SF can edge ahead at large apl only because the
        // paper's Table 5 never charges ordinary capacity misses on
        // shared data — an accounting asymmetry we inherit deliberately.
        let sf = f.series_named("Software-Flush").unwrap();
        assert!(at(mesi, 1.0) > at(sf, 1.0));
        assert!(at(mesi, 2.0) > at(sf, 2.0));
    }

    #[test]
    fn write_invalidate_simulation_tracks_its_model() {
        use swcc_core::invalidate::bus_performance_invalidate;
        // Run the MESI protocol on a synthetic trace and compare the
        // simulated power with the invalidate model evaluated at the
        // measured workload parameters.
        let trace = Preset::Pops.config(4, 30_000, 0x3e51).generate();
        let config = SimConfig::new(ProtocolKind::WriteInvalidate);
        let report = simulate(&trace, &config);
        let workload = measure_workload(&trace, &config);
        let model = bus_performance_invalidate(&workload, config.system(), 4).unwrap();
        let err = (model.power() - report.power()).abs() / report.power();
        assert!(
            err < 0.25,
            "model {:.3} vs sim {:.3} ({:.1}%)",
            model.power(),
            report.power(),
            err * 100.0
        );
    }

    #[test]
    fn simulated_update_vs_invalidate_matches_model_direction() {
        // On a fine-grained-sharing trace (short runs), the simulator
        // should agree with the model that Dragon beats MESI.
        let mut b = swcc_trace::synth::SynthConfig::builder();
        b.cpus(4)
            .instructions_per_cpu(30_000)
            .run_length(2.0)
            .hot_regions(4)
            .region_blocks(2)
            .shd(0.3)
            .seed(0x1234);
        let trace = b.build().generate();
        let dragon = simulate(&trace, &SimConfig::new(ProtocolKind::Dragon));
        let mesi = simulate(&trace, &SimConfig::new(ProtocolKind::WriteInvalidate));
        assert!(
            dragon.power() > mesi.power(),
            "ping-pong trace: dragon {:.3} vs mesi {:.3}",
            dragon.power(),
            mesi.power()
        );
    }

    #[test]
    fn trace_driven_network_tracks_model() {
        let t = trace_driven_network(15_000, 0x7ace);
        // Every row's relative error stays within a generous envelope
        // (the simulator's waiting circuits vs the model's drop-retry
        // discipline), and Base dominates in both worlds at each size.
        for row in &t.rows {
            let err: f64 = row[4].parse().unwrap();
            assert!(err.abs() < 40.0, "{} at {} cpus: {err}%", row[0], row[1]);
        }
        for cpus in ["4", "8"] {
            let power = |scheme: &str, col: usize| -> f64 {
                t.rows
                    .iter()
                    .find(|r| r[0] == scheme && r[1] == cpus)
                    .unwrap()[col]
                    .parse()
                    .unwrap()
            };
            for col in [2, 3] {
                assert!(power("Base", col) >= power("Software-Flush", col));
                assert!(power("Base", col) >= power("No-Cache", col));
            }
        }
    }

    #[test]
    fn patel_validation_pairs_track_each_other() {
        let f = patel_vs_simulation(3_000, 42);
        for scheme in ["Base", "Software-Flush", "No-Cache"] {
            let model = f.series_named(&format!("{scheme} model")).unwrap();
            let sim = f.series_named(&format!("{scheme} sim")).unwrap();
            for (&(s, m), &(_, v)) in model.points.iter().zip(&sim.points) {
                let err = (m - v).abs() / v;
                assert!(
                    err < 0.25,
                    "{scheme} at {s} stages: model {m:.3} sim {v:.3}"
                );
            }
        }
    }
}
