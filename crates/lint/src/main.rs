//! The `swcc-lint` binary.
//!
//! ```text
//! swcc-lint [--root PATH] [--format human|json] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed findings, `2` usage or I/O
//! error. JSON output (`swcc-lint-report/v1`) goes to stdout; the
//! human format prints one `path:line: [rule] message` per finding
//! plus a summary line.

use std::path::PathBuf;
use std::process::ExitCode;

use swcc_lint::engine::Report;
use swcc_lint::{lint_root, RULES};

enum Format {
    Human,
    Json,
}

struct Args {
    root: PathBuf,
    format: Format,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut list_rules = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                let v = argv.next().ok_or("--root needs a path")?;
                root = Some(PathBuf::from(v));
            }
            "--format" => match argv.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    return Err(format!(
                        "--format must be `human` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--list-rules" => list_rules = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Args {
        root: root.unwrap_or_else(workspace_root),
        format,
        list_rules,
    })
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring a `[workspace]`; falls back to `.`.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json(report: &Report, root: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"schema\":\"swcc-lint-report/v1\"");
    let _ = write!(out, ",\"root\":\"{}\"", json_escape(root));
    let _ = write!(out, ",\"files_scanned\":{}", report.files_scanned);
    out.push_str(",\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        );
    }
    out.push_str("],\"suppressed\":[");
    for (i, s) in report.suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"reason\":\"{}\"}}",
            json_escape(s.finding.rule),
            json_escape(&s.finding.file),
            s.finding.line,
            json_escape(&s.reason)
        );
    }
    let _ = write!(
        out,
        "],\"summary\":{{\"findings\":{},\"suppressed\":{}}}}}",
        report.findings.len(),
        report.suppressed.len()
    );
    out
}

fn render_human(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    let _ = writeln!(
        out,
        "swcc-lint: {} file(s) scanned, {} finding(s), {} suppressed",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len()
    );
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("swcc-lint: {e}");
            eprintln!("usage: swcc-lint [--root PATH] [--format human|json] [--list-rules]");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (id, description) in RULES {
            println!("{id}: {description}");
        }
        return ExitCode::SUCCESS;
    }
    let report = match lint_root(&args.root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("swcc-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Human => print!("{}", render_human(&report)),
        Format::Json => println!("{}", render_json(&report, &args.root.to_string_lossy())),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
