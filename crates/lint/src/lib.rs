//! `swcc-lint` — project-invariant static analysis for this workspace.
//!
//! The test suite samples behavior; this crate gates the invariants
//! those samples can only spot-check, by construction, over every
//! non-test line in `crates/`:
//!
//! | rule | invariant |
//! |---|---|
//! | `no-raw-sync` | locking never poisons: `std::sync::{Mutex, Condvar, RwLock}` only inside `swcc_obs::sync` |
//! | `no-panic-in-request-path` | `swcc-serve` answers an error, never dies: no `unwrap`/`expect`/panicking macros/indexing in `server.rs`/`protocol.rs` |
//! | `float-eq` | no `==`/`!=` against float literals (the `-0.0` quantile class); bit-compare or suppress with the story |
//! | `determinism` | numeric kernels (batch, queue, MVA/Patel) use no time or randomness — the scalar↔batch bit-equality gates assume pure evaluation |
//! | `safety-comment` | every `unsafe` carries an adjacent `// SAFETY:` |
//! | `metric-doc-drift` | metric/span names in the registries and OBSERVABILITY.md's tables match, both directions |
//!
//! Deliberate exceptions are annotated in place —
//! `// swcc-lint: allow(<rule>) — <reason>` — with the reason
//! mandatory, unknown rules rejected, and stale allows reported. The
//! analysis is a hand-rolled lexer plus token-pattern rules
//! (`std`-only, no dependencies), so it runs before anything else in
//! the workspace builds. See DESIGN.md §10 for the architecture and
//! how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod suppress;

pub use engine::{lint_root, Report, SuppressedFinding};
pub use rules::{Finding, META_RULES, RULES};
