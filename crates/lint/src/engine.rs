//! File walking, test-code exclusion, suppression application, and
//! report assembly.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token};
use crate::rules::{
    check_file, collect_metric_consts, is_known_rule, metric_doc_drift, FileCtx, Finding,
    MetricConst, METRIC_REGISTRY_FILES,
};
use crate::suppress::{self, Suppression};

/// The observability doc the drift rule cross-checks (relative to the
/// linted root).
pub const OBSERVABILITY_DOC: &str = "OBSERVABILITY.md";

/// Directory names never descended into. `tests`, `benches`, and
/// `examples` hold example-based code where panicking asserts and
/// float equality are the point; `fixtures` holds this crate's
/// deliberately bad inputs.
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", ".git", "tests", "benches", "examples", "fixtures",
];

/// A finding that an inline `allow` silenced, with its stated reason.
#[derive(Debug, Clone)]
pub struct SuppressedFinding {
    /// The silenced finding.
    pub finding: Finding,
    /// The reason from the suppression comment.
    pub reason: String,
}

/// The result of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings (including `bad-suppression` /
    /// `stale-suppression` meta findings). Non-empty means failure.
    pub findings: Vec<Finding>,
    /// Findings silenced by well-formed suppressions.
    pub suppressed: Vec<SuppressedFinding>,
    /// Rust files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the run found nothing to report.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints everything under `root` (a workspace checkout: `crates/**.rs`
/// plus the observability doc).
///
/// A `root` without a `crates/` directory is an error, not an empty
/// clean report — a mistyped `--root` in CI must fail loudly, never
/// pass green having scanned nothing.
pub fn lint_root(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} is not a workspace root (no crates/ directory)",
            root.display()
        ));
    }
    collect_rust_files(&crates_dir, &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut suppressions: Vec<(String, Suppression)> = Vec::new();
    let mut raw_findings: Vec<Finding> = Vec::new();
    let mut consts: Vec<MetricConst> = Vec::new();

    for path in &files {
        let rel = rel_path(root, path);
        let source =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let lexed = lex(&source);
        let excluded = test_excluded_tokens(&lexed.tokens);
        let excluded_lines = excluded_line_set(&lexed.tokens, &excluded);
        let ctx = FileCtx {
            rel_path: &rel,
            tokens: &lexed.tokens,
            excluded: &excluded,
            comments: &lexed.comments,
        };
        raw_findings.extend(check_file(&ctx));
        if METRIC_REGISTRY_FILES.iter().any(|f| rel.ends_with(f)) {
            consts.extend(collect_metric_consts(&ctx));
        }
        for comment in &lexed.comments {
            if excluded_lines.contains(&comment.line) {
                continue;
            }
            if let Some(s) = suppress::parse(comment) {
                suppressions.push((rel.clone(), s));
            }
        }
        report.files_scanned += 1;
    }

    let doc_path = root.join(OBSERVABILITY_DOC);
    if doc_path.is_file() {
        let doc = fs::read_to_string(&doc_path)
            .map_err(|e| format!("cannot read {}: {e}", doc_path.display()))?;
        raw_findings.extend(metric_doc_drift(&consts, OBSERVABILITY_DOC, &doc));
    }

    apply_suppressions(raw_findings, suppressions, &mut report);
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.suppressed.sort_by(|a, b| {
        (&a.finding.file, a.finding.line, a.finding.rule).cmp(&(
            &b.finding.file,
            b.finding.line,
            b.finding.rule,
        ))
    });
    Ok(report)
}

fn apply_suppressions(
    raw: Vec<Finding>,
    suppressions: Vec<(String, Suppression)>,
    report: &mut Report,
) {
    // Only well-formed suppressions (known rule, nonempty reason)
    // silence anything; malformed ones surface both the meta finding
    // and the original.
    let mut used = vec![false; suppressions.len()];
    for f in raw {
        let hit = suppressions.iter().enumerate().find(|(_, (file, s))| {
            file == &f.file
                && s.rule == f.rule
                && !s.reason.is_empty()
                && is_known_rule(&s.rule)
                && s.target_line() == f.line
        });
        match hit {
            Some((idx, (_, s))) => {
                used[idx] = true;
                report.suppressed.push(SuppressedFinding {
                    reason: s.reason.clone(),
                    finding: f,
                });
            }
            None => report.findings.push(f),
        }
    }
    for (idx, (file, s)) in suppressions.iter().enumerate() {
        if s.rule.is_empty() {
            report.findings.push(Finding {
                rule: "bad-suppression",
                file: file.clone(),
                line: s.line,
                message: "malformed swcc-lint comment; expected `swcc-lint: allow(<rule>) — \
                          <reason>`"
                    .to_string(),
            });
        } else if !is_known_rule(&s.rule) {
            report.findings.push(Finding {
                rule: "bad-suppression",
                file: file.clone(),
                line: s.line,
                message: format!("unknown rule `{}` in allow(...)", s.rule),
            });
        } else if s.reason.is_empty() {
            report.findings.push(Finding {
                rule: "bad-suppression",
                file: file.clone(),
                line: s.line,
                message: format!(
                    "suppression of `{}` carries no reason; add one after the closing \
                     parenthesis",
                    s.rule
                ),
            });
        } else if !used[idx] {
            report.findings.push(Finding {
                rule: "stale-suppression",
                file: file.clone(),
                line: s.line,
                message: format!(
                    "allow(`{}`) matched no finding on line {}; remove the stale comment",
                    s.rule,
                    s.target_line()
                ),
            });
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Marks tokens belonging to `#[cfg(test)]` / `#[test]` items, which
/// every rule skips: test code panics and compares floats by design.
fn test_excluded_tokens(tokens: &[Token]) -> Vec<bool> {
    let mut excluded = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let (content_idents, attr_end) = attribute_content(tokens, i + 1);
        if !is_test_attribute(&content_idents) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = attr_end + 1;
        while tokens.get(j).is_some_and(|t| t.is_punct("#"))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            let (_, end) = attribute_content(tokens, j + 1);
            j = end + 1;
        }
        // The item body: everything to the matching `}` of the first
        // top-level brace, or to a top-level `;` for braceless items.
        let mut depth = 0i64;
        let end = loop {
            let Some(t) = tokens.get(j) else {
                break tokens.len().saturating_sub(1);
            };
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    if depth == 0 {
                        break matching_brace(tokens, j);
                    }
                    depth += 1;
                }
                "}" => depth -= 1,
                ";" if depth == 0 => break j,
                _ => {}
            }
            j += 1;
        };
        for flag in excluded
            .iter_mut()
            .take((end + 1).min(tokens.len()))
            .skip(attr_start)
        {
            *flag = true;
        }
        i = end + 1;
    }
    excluded
}

/// Given the index of the `[` opening an attribute, returns the
/// identifier texts inside it and the index of the closing `]`.
fn attribute_content(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0i64;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (idents, j);
                }
            }
            _ => {
                if t.kind == crate::lexer::TokenKind::Ident {
                    idents.push(t.text.clone());
                }
            }
        }
        j += 1;
    }
    (idents, tokens.len().saturating_sub(1))
}

/// `#[test]` or a `cfg(...)` mentioning `test` outside `not(...)`.
fn is_test_attribute(idents: &[String]) -> bool {
    match idents.first().map(String::as_str) {
        Some("test") => idents.len() == 1,
        Some("cfg") => {
            idents.iter().skip(1).any(|s| s == "test") && !idents.contains(&"not".to_string())
        }
        _ => false,
    }
}

fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// The set of source lines covered by excluded tokens (suppression
/// comments on those lines are ignored rather than reported stale).
fn excluded_line_set(tokens: &[Token], excluded: &[bool]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let mut run_start: Option<u32> = None;
    for (t, flag) in tokens.iter().zip(excluded) {
        if *flag {
            run_start.get_or_insert(t.line);
            for l in run_start.unwrap_or(t.line)..=t.line {
                lines.insert(l);
            }
        } else {
            run_start = None;
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_modules_are_excluded() {
        let src = "fn live() { a == 0.0; }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { b == 0.0; }\n}\n\
                   fn also_live() { c == 0.0; }\n";
        let lexed = lex(src);
        let excluded = test_excluded_tokens(&lexed.tokens);
        let live: Vec<&str> = lexed
            .tokens
            .iter()
            .zip(&excluded)
            .filter(|(t, e)| !**e && t.kind == crate::lexer::TokenKind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(live.contains(&"live") && live.contains(&"also_live"));
        assert!(!live.contains(&"tests") && !live.contains(&"b"));
    }

    #[test]
    fn test_fns_and_stacked_attributes_are_excluded() {
        let src = "#[test]\n#[ignore]\nfn t() { x[0]; }\nfn live() {}\n";
        let lexed = lex(src);
        let excluded = test_excluded_tokens(&lexed.tokens);
        let live: Vec<&str> = lexed
            .tokens
            .iter()
            .zip(&excluded)
            .filter(|(_, e)| !**e)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert_eq!(live, vec!["fn", "live", "(", ")", "{", "}"]);
    }

    #[test]
    fn cfg_not_test_is_not_excluded() {
        let src = "#[cfg(not(test))]\nfn live() {}\n";
        let lexed = lex(src);
        let excluded = test_excluded_tokens(&lexed.tokens);
        assert!(excluded.iter().all(|e| !e));
    }

    #[test]
    fn derive_attributes_do_not_swallow_items() {
        let src = "#[derive(Debug, Clone)]\nstruct S { x: u32 }\nfn live() {}\n";
        let lexed = lex(src);
        let excluded = test_excluded_tokens(&lexed.tokens);
        assert!(excluded.iter().all(|e| !e));
    }
}
