//! The rule set.
//!
//! Each rule is a token-pattern matcher grounded in a failure class
//! this repository has actually hit (see DESIGN.md §10 for the
//! histories). Rules are deliberately heuristic — they match token
//! shapes, not types — so every rule errs toward *flagging* and relies
//! on inline suppressions (with mandatory reasons) for the deliberate
//! cases. That trade is what lets the linter hold invariants the test
//! suite can only sample.

use crate::lexer::{Comment, Token, TokenKind};

/// Rule ids and one-line descriptions, in reporting order.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-raw-sync",
        "std::sync::Mutex/Condvar poison on panic; use the non-poisoning swcc_obs::sync wrappers",
    ),
    (
        "no-panic-in-request-path",
        "unwrap/expect/panic!/indexing in the serve request path; the server must answer an error, never die",
    ),
    (
        "float-eq",
        "==/!= against a float literal; compare bits (to_bits) or suppress with the -0.0/NaN story",
    ),
    (
        "determinism",
        "time/randomness in a numeric kernel whose scalar-vs-batch bit-equality CI gates require pure evaluation",
    ),
    (
        "safety-comment",
        "unsafe without an adjacent // SAFETY: comment",
    ),
    (
        "metric-doc-drift",
        "metric/span names in swcc_core::metrics, swcc_sim::metrics, and swcc_serve::metrics must match OBSERVABILITY.md's tables",
    ),
];

/// Meta-findings emitted by the suppression machinery itself; not
/// valid targets for `allow(...)`.
pub const META_RULES: &[&str] = &["bad-suppression", "stale-suppression"];

/// True iff `rule` names a suppressible rule.
pub fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == rule)
}

/// One reported problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule id.
    pub rule: &'static str,
    /// Path relative to the linted root, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable detail naming the offending construct.
    pub message: String,
}

/// Everything a file-scoped rule sees about one source file.
pub struct FileCtx<'a> {
    /// Path relative to the linted root.
    pub rel_path: &'a str,
    /// The code tokens.
    pub tokens: &'a [Token],
    /// Parallel to `tokens`: true for tokens inside `#[cfg(test)]` /
    /// `#[test]` items, which every rule skips.
    pub excluded: &'a [bool],
    /// The comments (for `// SAFETY:` adjacency).
    pub comments: &'a [Comment],
}

impl FileCtx<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    fn is_path_sep(&self, i: usize) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(":"))
            && self.tok(i + 1).is_some_and(|t| t.is_punct(":"))
    }
}

/// Runs every file-scoped rule applicable to `ctx.rel_path`.
pub fn check_file(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    no_raw_sync(ctx, &mut findings);
    no_panic_in_request_path(ctx, &mut findings);
    float_eq(ctx, &mut findings);
    determinism(ctx, &mut findings);
    safety_comment(ctx, &mut findings);
    findings
}

fn finding(rule: &'static str, ctx: &FileCtx<'_>, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: ctx.rel_path.to_string(),
        line,
        message,
    }
}

// --- no-raw-sync -------------------------------------------------------

/// The one module allowed to touch the raw primitives: the wrapper
/// itself.
const RAW_SYNC_EXEMPT: &str = "crates/obs/src/sync.rs";

fn no_raw_sync(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.rel_path.ends_with(RAW_SYNC_EXEMPT) {
        return;
    }
    let banned = |t: &Token| t.is_ident("Mutex") || t.is_ident("Condvar") || t.is_ident("RwLock");
    let mut i = 0;
    while i < ctx.tokens.len() {
        // `std :: sync ::` then either one name or a `{...}` group.
        let is_std_sync = ctx.tokens[i].is_ident("std")
            && ctx.is_path_sep(i + 1)
            && ctx.tok(i + 3).is_some_and(|t| t.is_ident("sync"))
            && ctx.is_path_sep(i + 4);
        if !is_std_sync || ctx.excluded[i] {
            i += 1;
            continue;
        }
        let after = i + 6;
        if let Some(t) = ctx.tok(after) {
            if banned(t) {
                findings.push(finding(
                    "no-raw-sync",
                    ctx,
                    t.line,
                    format!(
                        "raw std::sync::{} poisons on panic; use swcc_obs::sync::{} instead",
                        t.text, t.text
                    ),
                ));
            } else if t.is_punct("{") {
                let mut depth = 1usize;
                let mut j = after + 1;
                while j < ctx.tokens.len() && depth > 0 {
                    let t = &ctx.tokens[j];
                    if t.is_punct("{") {
                        depth += 1;
                    } else if t.is_punct("}") {
                        depth -= 1;
                    } else if depth == 1 && banned(t) {
                        findings.push(finding(
                            "no-raw-sync",
                            ctx,
                            t.line,
                            format!(
                                "raw std::sync::{} poisons on panic; use swcc_obs::sync::{} instead",
                                t.text, t.text
                            ),
                        ));
                    }
                    j += 1;
                }
            }
        }
        i = after;
    }
}

// --- no-panic-in-request-path ------------------------------------------

/// The request-handling files: everything between a parsed line and a
/// rendered response line.
const REQUEST_PATH_FILES: &[&str] = &[
    "crates/serve/src/server.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/telemetry.rs",
];

const PANICKING_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANICKING_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Keywords that may directly precede `[` in type or expression
/// position without forming an index expression (`&mut [T]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "dyn", "in", "as", "return", "break", "continue", "move", "ref", "if", "else", "match",
    "where", "impl", "let", "use", "pub", "crate", "super", "fn", "static", "const", "type",
    "enum", "struct", "trait", "mod", "unsafe", "while", "for", "loop", "yield", "box", "await",
];

fn no_panic_in_request_path(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !REQUEST_PATH_FILES.iter().any(|f| ctx.rel_path.ends_with(f)) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.excluded[i] {
            continue;
        }
        if t.kind == TokenKind::Ident
            && PANICKING_METHODS.contains(&t.text.as_str())
            && i > 0
            && ctx.tokens[i - 1].is_punct(".")
            && ctx.tok(i + 1).is_some_and(|n| n.is_punct("("))
        {
            findings.push(finding(
                "no-panic-in-request-path",
                ctx,
                t.line,
                format!(
                    ".{}() panics on the request path; return a per-query error response",
                    t.text
                ),
            ));
        }
        if t.kind == TokenKind::Ident
            && PANICKING_MACROS.contains(&t.text.as_str())
            && ctx.tok(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            findings.push(finding(
                "no-panic-in-request-path",
                ctx,
                t.line,
                format!(
                    "{}! panics on the request path; return a per-query error response",
                    t.text
                ),
            ));
        }
        if t.is_punct("[") && i > 0 {
            let prev = &ctx.tokens[i - 1];
            let postfix = match prev.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.text == ")" || prev.text == "]",
                _ => false,
            };
            if postfix {
                findings.push(finding(
                    "no-panic-in-request-path",
                    ctx,
                    t.line,
                    "slice/array indexing panics out of bounds on the request path; use .get()"
                        .to_string(),
                ));
            }
        }
    }
}

// --- float-eq ----------------------------------------------------------

fn float_operand(t: Option<&Token>) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Float)
}

fn float_eq(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        if ctx.excluded[i] {
            continue;
        }
        let (op, op_line) = if ctx.tokens[i].is_punct("=")
            && ctx.tok(i + 1).is_some_and(|t| t.is_punct("="))
            && (i == 0 || !ctx.tokens[i - 1].is_punct("=") && !ctx.tokens[i - 1].is_punct("!"))
            && !ctx.tok(i + 2).is_some_and(|t| t.is_punct("="))
        {
            ("==", ctx.tokens[i].line)
        } else if ctx.tokens[i].is_punct("!") && ctx.tok(i + 1).is_some_and(|t| t.is_punct("=")) {
            ("!=", ctx.tokens[i].line)
        } else {
            continue;
        };
        let left = if i > 0 { ctx.tok(i - 1) } else { None };
        // Skip one unary sign on the right (`x == -0.0`).
        let mut r = i + 2;
        if ctx
            .tok(r)
            .is_some_and(|t| t.is_punct("-") || t.is_punct("+"))
        {
            r += 1;
        }
        let right = ctx.tok(r);
        if float_operand(left) || float_operand(right) {
            let lit = [left, right]
                .into_iter()
                .flatten()
                .find(|t| t.kind == TokenKind::Float)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            findings.push(finding(
                "float-eq",
                ctx,
                op_line,
                format!(
                    "`{op}` against float literal `{lit}` conflates -0.0/0.0 and NaN; \
                     compare bits via to_bits() or suppress with the reason the \
                     ambiguity is intended"
                ),
            ));
        }
    }
}

// --- determinism -------------------------------------------------------

/// The numeric kernels whose scalar-vs-batch bit-equality gates in CI
/// assume pure, input-only evaluation.
const KERNEL_FILES: &[&str] = &[
    "crates/core/src/batch.rs",
    "crates/core/src/queue.rs",
    "crates/core/src/bus.rs",
    "crates/core/src/network/mod.rs",
    "crates/core/src/network/patel.rs",
    "crates/core/src/network/packet.rs",
];

const NONDETERMINISTIC_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "RandomState",
    "thread_rng",
    "random",
    "rand",
];

fn determinism(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !KERNEL_FILES.iter().any(|f| ctx.rel_path.ends_with(f)) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.excluded[i] {
            continue;
        }
        if t.kind == TokenKind::Ident && NONDETERMINISTIC_IDENTS.contains(&t.text.as_str()) {
            findings.push(finding(
                "determinism",
                ctx,
                t.line,
                format!(
                    "`{}` in a numeric kernel; the scalar↔batch bit-equality CI gates \
                     require these paths to depend on their inputs only",
                    t.text
                ),
            ));
        }
    }
}

// --- safety-comment ----------------------------------------------------

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// sit and still count as adjacent.
const SAFETY_WINDOW: u32 = 3;

fn safety_comment(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.excluded[i] || !t.is_ident("unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(SAFETY_WINDOW);
        let documented = ctx
            .comments
            .iter()
            .any(|c| c.line >= lo && c.line <= t.line && c.text.contains("SAFETY:"));
        if !documented {
            findings.push(finding(
                "safety-comment",
                ctx,
                t.line,
                format!(
                    "`unsafe` without a `// SAFETY:` comment within {SAFETY_WINDOW} lines; \
                     state the invariant that makes this sound"
                ),
            ));
        }
    }
}

// --- metric-doc-drift --------------------------------------------------

/// The metric registries whose `pub const NAME: &str = "..."` names
/// must stay in sync with OBSERVABILITY.md.
pub const METRIC_REGISTRY_FILES: &[&str] = &[
    "crates/core/src/metrics.rs",
    "crates/sim/src/metrics.rs",
    "crates/serve/src/metrics.rs",
];

/// One registered metric/span name: the string value and where the
/// const lives.
#[derive(Debug, Clone)]
pub struct MetricConst {
    /// The name string (e.g. `core.solver.solves`).
    pub name: String,
    /// Registry file, relative path.
    pub file: String,
    /// Line of the const declaration.
    pub line: u32,
}

/// Extracts every `pub const NAME: &str = "..."` from a registry file.
pub fn collect_metric_consts(ctx: &FileCtx<'_>) -> Vec<MetricConst> {
    let mut out = Vec::new();
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.excluded[i] || !toks[i].is_ident("const") {
            continue;
        }
        let pat = [i + 1, i + 2, i + 3, i + 4, i + 5, i + 6];
        let [name_i, colon, amp, str_kw, eq, lit] = pat;
        let shape = toks.get(name_i).is_some_and(|t| t.kind == TokenKind::Ident)
            && toks.get(colon).is_some_and(|t| t.is_punct(":"))
            && toks.get(amp).is_some_and(|t| t.is_punct("&"))
            && toks.get(str_kw).is_some_and(|t| t.is_ident("str"))
            && toks.get(eq).is_some_and(|t| t.is_punct("="))
            && toks.get(lit).is_some_and(|t| t.kind == TokenKind::Str);
        if shape {
            if let Some(value) = toks[lit].str_value() {
                out.push(MetricConst {
                    name: value.to_string(),
                    file: ctx.rel_path.to_string(),
                    line: toks[name_i].line,
                });
            }
        }
    }
    out
}

/// File extensions that disqualify a dotted backticked name from being
/// read as a metric name (it is a file path instead).
const NAME_EXT_DENYLIST: &[&str] = &["json", "jsonl", "rs", "md", "html", "toml", "yml", "txt"];

fn is_metric_name(s: &str) -> bool {
    if !s.contains('.') || s.starts_with('.') || s.ends_with('.') {
        return false;
    }
    if !s
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
    {
        return false;
    }
    match s.rsplit('.').next() {
        Some(last) => !NAME_EXT_DENYLIST.contains(&last),
        None => false,
    }
}

/// Cross-checks registered names against the observability doc.
///
/// Direction one: every registered metric/span name must appear
/// backticked somewhere in the doc. Direction two: every backticked
/// dotted name in a table row (a line starting with `|`) must be
/// registered by one of the metric registry files.
pub fn metric_doc_drift(consts: &[MetricConst], doc_rel_path: &str, doc: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for c in consts {
        if !doc.contains(&format!("`{}`", c.name)) {
            findings.push(Finding {
                rule: "metric-doc-drift",
                file: c.file.clone(),
                line: c.line,
                message: format!(
                    "registered name `{}` is not documented in {doc_rel_path}",
                    c.name
                ),
            });
        }
    }
    for (idx, raw) in doc.lines().enumerate() {
        let line_no = idx as u32 + 1;
        if !raw.trim_start().starts_with('|') {
            continue;
        }
        let mut parts = raw.split('`');
        // Odd-indexed fragments are inside backticks.
        let _ = parts.next();
        while let (Some(code), rest) = (parts.next(), parts.next()) {
            if is_metric_name(code) && !consts.iter().any(|c| c.name == code) {
                findings.push(Finding {
                    rule: "metric-doc-drift",
                    file: doc_rel_path.to_string(),
                    line: line_no,
                    message: format!(
                        "documented name `{code}` is not registered by any metrics module \
                         ({})",
                        METRIC_REGISTRY_FILES.join(", ")
                    ),
                });
            }
            if rest.is_none() {
                break;
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_findings(rel_path: &str, source: &str) -> Vec<Finding> {
        let lexed = lex(source);
        let excluded = vec![false; lexed.tokens.len()];
        check_file(&FileCtx {
            rel_path,
            tokens: &lexed.tokens,
            excluded: &excluded,
            comments: &lexed.comments,
        })
    }

    #[test]
    fn raw_sync_catches_paths_and_brace_imports() {
        let src = "use std::sync::{Arc, Mutex};\nlet c = std::sync::Condvar::new();\n";
        let f = ctx_findings("crates/core/src/cache.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, "no-raw-sync");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn raw_sync_ignores_guards_wrappers_and_the_sync_module() {
        let clean = "use std::sync::{Arc, MutexGuard};\nuse swcc_obs::sync::Mutex;\n";
        assert!(ctx_findings("crates/core/src/cache.rs", clean).is_empty());
        let exempt = "let m = std::sync::Mutex::new(0);";
        assert!(ctx_findings("crates/obs/src/sync.rs", exempt).is_empty());
    }

    #[test]
    fn request_path_rule_is_scoped_to_serve_files() {
        let src = "fn f(xs: &[u32]) -> u32 { xs[0] + xs.first().unwrap() }";
        assert!(ctx_findings("crates/core/src/bus.rs", src).is_empty());
        let f = ctx_findings("crates/serve/src/server.rs", src);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn request_path_rule_skips_macro_and_type_brackets() {
        let src = "fn f(v: &mut [u8]) -> Vec<u8> { vec![1, 2] }\n#[derive(Debug)]\nstruct S;";
        assert!(ctx_findings("crates/serve/src/protocol.rs", src).is_empty());
    }

    #[test]
    fn float_eq_catches_literals_on_either_side_and_unary_minus() {
        let src = "a == 0.0;\n0.5 != b;\nc == -0.0;\nd == e;\nf == 2;\n";
        let f = ctx_findings("crates/core/src/queue.rs", src);
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "float-eq")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn determinism_is_scoped_to_kernel_files() {
        let src = "let t = Instant::now();";
        assert!(ctx_findings("crates/serve/src/lib.rs", src).is_empty());
        let f = ctx_findings("crates/core/src/batch.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "determinism");
    }

    #[test]
    fn safety_comment_window_is_three_lines() {
        let good = "// SAFETY: ptr is valid for len\nlet x = unsafe { *p };";
        assert!(ctx_findings("crates/core/src/batch.rs", good).is_empty());
        let far = "// SAFETY: too far away\n\n\n\n\nlet x = unsafe { *p };";
        let f = ctx_findings("crates/core/src/batch.rs", far);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
    }

    #[test]
    fn metric_consts_are_collected_and_cross_checked() {
        let lexed = lex("pub const A: &str = \"core.a.b\";\npub const EV: &str = \"x.span\";\n");
        let excluded = vec![false; lexed.tokens.len()];
        let consts = collect_metric_consts(&FileCtx {
            rel_path: "crates/core/src/metrics.rs",
            tokens: &lexed.tokens,
            excluded: &excluded,
            comments: &lexed.comments,
        });
        assert_eq!(consts.len(), 2);
        let doc = "| `core.a.b` | counter | fine |\n| `core.ghost` | counter | unknown |\n\
                   see `history/runs.jsonl` and `x.span` in prose\n";
        let f = metric_doc_drift(&consts, "OBSERVABILITY.md", doc);
        // `x.span` appears only in prose (fine for direction two) but
        // *is* backticked, so direction one is satisfied; `core.ghost`
        // is a table row with no registration.
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].file, "OBSERVABILITY.md");
        assert!(f[0].message.contains("core.ghost"));
    }

    #[test]
    fn filename_lookalikes_are_not_metric_names() {
        assert!(!is_metric_name("history/runs.jsonl"));
        assert!(!is_metric_name("runs.jsonl"));
        assert!(!is_metric_name("BENCH_sweep.json"));
        assert!(!is_metric_name("plain"));
        assert!(is_metric_name("core.solver.solves"));
        assert!(is_metric_name("serve.request_us"));
    }
}
