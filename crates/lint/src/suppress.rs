//! Inline suppressions.
//!
//! A finding is silenced by a plain comment on the same line, or on
//! the line directly above when the comment stands alone:
//!
//! ```text
//! if service == 0.0 { // swcc-lint: allow(float-eq) — zero-demand guard
//!
//! // swcc-lint: allow(float-eq) — zero-demand guard
//! if service == 0.0 {
//! ```
//!
//! The reason after the closing parenthesis is **mandatory** (separated
//! by `—`, `-`, or `:`): a suppression without one does not suppress
//! and is itself reported as a `bad-suppression` finding, as is one
//! naming an unknown rule. A well-formed suppression that silences
//! nothing is reported as `stale-suppression`, so allow-comments cannot
//! outlive the code they were written for. Doc comments (`///`, `//!`)
//! are never parsed as suppressions.

use crate::lexer::Comment;

/// One parsed `swcc-lint: allow(...)` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule id inside `allow(...)`.
    pub rule: String,
    /// The stated reason (empty when missing).
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// True when the comment stands alone on its line (so it applies
    /// to the next line instead of its own).
    pub own_line: bool,
}

impl Suppression {
    /// The line of code this suppression applies to.
    pub fn target_line(&self) -> u32 {
        if self.own_line {
            self.line + 1
        } else {
            self.line
        }
    }
}

/// Extracts the suppression from one comment, if it is one.
///
/// Returns `None` for ordinary comments and doc comments. A comment
/// that *mentions* `swcc-lint:` but is not a well-formed
/// `allow(<rule>)` yields a suppression with an empty rule, which the
/// engine reports as malformed.
pub fn parse(comment: &Comment) -> Option<Suppression> {
    let text = comment.text.trim();
    // `///` and `//!` comments lex with a leading `/` or `!`.
    if text.starts_with('/') || text.starts_with('!') {
        return None;
    }
    let rest = text.strip_prefix("swcc-lint:")?.trim_start();
    let (rule, reason) = match rest.strip_prefix("allow(") {
        Some(open) => match open.split_once(')') {
            Some((rule, after)) => (rule.trim().to_string(), strip_separator(after)),
            None => (String::new(), String::new()),
        },
        None => (String::new(), String::new()),
    };
    Some(Suppression {
        rule,
        reason,
        line: comment.line,
        own_line: comment.own_line,
    })
}

/// Trims the reason separator (`—`, `–`, `-`, or `:`) and surrounding
/// whitespace from the text after `allow(...)`.
fn strip_separator(after: &str) -> String {
    after
        .trim_start()
        .trim_start_matches(['\u{2014}', '\u{2013}', '-', ':'])
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, own_line: bool) -> Comment {
        Comment {
            text: text.to_string(),
            line: 10,
            own_line,
        }
    }

    #[test]
    fn well_formed_suppressions_parse() {
        let s = parse(&comment(
            " swcc-lint: allow(float-eq) — zero guard is deliberate",
            false,
        ))
        .unwrap();
        assert_eq!(s.rule, "float-eq");
        assert_eq!(s.reason, "zero guard is deliberate");
        assert_eq!(s.target_line(), 10);
    }

    #[test]
    fn own_line_comments_target_the_next_line() {
        let s = parse(&comment(" swcc-lint: allow(no-raw-sync) - why", true)).unwrap();
        assert_eq!(s.target_line(), 11);
    }

    #[test]
    fn ascii_separators_work() {
        for sep in ["-", ":", "—", "–"] {
            let s = parse(&comment(
                &format!(" swcc-lint: allow(float-eq) {sep} reason"),
                false,
            ))
            .unwrap();
            assert_eq!(s.reason, "reason", "{sep}");
        }
    }

    #[test]
    fn missing_reason_is_empty() {
        let s = parse(&comment(" swcc-lint: allow(float-eq)", false)).unwrap();
        assert!(s.reason.is_empty());
    }

    #[test]
    fn malformed_allow_yields_empty_rule() {
        let s = parse(&comment(" swcc-lint: disable(float-eq)", false)).unwrap();
        assert!(s.rule.is_empty());
    }

    #[test]
    fn ordinary_and_doc_comments_are_ignored() {
        assert!(parse(&comment(" just a note", false)).is_none());
        assert!(parse(&comment("/ doc: swcc-lint: allow(x) — y", false)).is_none());
        assert!(parse(&comment("! inner doc", false)).is_none());
    }
}
