//! A lightweight Rust lexer.
//!
//! Produces a flat token stream (identifiers, literals, single-char
//! punctuation) plus a separate comment list, each carrying a 1-based
//! line number. This is *not* a full Rust grammar: the rules in this
//! crate match token patterns, so the lexer only has to get token
//! *boundaries* right — strings (including raw and byte forms), char
//! literals vs lifetimes, nested block comments, and numeric literals
//! with float detection. Anything it cannot classify becomes a
//! single-character [`TokenKind::Punct`] token, which is always safe
//! for pattern matching.

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `unsafe`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xff_u32`).
    Int,
    /// Floating-point literal (`0.0`, `1e-3`, `2f64`).
    Float,
    /// String literal of any flavor (`"x"`, `r#"x"#`, `b"x"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`:`, `=`, `[`, …).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True when this is a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// The contents of a string literal with quotes/prefix stripped
    /// (`None` for non-string tokens).
    pub fn str_value(&self) -> Option<&str> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let inner = self.text.trim_start_matches(['b', 'r', '#']);
        let inner = inner.strip_prefix('"')?;
        let inner = inner.trim_end_matches('#');
        inner.strip_suffix('"')
    }
}

/// One comment, line (`//`) or block (`/* */`), doc or plain.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after the `//` / between `/*` and `*/` (so a doc comment's
    /// text starts with `/` or `!`).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when no code token precedes the comment on its line.
    pub own_line: bool,
}

/// A lexed source file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The code tokens, in order.
    pub tokens: Vec<Token>,
    /// The comments, in order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    code_on_line: bool,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.code_on_line = false;
            }
        }
        c
    }

    fn push_token(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.out.tokens.push(Token {
            kind,
            text: self.chars[start..self.pos].iter().collect(),
            line,
        });
        self.code_on_line = true;
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let own_line = !self.code_on_line;
        self.pos += 2; // the two slashes
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: self.chars[start..self.pos].iter().collect(),
            line,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let own_line = !self.code_on_line;
        self.bump();
        self.bump(); // the `/*`
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                end = self.pos;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text: self.chars[start..end.max(start)].iter().collect(),
            line,
            own_line,
        });
    }

    /// Consumes a quoted run starting at the opening `"`, honoring
    /// backslash escapes.
    fn quoted(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw-quoted run starting at the first `#` or `"`
    /// after the `r` prefix.
    fn raw_quoted(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        // `'\...'` is always a char literal; `'x'` (any single char
        // then a quote) is a char literal; otherwise a lifetime.
        if self.peek(1) == Some('\\') {
            self.quoted_char();
            self.push_token(TokenKind::Char, start, line);
        } else if self.peek(2) == Some('\'') {
            self.bump();
            self.bump();
            self.bump();
            self.push_token(TokenKind::Char, start, line);
        } else {
            self.bump(); // the quote
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            self.push_token(TokenKind::Lifetime, start, line);
        }
    }

    fn quoted_char(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.bump();
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
            if self.peek(0) == Some('.') {
                match self.peek(1) {
                    // `1..n` is a range, `1.method()` a call.
                    Some('.') => {}
                    Some(c) if is_ident_start(c) => {}
                    _ => {
                        is_float = true;
                        self.bump();
                        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                            self.bump();
                        }
                    }
                }
            }
            if matches!(self.peek(0), Some('e' | 'E')) {
                let signed = matches!(self.peek(1), Some('+' | '-'));
                let digit_at = if signed { 2 } else { 1 };
                if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                    is_float = true;
                    self.bump();
                    if signed {
                        self.bump();
                    }
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
        }
        // Type suffix (`u32`, `f64`, …).
        let suffix_start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            is_float = true;
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push_token(kind, start, line);
    }

    fn ident_or_prefixed(&mut self, start: usize, line: u32) {
        // `r"`, `r#"`, `b"`, `br"`, `br#"`, `b'` are literal prefixes,
        // `r#ident` a raw identifier.
        let c = self.peek(0);
        if c == Some('r') {
            match self.peek(1) {
                Some('"') => {
                    self.bump();
                    self.raw_quoted();
                    self.push_token(TokenKind::Str, start, line);
                    return;
                }
                Some('#') if matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.raw_quoted();
                    self.push_token(TokenKind::Str, start, line);
                    return;
                }
                Some('#') if self.peek(2).is_some_and(is_ident_start) => {
                    self.bump();
                    self.bump();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push_token(TokenKind::Ident, start, line);
                    return;
                }
                _ => {}
            }
        }
        if c == Some('b') {
            match self.peek(1) {
                Some('"') => {
                    self.bump();
                    self.quoted();
                    self.push_token(TokenKind::Str, start, line);
                    return;
                }
                Some('\'') => {
                    self.bump();
                    self.quoted_char();
                    self.push_token(TokenKind::Char, start, line);
                    return;
                }
                Some('r') if matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.bump();
                    self.raw_quoted();
                    self.push_token(TokenKind::Str, start, line);
                    return;
                }
                _ => {}
            }
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.push_token(TokenKind::Ident, start, line);
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.quoted();
                    self.push_token(TokenKind::Str, start, line);
                }
                '\'' => self.char_or_lifetime(start, line),
                c if c.is_whitespace() => {
                    self.bump();
                }
                c if c.is_ascii_digit() => self.number(start, line),
                c if is_ident_start(c) => self.ident_or_prefixed(start, line),
                _ => {
                    self.bump();
                    self.push_token(TokenKind::Punct, start, line);
                }
            }
        }
        self.out
    }
}

/// Lexes a source file into tokens and comments.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        code_on_line: false,
        out: Lexed::default(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(source: &str) -> Vec<String> {
        lex(source).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_punct_split() {
        assert_eq!(
            texts("std::sync::Mutex"),
            vec!["std", ":", ":", "sync", ":", ":", "Mutex"]
        );
    }

    #[test]
    fn float_literals_are_classified() {
        let lexed = lex("a == 0.0; b == 1e-3; c == 2f64; d == 7; e == 0x1f;");
        let kinds: Vec<(String, TokenKind)> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Float | TokenKind::Int))
            .map(|t| (t.text.clone(), t.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("0.0".to_string(), TokenKind::Float),
                ("1e-3".to_string(), TokenKind::Float),
                ("2f64".to_string(), TokenKind::Float),
                ("7".to_string(), TokenKind::Int),
                ("0x1f".to_string(), TokenKind::Int),
            ]
        );
    }

    #[test]
    fn ranges_and_tuple_access_are_not_floats() {
        let lexed = lex("&xs[0..10]; t.0 == t.1; 1.max(2)");
        assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::Float));
    }

    #[test]
    fn strings_hide_their_contents() {
        let lexed = lex(r##"let s = r#"a == 0.0 [0] "quoted""#; let t = "x\" == 0.0";"##);
        assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::Float));
        let strings: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strings.len(), 2);
        assert_eq!(
            lexed.tokens[3].str_value(),
            Some(r#"a == 0.0 [0] "quoted""#)
        );
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let lexed = lex(r"fn f<'a>(x: &'a str) -> char { '\n' }");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn comments_capture_line_and_position() {
        let lexed = lex("let x = 1; // trailing\n// own line\nlet y = 2; /* block */\n");
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[0].text, " trailing");
        assert!(!lexed.comments[0].own_line);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[2].text, " block ");
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lexed = lex("/* outer /* inner */ still */ let x = 1;");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens.len(), 5);
    }

    #[test]
    fn line_numbers_advance_through_multiline_strings() {
        let lexed = lex("let a = \"one\ntwo\";\nlet b = 3;");
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }
}
