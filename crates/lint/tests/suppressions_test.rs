//! Suppression handling: valid allows (same-line and own-line) hide
//! findings and surface in the report; invalid ones (no reason,
//! unknown rule) suppress nothing and are themselves findings; stale
//! allows are reported.

use std::path::Path;

use swcc_lint::lint_root;

fn report() -> swcc_lint::Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/suppress_root");
    lint_root(&root).unwrap()
}

#[test]
fn valid_allows_suppress_in_both_placements() {
    let report = report();
    let suppressed: Vec<(u32, &str)> = report
        .suppressed
        .iter()
        .map(|s| (s.finding.line, s.reason.as_str()))
        .collect();
    assert_eq!(
        suppressed,
        vec![
            // Trailing comment on the offending line.
            (4, "exact sentinel comparison"),
            // Own-line comment applying to the next line.
            (8, "own-line form covers the next line"),
        ]
    );
    assert!(report
        .suppressed
        .iter()
        .all(|s| s.finding.rule == "float-eq"));
}

#[test]
fn a_reasonless_allow_is_rejected_and_suppresses_nothing() {
    let report = report();
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "bad-suppression" && f.line == 11 && f.message.contains("no reason")));
    // The finding it tried to hide still fires.
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "float-eq" && f.line == 11));
}

#[test]
fn an_unknown_rule_allow_is_rejected_and_suppresses_nothing() {
    let report = report();
    assert!(report.findings.iter().any(|f| f.rule == "bad-suppression"
        && f.line == 14
        && f.message.contains("`no-such-rule`")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "float-eq" && f.line == 14));
}

#[test]
fn a_stale_allow_is_reported() {
    let report = report();
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "stale-suppression" && f.line == 17));
}

#[test]
fn the_full_report_is_exact() {
    // One list, in engine order, so any behavior change shows up.
    let report = report();
    let got: Vec<(&str, u32)> = report.findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got,
        vec![
            ("bad-suppression", 11),
            ("float-eq", 11),
            ("bad-suppression", 14),
            ("float-eq", 14),
            ("stale-suppression", 17),
        ]
    );
    assert!(!report.is_clean());
}
