// Fixture: request-path panic sites the no-panic rule must flag.

pub fn handle(lines: &[String]) -> String {
    let first = lines.first().unwrap();
    if first.is_empty() {
        panic!("empty request");
    }
    let tail = &lines[1];
    format!("{first}{tail}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v = vec![1];
        assert_eq!(v[0], 1);
        super::handle(&["x".to_string(), "y".to_string()]);
    }
}
