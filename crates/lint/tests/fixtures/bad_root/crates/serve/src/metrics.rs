// Fixture: serve-layer metric names for the drift rule.
pub const SERVE_DOCUMENTED: &str = "fix.serve.documented";
