// Fixture: a raw sync primitive and an unannotated unsafe block.
use std::sync::Mutex;

pub fn read_raw(p: *const u64) -> u64 {
    unsafe { *p }
}

// SAFETY: the caller promises q is valid and aligned.
pub fn read_checked(q: *const u64) -> u64 {
    unsafe { *q }
}

pub static SHARED: Mutex<u64> = Mutex::new(0);
