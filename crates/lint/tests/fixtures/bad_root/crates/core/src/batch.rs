// Fixture: determinism and float-eq violations in a kernel file.
use std::time::Instant;

pub fn solve(demand: f64) -> f64 {
    let started = Instant::now();
    if demand == 0.0 {
        return 0.0;
    }
    demand + started.elapsed().as_secs_f64()
}
