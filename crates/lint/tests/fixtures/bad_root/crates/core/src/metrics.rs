// Fixture: registered metric names for the drift rule.
pub const DOCUMENTED: &str = "fix.core.documented";
pub const UNDOCUMENTED: &str = "fix.core.undocumented";
