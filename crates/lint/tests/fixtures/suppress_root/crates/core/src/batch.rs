// Fixture: every suppression form the engine must handle.
pub fn f(a: f64, b: f64, c: f64, d: f64, e: f64) -> u32 {
    let mut n = 0;
    if a == 0.5 { // swcc-lint: allow(float-eq) — exact sentinel comparison
        n += 1;
    }
    // swcc-lint: allow(float-eq) — own-line form covers the next line
    if b == 0.5 {
        n += 1;
    }
    if c == 0.5 { // swcc-lint: allow(float-eq)
        n += 1;
    }
    if d == 0.5 { // swcc-lint: allow(no-such-rule) — not a rule id
        n += 1;
    }
    let _ = e; // swcc-lint: allow(float-eq) — nothing here to suppress
    n
}
