//! Golden fixture: every rule proven live against a miniature
//! workspace with known violations at known lines.
//!
//! The assertion is exact — (rule, file, line) triples, in the
//! engine's deterministic order — so a rule that silently stops
//! firing (or fires somewhere new) fails loudly here.

use std::path::Path;

use swcc_lint::lint_root;

fn fixture(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn bad_root_trips_every_rule_at_the_expected_lines() {
    let report = lint_root(&fixture("bad_root")).unwrap();
    let got: Vec<(&str, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect();
    let want: Vec<(&str, &str, u32)> = vec![
        // Documented-but-unregistered direction of the drift rule.
        ("metric-doc-drift", "OBSERVABILITY.md", 7),
        // `use std::time::Instant;` and `Instant::now()` both name the
        // banned ident inside a kernel file.
        ("determinism", "crates/core/src/batch.rs", 2),
        ("determinism", "crates/core/src/batch.rs", 5),
        ("float-eq", "crates/core/src/batch.rs", 6),
        // Registered-but-undocumented direction of the drift rule.
        ("metric-doc-drift", "crates/core/src/metrics.rs", 3),
        ("no-raw-sync", "crates/obs/src/lock.rs", 2),
        ("safety-comment", "crates/obs/src/lock.rs", 5),
        ("no-panic-in-request-path", "crates/serve/src/server.rs", 4),
        ("no-panic-in-request-path", "crates/serve/src/server.rs", 6),
        ("no-panic-in-request-path", "crates/serve/src/server.rs", 8),
    ];
    assert_eq!(got, want);
    assert!(report.suppressed.is_empty());
    assert_eq!(report.files_scanned, 5);
}

#[test]
fn bad_root_test_module_violations_do_not_fire() {
    // server.rs's #[cfg(test)] module indexes a Vec and uses
    // assert_eq!; none of that may appear in the findings.
    let report = lint_root(&fixture("bad_root")).unwrap();
    assert!(
        report
            .findings
            .iter()
            .all(|f| !(f.file.ends_with("server.rs") && f.line > 10)),
        "test-module lines leaked into findings: {:?}",
        report.findings
    );
}

#[test]
fn bad_root_annotated_unsafe_is_accepted() {
    // lock.rs line 10 is an unsafe block with a // SAFETY: comment two
    // lines above — inside the adjacency window, so not a finding.
    let report = lint_root(&fixture("bad_root")).unwrap();
    assert!(report
        .findings
        .iter()
        .all(|f| !(f.rule == "safety-comment" && f.line == 10)));
}

#[test]
fn drift_findings_name_the_offending_metric() {
    let report = lint_root(&fixture("bad_root")).unwrap();
    let messages: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "metric-doc-drift")
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(messages.len(), 2);
    assert!(messages.iter().any(|m| m.contains("`fix.doc.phantom`")));
    assert!(messages
        .iter()
        .any(|m| m.contains("`fix.core.undocumented`")));
    // The documented-and-registered names are clean in both directions.
    assert!(messages
        .iter()
        .all(|m| !m.contains("fix.core.documented") && !m.contains("fix.serve.documented")));
}

#[test]
fn a_root_without_crates_is_an_error_not_a_clean_report() {
    // A mistyped --root in CI must fail loudly (exit 2), never pass
    // green having scanned zero files.
    let err = lint_root(&fixture("no_such_root")).unwrap_err();
    assert!(err.contains("not a workspace root"), "got: {err}");
}

#[test]
fn the_workspace_itself_lints_clean() {
    // Self-application: the acceptance criterion. Walk up from this
    // crate to the workspace root and require zero unsuppressed
    // findings and a reason on every suppression.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let report = lint_root(&root).unwrap();
    assert!(
        report.findings.is_empty(),
        "workspace has unsuppressed findings: {:#?}",
        report.findings
    );
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression without a reason at {}:{}",
            s.finding.file,
            s.finding.line
        );
    }
}
